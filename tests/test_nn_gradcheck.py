"""Composite-module gradient checks against finite differences.

The per-op gradients are verified in test_nn_tensor.py; these tests verify
that *composed* graphs — attention, batch-norm in training mode, the full
hierarchical GNN layer, and the token->score path used by continuous
adaptation — still differentiate correctly end to end.
"""

import numpy as np
import pytest

from repro.gnn import GraphSpec, HierarchicalGNNLayer
from repro.kg import ReasoningKG
from repro.nn import BatchNorm, Dense, LayerNorm, MultiHeadAttention, Tensor
from repro.nn.gradcheck import GradcheckError, check_gradients, numerical_gradient


def make_rng():
    return np.random.default_rng(0)


class TestCheckGradientsMachinery:
    def test_detects_correct_gradients(self):
        w = Tensor(np.array([2.0, -1.0]), requires_grad=True)

        def loss():
            return (w * w).sum()

        check_gradients(loss, [("w", w)], sample=None)

    def test_detects_wrong_gradients(self):
        """A gradient path silently severed by detach() must be caught:
        analytic sees d/dw (c*w) = c, finite differences see 2w."""
        w = Tensor(np.array([2.0, -1.0]), requires_grad=True)

        def loss():
            return (w.detach() * w).sum()

        with pytest.raises(GradcheckError):
            check_gradients(loss, [("w", w)], sample=None)

    def test_numerical_gradient_sampling(self):
        arr = np.arange(100.0)
        grad = numerical_gradient(lambda: float((arr ** 2).sum()), arr,
                                  sample=10)
        mask = ~np.isnan(grad)
        assert mask.sum() == 10
        np.testing.assert_allclose(grad[mask], 2 * arr[mask], rtol=1e-5)


class TestCompositeModules:
    def test_dense_layernorm_chain(self):
        rng = make_rng()
        dense = Dense(4, 3, rng)
        norm = LayerNorm(3)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)

        def loss():
            return (norm(dense(x)) ** 2).sum()

        check_gradients(loss, [("x", x), ("w", dense.weight),
                               ("gamma", norm.gamma)], sample=None)

    def test_batchnorm_training_mode(self):
        """Batch statistics make every output depend on every input row —
        the classic place for a broadcasting bug."""
        rng = make_rng()
        bn = BatchNorm(3)
        bn.train()
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        base_mean = bn.running_mean.copy()
        base_var = bn.running_var.copy()

        def loss():
            # Freeze running-stat side effects so fn is a pure function.
            bn.running_mean = base_mean.copy()
            bn.running_var = base_var.copy()
            return (bn(x) * np.arange(3)).sum()

        check_gradients(loss, [("x", x), ("gamma", bn.gamma),
                               ("beta", bn.beta)], sample=None, atol=5e-4)

    def test_multihead_attention(self):
        rng = make_rng()
        attn = MultiHeadAttention(8, 2, rng, causal=True)
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)

        def loss():
            return (attn(x) ** 2).sum()

        check_gradients(loss, [("x", x), ("wq", attn.w_q.weight),
                               ("wo", attn.w_o.weight)], sample=30)

    def test_hierarchical_gnn_layer(self):
        """Eq. 1-4 end to end: dense + product messages + mean aggregation
        + batch-norm + ELU."""
        rng = make_rng()
        kg = ReasoningKG(mission="m", depth=2)
        a = kg.add_node("a", level=1)
        b = kg.add_node("b", level=1)
        c = kg.add_node("c", level=2)
        kg.add_edge(a, c)
        kg.add_edge(b, c)
        kg.attach_terminals()
        spec = GraphSpec(kg)
        layer = HierarchicalGNNLayer(4, 4, rng)
        layer.eval()  # running stats: pure function of inputs
        x = Tensor(rng.normal(size=(2, spec.num_nodes, 4)), requires_grad=True)

        def loss():
            return (layer(x, spec, level=2) ** 2).sum()

        check_gradients(loss, [("x", x), ("w", layer.dense.weight),
                               ("gamma", layer.norm.gamma)], sample=30)

    def test_token_to_score_path(self, embedding_model):
        """The continuous-adaptation gradient path: node token embeddings
        -> frozen text projection -> joint vector -> quadratic head."""
        ids = embedding_model.tokenizer.encode("sneaky")
        tokens = Tensor(embedding_model.token_table.lookup(ids),
                        requires_grad=True)

        def loss():
            joint = embedding_model.encode_token_tensor(tokens)
            return (joint * joint).sum()

        check_gradients(loss, [("tokens", tokens)], sample=40)
