"""Tests for the promoted repro.metrics primitives (shared by the
engine, the gateway, and the benchmark harnesses)."""

import warnings

import numpy as np
import pytest

from repro.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    percentile,
)


class TestDeprecationShim:
    def test_gateway_metrics_reexports_with_warning(self):
        import importlib
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.gateway.metrics as shim
            shim = importlib.reload(shim)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        # Same objects, not copies: isinstance checks keep working
        # across old and new import paths.
        assert shim.MetricsRegistry is MetricsRegistry
        assert shim.percentile is percentile
        assert shim.Counter is Counter
        assert shim.Gauge is Gauge
        assert shim.LatencyHistogram is LatencyHistogram


class TestPercentile:
    def test_matches_numpy(self):
        samples = [0.5, 0.1, 0.9, 0.3]
        assert percentile(samples, 50) == float(np.percentile(samples, 50))

    def test_empty_raises_value_error_naming_phase(self):
        with pytest.raises(ValueError, match="'batched'"):
            percentile([], 95, phase="batched")

    def test_empty_never_raises_index_error(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge()
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == 2.0


class TestLatencyHistogram:
    def test_summary_percentiles(self):
        histogram = LatencyHistogram()
        for value in [0.010, 0.020, 0.030, 0.040]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["p50_ms"] == pytest.approx(25.0)
        assert summary["p99_ms"] <= 40.0 + 1e-9
        assert summary["mean_ms"] == pytest.approx(25.0)

    def test_empty_summary_is_count_zero(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_reservoir_bounds_memory(self):
        histogram = LatencyHistogram(max_samples=16)
        for i in range(1000):
            histogram.observe(i * 1e-3)
        assert histogram.count == 1000
        assert len(histogram._samples) == 16
        summary = histogram.summary()
        assert summary["count"] == 1000
        assert 0.0 <= summary["p50_ms"] <= 1000.0

    def test_rejects_bad_max_samples(self):
        with pytest.raises(ValueError):
            LatencyHistogram(max_samples=0)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="not a Gauge"):
            registry.gauge("x")

    def test_to_dict_sections(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(1.5)
        registry.histogram("lat").observe(0.002)
        snapshot = registry.to_dict()
        assert snapshot["counters"]["requests"] == 3
        assert snapshot["gauges"]["depth"] == 1.5
        assert snapshot["histograms"]["lat"]["count"] == 1
        # JSON-serializable end to end.
        import json
        json.dumps(snapshot)
