"""Tests for the serving micro-batcher (coalescing + score parity)."""

import numpy as np
import pytest

from repro.serving import MicroBatcher, ScoreRequest


class CountingModel:
    """Stand-in scorer: deterministic per-window score, counts forwards."""

    def __init__(self, offset: float = 0.0):
        self.offset = offset
        self.calls = 0
        self.batch_sizes = []

    def anomaly_scores(self, windows):
        self.calls += 1
        self.batch_sizes.append(windows.shape[0])
        return windows.mean(axis=(1, 2)) + self.offset


def make_windows(rng, count, window=4, dim=6):
    return rng.normal(size=(count, window, dim))


class TestScoreRequest:
    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            ScoreRequest(CountingModel(), np.zeros((3, 4)))

    def test_coerces_dtype(self):
        request = ScoreRequest(CountingModel(), np.zeros((1, 2, 3), dtype=np.float32))
        assert request.windows.dtype == np.float64


class TestMicroBatcher:
    def test_single_model_coalesces_to_one_forward(self, rng):
        model = CountingModel()
        requests = [ScoreRequest(model, make_windows(rng, n)) for n in (2, 3, 1)]
        MicroBatcher().score(requests)
        assert model.calls == 1
        assert model.batch_sizes == [6]

    def test_results_in_request_order_and_exact(self, rng):
        model = CountingModel()
        requests = [ScoreRequest(model, make_windows(rng, n)) for n in (2, 5, 3)]
        results = MicroBatcher().score(requests)
        for request, scores in zip(requests, results):
            expected = request.windows.mean(axis=(1, 2))
            np.testing.assert_array_equal(scores, expected)
            assert scores.shape == (request.windows.shape[0],)

    def test_groups_by_model_identity(self, rng):
        a, b = CountingModel(0.0), CountingModel(10.0)
        requests = [ScoreRequest(a, make_windows(rng, 2)),
                    ScoreRequest(b, make_windows(rng, 2)),
                    ScoreRequest(a, make_windows(rng, 1))]
        results = MicroBatcher().score(requests)
        assert a.calls == 1 and a.batch_sizes == [3]
        assert b.calls == 1 and b.batch_sizes == [2]
        assert np.all(results[1] > 5)  # model b's offset applied
        assert np.all(results[0] < 5)

    def test_max_batch_windows_chunks(self, rng):
        model = CountingModel()
        requests = [ScoreRequest(model, make_windows(rng, 4)) for _ in range(3)]
        batcher = MicroBatcher(max_batch_windows=5)
        results = batcher.score(requests)
        assert model.batch_sizes == [5, 5, 2]
        assert batcher.batches_run == 3
        for request, scores in zip(requests, results):
            np.testing.assert_array_equal(
                scores, request.windows.mean(axis=(1, 2)))

    def test_mixed_window_shapes_rejected(self, rng):
        model = CountingModel()
        requests = [ScoreRequest(model, make_windows(rng, 2, window=4)),
                    ScoreRequest(model, make_windows(rng, 2, window=8))]
        with pytest.raises(ValueError, match="mixed shapes"):
            MicroBatcher().score(requests)

    def test_empty_request_list(self):
        assert MicroBatcher().score([]) == []

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_windows=0)

    def test_counters(self, rng):
        model = CountingModel()
        batcher = MicroBatcher()
        batcher.score([ScoreRequest(model, make_windows(rng, 3))])
        batcher.score([ScoreRequest(model, make_windows(rng, 2))])
        assert batcher.windows_scored == 5
        assert batcher.batches_run == 2


class TestRealModelParity:
    """Micro-batched scores must be bit-identical to per-stream scores on
    the real scoring path — the property the serving layer is built on."""

    def test_bitwise_parity_across_batch_sizes(self, fresh_model, rng):
        model = fresh_model(window=4)
        model.eval()
        chunks = [rng.normal(size=(n, 4, 192)) for n in (1, 2, 5, 3)]
        separate = [model.anomaly_scores(c) for c in chunks]
        batched = MicroBatcher().score(
            [ScoreRequest(model, c) for c in chunks])
        for a, b in zip(separate, batched):
            np.testing.assert_array_equal(a, b)
