"""Crash recovery tests: durable serving -> kill -> replay -> parity.

The acceptance property: a fleet served through :class:`WalDurability`,
"crashed" (abandoned without a clean close), and rebuilt by
:func:`recover_fleet` produces **bit-identical** per-stream scores to an
uninterrupted run — for both the inline and the sharded rebuild, with
queued-but-unserved requests replayed in FIFO order and the recovered
fleet continuing exactly where the reference is.  Plus: snapshot-then-
truncate bounds, skip/attach/detach replay, watermark semantics, the
gateway's ``wal_dir`` integration, and every refusal path.
"""

import numpy as np
import pytest

from repro.api import Deployment
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.errors import DurabilityError, RecoveryError
from repro.metrics import MetricsRegistry
from repro.runtime import AdmissionError, EngineRequest
from repro.serving import DeploymentFleet, ShardedFleet
from repro.wal import (
    SnapshotPolicy,
    WalConfig,
    WalDurability,
    infra_for_fleet,
    read_records,
    recover_fleet,
)

ROUNDS = 4


def make_stream(frame_generator, seed, windows_per_step=2):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=2, steps_after_shift=2,
        windows_per_step=windows_per_step, window=4, seed=seed))


@pytest.fixture()
def fleet_factory(fresh_model, frame_generator):
    """Deterministic fleet factory: every call rebuilds bit-identical
    models and streams, the basis of every parity assertion here."""
    def make(streams=3):
        fleet = DeploymentFleet()
        model = fresh_model("Stealing", window=4)
        model.eval()
        for index in range(streams):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=60 + index))
        return fleet
    return make


@pytest.fixture()
def materialized(fleet_factory):
    """(windows, reference): per-stream arrivals for ROUNDS rounds and
    the scores an uninterrupted ``ingest_round`` run produces."""
    fleet = fleet_factory()
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(ROUNDS)]
               for slot in fleet.slots}
    reference = {name: [] for name in fleet.names}
    for round_index in range(ROUNDS):
        events = fleet.ingest_round(
            {name: windows[name][round_index] for name in fleet.names})
        for name, event in events.items():
            reference[name].append(event.scores)
    return windows, reference


def make_durable(fleet, wal_dir, **kwargs):
    kwargs.setdefault("config", WalConfig(fsync_batch=4))
    durability = WalDurability(fleet, wal_dir, **kwargs)
    fleet.engine.durability = durability
    return durability


def serve_rounds(fleet, windows, count, start=0):
    """Drive ``count`` engine rounds (one request per stream per round)
    through the queued-serving path; returns per-stream score lists."""
    served = {name: [] for name in fleet.names}
    for round_index in range(start, start + count):
        for name in fleet.names:
            fleet.engine.submit(EngineRequest(
                op="ingest", stream=name,
                windows=windows[name][round_index]))
        for result in fleet.engine.run_round():
            assert result.kind == "event", (result.code, result.message)
            served[result.request.stream].append(result.event.scores)
    return served


class TestCrashRecoveryParity:
    """The acceptance criterion, inline and sharded."""

    def crash_and_recover(self, fleet_factory, materialized, tmp_path,
                          shards=None):
        windows, reference = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path,
                                  policy=SnapshotPolicy(every_rounds=2))
        served = serve_rounds(fleet, windows, count=2)
        # Round 3 arrives and is logged but never served: the "crash"
        # (no close, no parting snapshot) happens with it still queued.
        for name in fleet.names:
            fleet.engine.submit(EngineRequest(
                op="ingest", stream=name, windows=windows[name][2]))
        durability.wal.flush()   # the appends were group-committed
        del fleet, durability    # SIGKILL stand-in: nothing shuts down

        recovered, report = recover_fleet(tmp_path, shards=shards)
        return windows, reference, served, recovered, report

    def test_inline_parity(self, fleet_factory, materialized, tmp_path):
        windows, reference, served, fleet, report = self.crash_and_recover(
            fleet_factory, materialized, tmp_path)
        # What the live fleet served matched the reference bit-for-bit.
        for name in served:
            for got, want in zip(served[name], reference[name]):
                assert np.array_equal(got, want)
        # The queued round-3 requests replayed to the reference's bits.
        assert report.replayed == len(reference) > 0
        for name, scores in report.scores.items():
            assert np.array_equal(scores[-1], reference[name][2])
        # And the recovered fleet continues exactly where reference is.
        events = fleet.ingest_round(
            {name: windows[name][3] for name in fleet.names})
        for name, event in events.items():
            assert np.array_equal(event.scores, reference[name][3])

    def test_sharded_parity(self, fleet_factory, materialized, tmp_path):
        windows, reference, served, fleet, report = self.crash_and_recover(
            fleet_factory, materialized, tmp_path, shards=2)
        assert isinstance(fleet, ShardedFleet)
        with fleet:
            for name, scores in report.scores.items():
                assert np.array_equal(scores[-1], reference[name][2])
            events = fleet.ingest_round(
                {name: windows[name][3] for name in fleet.names})
            for name, event in events.items():
                assert np.array_equal(event.scores, reference[name][3])

    def test_clean_close_leaves_nothing_to_replay(self, fleet_factory,
                                                  materialized, tmp_path):
        windows, reference = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        serve_rounds(fleet, windows, count=2)
        durability.close(fleet.engine)   # parting snapshot covers it all
        recovered, report = recover_fleet(tmp_path)
        assert report.replayed == 0
        events = recovered.ingest_round(
            {name: windows[name][2] for name in recovered.names})
        for name, event in events.items():
            assert np.array_equal(event.scores, reference[name][2])


class TestSnapshotTruncate:
    def test_log_stays_bounded_under_snapshots(self, fleet_factory,
                                               materialized, tmp_path):
        windows, _ = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path,
                                  policy=SnapshotPolicy(every_rounds=1))
        serve_rounds(fleet, windows, count=ROUNDS)
        # One snapshot per round: everything applied is truncated away,
        # so the retained log is just the newest snapshot's segment.
        assert durability.snapshots.snapshots_taken == ROUNDS + 1  # +genesis
        records = read_records(tmp_path)
        assert [r["kind"] for r in records] == ["snapshot"]

    def test_queued_request_survives_truncation(self, fleet_factory,
                                                materialized, tmp_path):
        windows, reference = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        served_name = fleet.names[0]
        queued_name = fleet.names[1]
        # One request queued (never served) while another stream's round
        # is served and a snapshot fires: truncation must cut at the
        # queued request's seq, not the snapshot's.
        fleet.engine.submit(EngineRequest(
            op="ingest", stream=queued_name,
            windows=windows[queued_name][0]))
        fleet.engine.submit(EngineRequest(
            op="ingest", stream=served_name,
            windows=windows[served_name][0]))
        # fair round-robin serves one request per stream per round; drain
        # only the served stream by dropping... simpler: snapshot by hand
        # with the engine supplying pending_low.
        durability.wal.flush()
        durability.snapshot(fleet.engine)
        kinds = [r["kind"] for r in read_records(tmp_path)]
        assert "ingest" in kinds, "queued request was truncated away"
        recovered, report = recover_fleet(tmp_path)
        assert report.replayed == 2
        assert np.array_equal(report.scores[queued_name][0],
                              reference[queued_name][0])

    def test_request_admitted_during_snapshot_survives(self, fleet_factory,
                                                       materialized,
                                                       tmp_path):
        windows, reference = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        name = fleet.names[0]
        wal = durability.wal
        original_rotate = wal.rotate

        def admit_then_rotate():
            # The gateway's event loop admits a request in the window
            # between the snapshot starting and its record landing: the
            # ingest appends into the active segment the rotation is
            # about to close, so its seq precedes the snapshot record's
            # and only a post-append pending_low read protects it.
            fleet.engine.submit(EngineRequest(
                op="ingest", stream=name, windows=windows[name][0]))
            return original_rotate()

        wal.rotate = admit_then_rotate
        try:
            durability.snapshot(fleet.engine)
        finally:
            wal.rotate = original_rotate
        kinds = [r["kind"] for r in read_records(tmp_path)]
        assert "ingest" in kinds, "racing admission was truncated away"
        recovered, report = recover_fleet(tmp_path)
        assert report.replayed == 1
        assert np.array_equal(report.scores[name][0], reference[name][0])

    def test_watermarks_advance_with_served_rounds(self, fleet_factory,
                                                   materialized, tmp_path):
        windows, _ = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        assert durability.applied_watermarks == {}
        serve_rounds(fleet, windows, count=1)
        marks = durability.applied_watermarks
        assert sorted(marks) == sorted(fleet.names)
        serve_rounds(fleet, windows, count=1, start=1)
        later = durability.applied_watermarks
        assert all(later[name] > marks[name] for name in marks)


class TestSkipRecords:
    def test_dropped_requests_replay_as_skips(self, fleet_factory,
                                              materialized, tmp_path):
        windows, reference = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        victim = fleet.names[0]
        for name in fleet.names:
            fleet.engine.submit(EngineRequest(
                op="ingest", stream=name, windows=windows[name][0]))
        # The victim's connection dies before its request is served.
        dropped = fleet.engine.drop_pending(lambda r: r.stream == victim)
        assert len(dropped) == 1
        for result in fleet.engine.run_round():
            assert result.kind == "event"
        durability.wal.flush()

        recovered, report = recover_fleet(tmp_path)
        assert report.skipped == 1
        assert victim not in report.scores
        # The skipped stream did not consume its deployment state: its
        # next window scores as the reference's round-0, not round-1.
        events = recovered.ingest_round({victim: windows[victim][0]})
        assert np.array_equal(events[victim].scores, reference[victim][0])

    def test_expired_deadline_replays_as_skip(self, fleet_factory,
                                              materialized, tmp_path):
        from repro.runtime import PriorityAdmission
        windows, _ = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        fleet.engine.policy = PriorityAdmission()  # the deadline-aware one
        name = fleet.names[0]
        fleet.engine.submit(EngineRequest(
            op="ingest", stream=name, windows=windows[name][0],
            deadline=fleet.engine.now() - 1.0))   # already expired
        results = fleet.engine.run_round()
        assert [r.code for r in results] == ["expired"]
        durability.wal.flush()
        recovered, report = recover_fleet(tmp_path)
        assert report.skipped == 1 and report.replayed == 0


class TestMembershipReplay:
    def test_attach_detach_replay(self, fleet_factory, fresh_model,
                                  frame_generator, materialized, tmp_path):
        windows, reference = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        # A new stream joins mid-run (logged), an original one leaves.
        model = fresh_model("Stealing", window=4)
        model.eval()
        deployment = Deployment(model, mission="Stealing", adaptive=False)
        stream = make_stream(frame_generator, seed=90)
        joined_windows = np.asarray(stream.batch(0).windows,
                                    dtype=np.float64)
        fleet.add("cam-new", deployment, stream)
        durability.record_attach("cam-new", deployment, stream)
        fleet.remove("cam-0")
        durability.record_detach("cam-0")
        serve_rounds(fleet, {**windows, "cam-new": [joined_windows]},
                     count=1)
        durability.wal.flush()

        recovered, report = recover_fleet(tmp_path)
        assert report.attached == 1 and report.detached == 1
        assert sorted(recovered.names) == ["cam-1", "cam-2", "cam-new"]
        # The re-attached stream replayed its round bit-identically: a
        # from-scratch replica of the joined deployment scores the same
        # windows to the same bits.
        twin = DeploymentFleet()
        twin_model = fresh_model("Stealing", window=4)
        twin_model.eval()
        twin.add("cam-new",
                 Deployment(twin_model, mission="Stealing", adaptive=False),
                 make_stream(frame_generator, seed=90))
        twin_events = twin.ingest_round({"cam-new": joined_windows})
        assert np.array_equal(report.scores["cam-new"][0],
                              twin_events["cam-new"].scores)

    def test_pre_snapshot_churn_does_not_regress_snapshot(
            self, fleet_factory, fresh_model, frame_generator,
            materialized, tmp_path):
        windows, _ = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        victim, waiting = fleet.names[0], fleet.names[1]
        # A queued-but-unserved request admitted first: its seq bounds
        # truncation, so every later record — including the churn below
        # — is still in the retained log when the snapshot fires.
        fleet.engine.submit(EngineRequest(
            op="ingest", stream=waiting, windows=windows[waiting][0]))
        # Churn: the victim leaves and rejoins with a fresh deployment...
        fleet.remove(victim)
        durability.record_detach(victim)
        model = fresh_model("Stealing", window=4)
        model.eval()
        deployment = Deployment(model, mission="Stealing", adaptive=False)
        stream = make_stream(frame_generator, seed=60)
        fleet.add(victim, deployment, stream)
        durability.record_attach(victim, deployment, stream)
        # ...then advances past its attach-time state: one served,
        # applied, acked ingest before the snapshot captures it.
        seq = durability.record_submit(EngineRequest(
            op="ingest", stream=victim, windows=windows[victim][0]))
        fleet.ingest_round({victim: windows[victim][0]})
        durability.record_applied(victim, seq)
        durability.snapshot(fleet.engine)
        durability.wal.flush()

        recovered, report = recover_fleet(tmp_path)
        # The retained pre-snapshot detach/attach pair must not replay:
        # the snapshot already reflects it, and replaying would reset
        # the victim to attach-time state while its watermark-covered
        # ingest stays un-reapplied — a stream staler than the snapshot.
        assert report.attached == 0 and report.detached == 0
        assert report.covered == 1      # the victim's pre-snapshot ingest
        assert report.replayed == 1     # the still-waiting request
        live = fleet.ingest_round({victim: windows[victim][1]})[victim]
        replayed = recovered.ingest_round({victim: windows[victim][1]})[victim]
        assert replayed.step == live.step
        assert np.array_equal(replayed.scores, live.scores)

    def test_orphaned_ingest_is_counted_not_fatal(self, fleet_factory,
                                                  materialized, tmp_path):
        windows, _ = materialized
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        # An ingest logged for a stream the snapshot does not know (it
        # never existed): replay must drop it, not crash.
        durability.record_submit(EngineRequest(
            op="ingest", stream="ghost", windows=windows[fleet.names[0]][0]))
        durability.wal.flush()
        recovered, report = recover_fleet(tmp_path)
        assert report.orphaned == 1 and report.replayed == 0


class FailingCommitDurability:
    """Duck-typed durability hook whose group commit always fails, the
    shape of an ENOSPC/I/O error at fsync time."""

    def __init__(self):
        self.next_seq = 0

    def record_submit(self, request):
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def record_applied(self, stream, seq):
        pass

    def record_skip(self, seq):
        pass

    def commit(self, engine):
        raise DurabilityError("group-commit fsync failed: no space left")


class TestCommitFailure:
    """A failed group commit must fail the acks it was meant to back —
    never return results for ingests that are not on disk."""

    def test_failed_commit_fails_acks_and_latches(self, fleet_factory,
                                                  materialized):
        windows, _ = materialized
        fleet = fleet_factory()
        engine = fleet.engine
        engine.durability = FailingCommitDurability()
        for name in fleet.names:
            engine.submit(EngineRequest(
                op="ingest", stream=name, windows=windows[name][0]))
        results = engine.run_round()
        assert len(results) == len(fleet.names)
        assert all(r.kind == "error" and r.code == "durability"
                   for r in results)
        assert engine.metrics.counter(
            "engine.durability_errors").value == 1
        # Latched: further ingests are refused at the door with a typed
        # admission error instead of riding an untrustworthy log.
        with pytest.raises(AdmissionError) as excinfo:
            engine.submit(EngineRequest(
                op="ingest", stream=fleet.names[0],
                windows=windows[fleet.names[0]][0]))
        assert excinfo.value.code == "durability"

    def test_latched_engine_still_serves_stateless_scores(self,
                                                          fleet_factory,
                                                          materialized):
        windows, _ = materialized
        fleet = fleet_factory()
        engine = fleet.engine
        engine.durability = FailingCommitDurability()
        name = fleet.names[0]
        engine.submit(EngineRequest(
            op="ingest", stream=name, windows=windows[name][0]))
        assert all(r.code == "durability" for r in engine.run_round())
        # Score-only requests promise nothing about the log: they are
        # admitted and served normally on a latched engine.
        engine.submit(EngineRequest(
            op="scores", stream=name, windows=windows[name][0]))
        results = engine.run_round()
        assert [r.kind for r in results] == ["scores"]
        # The latch never re-touches the failed WAL: one error counted.
        assert engine.metrics.counter(
            "engine.durability_errors").value == 1


class TestRefusals:
    def test_non_empty_dir_refused(self, fleet_factory, tmp_path):
        fleet = fleet_factory()
        durability = make_durable(fleet, tmp_path)
        durability.close(fleet.engine)
        with pytest.raises(DurabilityError, match="repro recover"):
            WalDurability(fleet_factory(), tmp_path)
        # The refusal also satisfies legacy RuntimeError call sites.
        with pytest.raises(RuntimeError):
            WalDurability(fleet_factory(), tmp_path)

    def test_recover_without_snapshot_raises(self, tmp_path):
        from repro.wal import WriteAheadLog, ingest_record
        with WriteAheadLog(tmp_path) as wal:
            wal.append(ingest_record("cam-0", np.zeros((1, 2, 3))),
                       sync=True)
        with pytest.raises(RecoveryError, match="no snapshot"):
            recover_fleet(tmp_path)

    def test_recover_empty_dir_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no snapshot"):
            recover_fleet(tmp_path / "fresh")

    def test_empty_fleet_cannot_derive_infra(self, tmp_path):
        with pytest.raises(DurabilityError, match="empty fleet"):
            infra_for_fleet(DeploymentFleet())


class TestGatewayIntegration:
    def test_wal_dir_served_gateway_recovers(self, fleet_factory,
                                             materialized, tmp_path):
        from repro.gateway import GatewayClient, serve_in_thread
        windows, reference = materialized
        metrics = MetricsRegistry()
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, wal_dir=tmp_path,
                                wal_config=WalConfig(fsync_batch=4),
                                metrics=metrics) as handle:
            with GatewayClient(*handle.address) as client:
                for name in windows:
                    client.attach(name)
                for round_index in range(2):
                    for name in windows:
                        reply = client.ingest(name,
                                              windows[name][round_index])
                        assert np.array_equal(
                            reply["scores_array"],
                            reference[name][round_index])
        # Acks implied fsyncs happened before results left run_round.
        assert metrics.counter("wal.fsyncs").value > 0
        assert metrics.counter("engine.durability_errors").value == 0

        recovered, report = recover_fleet(tmp_path)
        assert sorted(recovered.names) == sorted(windows)
        # Clean drain closed with a parting snapshot: nothing replays,
        # and the recovered fleet continues bit-identically.
        assert report.replayed == 0
        events = recovered.ingest_round(
            {name: windows[name][2] for name in recovered.names})
        for name, event in events.items():
            assert np.array_equal(event.scores, reference[name][2])
