"""Tests for multi-head attention and the transformer encoder."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadAttention,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
    sinusoidal_positions,
)


def make_rng():
    return np.random.default_rng(0)


class TestSinusoidalPositions:
    def test_shape(self):
        table = sinusoidal_positions(10, 16)
        assert table.shape == (10, 16)

    def test_bounded(self):
        table = sinusoidal_positions(50, 32)
        assert np.all(np.abs(table) <= 1.0)

    def test_rows_distinct(self):
        table = sinusoidal_positions(20, 16)
        assert not np.allclose(table[0], table[1])

    def test_odd_dim(self):
        table = sinusoidal_positions(5, 7)
        assert table.shape == (5, 7)


class TestMultiHeadAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(16, 4, make_rng())
        out = attn(Tensor(np.random.default_rng(1).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, make_rng())

    def test_requires_3d(self):
        attn = MultiHeadAttention(8, 2, make_rng())
        with pytest.raises(ValueError):
            attn(Tensor(np.ones((5, 8))))

    def test_causal_masking(self):
        """With a causal mask, position t must not depend on positions > t."""
        attn = MultiHeadAttention(8, 2, make_rng(), causal=True)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, -1] += 10.0  # change only the last position
        out = attn(Tensor(perturbed)).numpy()
        # All positions before the last are unaffected.
        np.testing.assert_allclose(out[0, :-1], base[0, :-1], atol=1e-10)
        assert not np.allclose(out[0, -1], base[0, -1])

    def test_non_causal_attends_everywhere(self):
        attn = MultiHeadAttention(8, 2, make_rng(), causal=False)
        x = np.random.default_rng(3).normal(size=(1, 4, 8))
        base = attn(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, -1] += 10.0
        out = attn(Tensor(perturbed)).numpy()
        assert not np.allclose(out[0, 0], base[0, 0])

    def test_gradients_reach_inputs(self):
        attn = MultiHeadAttention(8, 2, make_rng())
        x = Tensor(np.random.default_rng(4).normal(size=(2, 3, 8)),
                   requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert np.any(x.grad != 0)


class TestTransformerEncoder:
    def test_forward_shape(self):
        enc = TransformerEncoder(12, 16, 4, 2, make_rng(), max_length=10)
        out = enc(Tensor(np.random.default_rng(5).normal(size=(3, 7, 12))))
        assert out.shape == (3, 7, 12)

    def test_last_output_shape(self):
        enc = TransformerEncoder(12, 16, 4, 1, make_rng(), max_length=10)
        out = enc.last_output(Tensor(np.random.default_rng(6).normal(size=(3, 7, 12))))
        assert out.shape == (3, 12)

    def test_length_limit(self):
        enc = TransformerEncoder(4, 8, 2, 1, make_rng(), max_length=5)
        with pytest.raises(ValueError):
            enc(Tensor(np.ones((1, 6, 4))))

    def test_causal_last_output_ignores_nothing_but_uses_past(self):
        """The last output must change when early positions change (it reads
        the past) — that's the short-term temporal model contract."""
        enc = TransformerEncoder(6, 8, 2, 1, make_rng(), max_length=8, causal=True)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1, 8, 6))
        base = enc.last_output(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, 0] += 5.0
        out = enc.last_output(Tensor(perturbed)).numpy()
        assert not np.allclose(out, base)

    def test_deterministic_given_seed(self):
        a = TransformerEncoder(6, 8, 2, 1, np.random.default_rng(42))
        b = TransformerEncoder(6, 8, 2, 1, np.random.default_rng(42))
        x = Tensor(np.ones((1, 4, 6)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_encoder_layer_residual_path(self):
        layer = TransformerEncoderLayer(8, 2, 16, make_rng())
        x = Tensor(np.random.default_rng(8).normal(size=(2, 4, 8)))
        out = layer(x)
        assert out.shape == x.shape
        # Residual connections: output correlates with input.
        corr = np.corrcoef(out.numpy().ravel(), x.numpy().ravel())[0, 1]
        assert corr > 0.3
