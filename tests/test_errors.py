"""The shared exception hierarchy: shape, compat, and live raise sites.

Every deliberate error descends from ``ReproError``; the durability and
fleet branches additionally subclass ``RuntimeError`` so call sites
written against the historical bare ``RuntimeError`` keep catching them.
"""

import pytest

from repro.errors import (
    DurabilityError,
    FleetError,
    RecoveryError,
    ReproError,
    WalCorruptionError,
    WorkerError,
    WorkerStartupError,
)


class TestHierarchy:
    def test_everything_descends_from_repro_error(self):
        for cls in (DurabilityError, WalCorruptionError, RecoveryError,
                    FleetError, WorkerError, WorkerStartupError):
            assert issubclass(cls, ReproError)

    def test_durability_branch(self):
        assert issubclass(WalCorruptionError, DurabilityError)
        assert issubclass(RecoveryError, DurabilityError)
        assert not issubclass(DurabilityError, FleetError)

    def test_fleet_branch(self):
        assert issubclass(WorkerStartupError, WorkerError)
        assert issubclass(WorkerError, FleetError)
        assert not issubclass(FleetError, DurabilityError)

    def test_runtime_error_compat(self):
        """Legacy ``except RuntimeError`` / ``pytest.raises(RuntimeError)``
        call sites must keep working for both branches."""
        for cls in (DurabilityError, WalCorruptionError, RecoveryError,
                    FleetError, WorkerError, WorkerStartupError):
            assert issubclass(cls, RuntimeError)
        assert not issubclass(ReproError, RuntimeError)

    def test_worker_error_carries_shard(self):
        assert WorkerError("boom").shard is None
        assert WorkerError("boom", shard=3).shard == 3
        assert WorkerStartupError("no fleet", shard=1).shard == 1

    def test_reexported_from_serving_and_wal_layers(self):
        import repro.serving as serving
        assert serving.FleetError is FleetError
        assert serving.WorkerError is WorkerError
        assert serving.WorkerStartupError is WorkerStartupError


class TestLiveRaiseSites:
    def test_closed_sharded_fleet_raises_fleet_error(self, fresh_model,
                                                     frame_generator):
        from repro.api import Deployment
        from repro.data import TrendShiftConfig, TrendShiftStream
        from repro.serving import DeploymentFleet, FleetInfra, ShardedFleet

        fleet = DeploymentFleet()
        model = fresh_model("Stealing", window=4)
        model.eval()
        fleet.add("cam-0",
                  Deployment(model, mission="Stealing", adaptive=False),
                  TrendShiftStream(frame_generator, TrendShiftConfig(
                      steps_before_shift=1, steps_after_shift=1,
                      windows_per_step=1, window=4, seed=60)))
        sharded = ShardedFleet.from_fleet(
            fleet, shards=1,
            infra=FleetInfra(embedding_seed=7, generator_seed=5))
        sharded.close()
        with pytest.raises(FleetError, match="closed"):
            sharded.step()
        with pytest.raises(RuntimeError):   # legacy call sites
            sharded.step()

    def test_wal_corruption_is_catchable_as_durability(self, tmp_path):
        from repro.wal import WriteAheadLog
        path = tmp_path / "00000001.wal"
        path.write_bytes(b"garbage that is not even a frame header")
        (tmp_path / "00000002.wal").write_bytes(b"")
        with pytest.raises(DurabilityError):
            WriteAheadLog(tmp_path)
