"""Tests for optimizers, schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, ExponentialDecay, Parameter, clip_grad_norm


def quadratic_step(param):
    """Gradient of f(x) = 0.5 ||x - 3||^2."""
    loss = ((param - 3.0) * (param - 3.0) * 0.5).sum()
    param.zero_grad()
    loss.backward()
    return float(loss.item())


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.2)
        for _ in range(100):
            quadratic_step(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3 * np.ones(4), atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(2))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                quadratic_step(p)
                opt.step()
            return np.linalg.norm(p.data - 3.0)

        assert run(0.9) < run(0.0)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad -> unchanged
        np.testing.assert_allclose(p.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            quadratic_step(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3 * np.ones(3), atol=1e-3)

    def test_first_step_is_lr_sized(self):
        """Adam's bias-corrected first step equals lr per coordinate."""
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.5)
        p.grad = np.array([1.0, -1.0])
        opt.step()
        np.testing.assert_allclose(np.abs(p.data), 0.5 * np.ones(2), atol=1e-6)


class TestAdamW:
    def test_weight_decay_shrinks_params(self):
        p = Parameter(10.0 * np.ones(2))
        opt = AdamW([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(2)
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_paper_defaults(self):
        opt = AdamW([Parameter(np.ones(1))])
        assert opt.lr == pytest.approx(1e-5)
        assert opt.weight_decay == pytest.approx(1.0)
        assert opt.beta1 == pytest.approx(0.9)
        assert opt.beta2 == pytest.approx(0.999)
        assert opt.eps == pytest.approx(1e-8)


class TestOptimizerValidation:
    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_zero_grad_clears_all(self):
        p1, p2 = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = SGD([p1, p2], lr=0.1)
        p1.grad = np.ones(2)
        p2.grad = np.ones(2)
        opt.zero_grad()
        assert p1.grad is None and p2.grad is None


class TestClipGradNorm:
    def test_clips_above_max(self):
        p = Parameter(np.zeros(4))
        p.grad = 10.0 * np.ones(4)  # norm 20
        total = clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_max(self):
        p = Parameter(np.zeros(4))
        p.grad = 0.1 * np.ones(4)
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, 0.1 * np.ones(4))

    def test_ignores_none_grads(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0


class TestExponentialDecay:
    def test_paper_alpha(self):
        decay = ExponentialDecay(1.0, alpha=0.9999)
        assert decay.value == pytest.approx(1.0)
        decay.step()
        assert decay.value == pytest.approx(0.9999)

    def test_decays_monotonically(self):
        decay = ExponentialDecay(2.0, alpha=0.9)
        values = [decay.step() for _ in range(10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, alpha=1.5)
