"""Tests for the command-line interface (parser wiring + light commands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.shift == "weak"
        assert args.initial == "Stealing"
        assert args.seed == 7

    def test_fig5_strong(self):
        args = build_parser().parse_args(["fig5", "--shift", "strong"])
        assert args.shift == "strong"

    def test_fig5_rejects_bad_shift(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--shift", "sideways"])

    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.tracked == "sneaky"
        assert args.target == "firearm"

    def test_table1_alternations(self):
        args = build_parser().parse_args(["table1", "--alternations", "2"])
        assert args.alternations == 2

    def test_multimission_missions(self):
        args = build_parser().parse_args(
            ["multimission", "--missions", "Arson", "Abuse"])
        assert args.missions == ["Arson", "Abuse"]

    def test_kg_defaults(self):
        args = build_parser().parse_args(["kg"])
        assert args.mission == "Stealing"
        assert args.depth == 3

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.streams == 4
        assert args.missions == ["Stealing"]
        assert args.rounds is None
        assert not args.adaptive and not args.sequential

    def test_fleet_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--streams", "8", "--missions", "Stealing", "Robbery",
             "--adaptive", "--sequential", "--rounds", "5",
             "--save", "fleet.json"])
        assert args.streams == 8
        assert args.missions == ["Stealing", "Robbery"]
        assert args.adaptive and args.sequential
        assert args.rounds == 5
        assert args.save == "fleet.json"

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.streams == 16
        assert args.windows_per_step == 2
        assert args.output is None  # resolved to BENCH_2/BENCH_3 at run time
        assert args.min_speedup is None
        assert args.shards is None
        assert not args.quick
        assert not args.engine_parity

    def test_bench_flags(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--min-speedup", "1.5",
             "--output", "out.json", "--max-batch-windows", "64",
             "--shards", "4", "--min-shard-speedup", "1.5",
             "--engine-parity"])
        assert args.quick
        assert args.engine_parity
        assert args.min_speedup == 1.5
        assert args.output == "out.json"
        assert args.max_batch_windows == 64
        assert args.shards == 4
        assert args.min_shard_speedup == 1.5

    def test_fleet_shards_flag(self):
        args = build_parser().parse_args(["fleet", "--shards", "2"])
        assert args.shards == 2
        assert build_parser().parse_args(["fleet"]).shards == 1

    def test_bench_min_shard_speedup_requires_shards(self):
        """Argument errors must fail before any training runs."""
        with pytest.raises(SystemExit, match="requires --shards"):
            main(["bench", "--min-shard-speedup", "1.5"])
        with pytest.raises(SystemExit, match="--shards must be"):
            main(["bench", "--shards", "0"])
        with pytest.raises(SystemExit, match="--shards must be"):
            main(["fleet", "--shards", "0"])

    def test_version_flag(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["--version"])
        assert exit_info.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_gateway_defaults(self):
        args = build_parser().parse_args(["gateway"])
        assert args.streams == 4
        assert args.host == "127.0.0.1"
        assert args.port == 7641
        assert args.max_queue_depth == 8
        assert args.shards == 1
        assert args.policy is None  # engine default: fair round-robin
        assert not args.adaptive

    def test_gateway_flags(self):
        args = build_parser().parse_args(
            ["gateway", "--streams", "8", "--port", "0", "--host", "0.0.0.0",
             "--max-queue-depth", "2", "--shards", "2", "--adaptive",
             "--policy", "priority"])
        assert args.streams == 8
        assert args.port == 0
        assert args.host == "0.0.0.0"
        assert args.max_queue_depth == 2
        assert args.shards == 2
        assert args.adaptive
        assert args.policy == "priority"

    def test_gateway_bad_shards(self):
        with pytest.raises(SystemExit, match="--shards must be"):
            main(["gateway", "--shards", "0"])

    def test_gateway_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gateway", "--policy", "lifo"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.streams == 4
        assert args.levels == [1, 2, 4]
        assert args.rate is None
        assert args.rounds is None
        assert args.output is None  # resolved to BENCH_5.json at run time
        assert args.policy is None
        assert not args.quick and not args.verify

    def test_loadgen_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "--levels", "1", "8", "--rate", "50",
             "--rounds", "3", "--quick", "--verify", "--output", "g.json",
             "--policy", "greedy"])
        assert args.levels == [1, 8]
        assert args.rate == 50.0
        assert args.rounds == 3
        assert args.quick and args.verify
        assert args.output == "g.json"
        assert args.policy == "greedy"

    def test_loadgen_bad_level(self):
        with pytest.raises(SystemExit, match="levels entries must be"):
            main(["loadgen", "--levels", "0"])


class TestKGCommand:
    def test_kg_command_runs(self, capsys):
        assert main(["kg", "--mission", "Explosion", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "L1" in out and "<sensor>" in out
        assert "reasoning paths" in out

    def test_kg_command_seed_changes_output(self, capsys):
        main(["kg", "--mission", "Arson", "--seed", "1"])
        first = capsys.readouterr().out
        main(["kg", "--mission", "Arson", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second
