"""Tests for the command-line interface (parser wiring + light commands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.shift == "weak"
        assert args.initial == "Stealing"
        assert args.seed == 7

    def test_fig5_strong(self):
        args = build_parser().parse_args(["fig5", "--shift", "strong"])
        assert args.shift == "strong"

    def test_fig5_rejects_bad_shift(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--shift", "sideways"])

    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.tracked == "sneaky"
        assert args.target == "firearm"

    def test_table1_alternations(self):
        args = build_parser().parse_args(["table1", "--alternations", "2"])
        assert args.alternations == 2

    def test_multimission_missions(self):
        args = build_parser().parse_args(
            ["multimission", "--missions", "Arson", "Abuse"])
        assert args.missions == ["Arson", "Abuse"]

    def test_kg_defaults(self):
        args = build_parser().parse_args(["kg"])
        assert args.mission == "Stealing"
        assert args.depth == 3


class TestKGCommand:
    def test_kg_command_runs(self, capsys):
        assert main(["kg", "--mission", "Explosion", "--depth", "2"]) == 0
        out = capsys.readouterr().out
        assert "L1" in out and "<sensor>" in out
        assert "reasoning paths" in out

    def test_kg_command_seed_changes_output(self, capsys):
        main(["kg", "--mission", "Arson", "--seed", "1"])
        first = capsys.readouterr().out
        main(["kg", "--mission", "Arson", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second
