"""Tests for the per-KG reasoner and full MissionGNN pipeline."""

import numpy as np
import pytest

from repro.gnn import (
    DecisionModel,
    HierarchicalGNN,
    KGReasoner,
    MissionGNNConfig,
    MissionGNNModel,
    ShortTermTemporalModel,
)
from repro.gnn.layers import GraphSpec
from repro.nn import Tensor
from repro.utils import derive_rng


class TestHierarchicalGNN:
    def test_layer_count_is_depth_plus_two(self, stealing_kg_template, embedding_model):
        gnn = HierarchicalGNN(depth=3, input_dim=embedding_model.joint_dim,
                              hidden_dim=8, rng=derive_rng(0, "g"))
        assert len(gnn.layers) == 5  # d + 2 (paper Section III-C)

    def test_depth_mismatch_raises(self, stealing_kg_template, embedding_model):
        gnn = HierarchicalGNN(depth=2, input_dim=embedding_model.joint_dim,
                              hidden_dim=8, rng=derive_rng(0, "g"))
        spec = GraphSpec(stealing_kg_template)  # depth 3
        with pytest.raises(ValueError):
            gnn(Tensor(np.zeros((1, spec.num_nodes, embedding_model.joint_dim))), spec)


class TestKGReasoner:
    def test_requires_initialized_tokens(self, ontology, embedding_model):
        from repro.kg import KGGenerationConfig, KGGenerator
        from repro.llm import SyntheticLLM
        kg, _ = KGGenerator(SyntheticLLM(ontology, seed=3),
                            KGGenerationConfig(depth=2)).generate("Arson")
        gnn = HierarchicalGNN(2, embedding_model.joint_dim, 8, derive_rng(0, "g"))
        with pytest.raises(ValueError):
            KGReasoner(kg, embedding_model, gnn)

    def test_forward_shape(self, fresh_model, embedding_model, rng):
        model = fresh_model()
        reasoner = model.reasoners[0]
        frames = rng.normal(size=(5, embedding_model.frame_dim))
        out = reasoner(frames)
        assert out.shape == (5, 8)

    def test_single_frame_promoted_to_batch(self, fresh_model, embedding_model, rng):
        model = fresh_model()
        out = model.reasoners[0](rng.normal(size=embedding_model.frame_dim))
        assert out.shape == (1, 8)

    def test_token_gradients_flow(self, fresh_model, embedding_model, rng):
        """The critical property: loss gradients reach KG token embeddings
        while model weights are frozen."""
        model = fresh_model()
        model.freeze_for_deployment()
        reasoner = model.reasoners[0]
        frames = rng.normal(size=(2, embedding_model.frame_dim))
        out = reasoner(frames)
        out.sum().backward()
        token_grads = [t.grad for t in reasoner.token_tensors().values()]
        assert any(g is not None and np.any(g != 0) for g in token_grads)
        assert all(p.grad is None for p in model.parameters())

    def test_commit_tokens_writes_back(self, fresh_model):
        model = fresh_model()
        model.freeze_for_deployment()
        reasoner = model.reasoners[0]
        node_id, tensor = next(iter(reasoner.token_tensors().items()))
        tensor.data = tensor.data + 1.0
        reasoner.commit_tokens()
        np.testing.assert_allclose(reasoner.kg.node(node_id).token_embeddings,
                                   tensor.data)

    def test_refresh_structure_after_prune(self, fresh_model, rng):
        model = fresh_model()
        reasoner = model.reasoners[0]
        kg = reasoner.kg
        victim = kg.nodes_at_level(2)[0]
        kg.prune_node(victim.node_id)
        kg.create_node(level=2, token_dim=model.embedding_model.token_dim,
                       n_tokens=2, rng=rng)
        reasoner.refresh_structure()
        out = reasoner(rng.normal(size=(2, model.embedding_model.frame_dim)))
        assert out.shape == (2, 8)

    def test_frame_changes_output(self, fresh_model, embedding_model, rng):
        model = fresh_model()
        reasoner = model.reasoners[0]
        f1 = rng.normal(size=(1, embedding_model.frame_dim))
        f2 = rng.normal(size=(1, embedding_model.frame_dim))
        assert not np.allclose(reasoner(f1).numpy(), reasoner(f2).numpy())


class TestTemporalModel:
    def test_last_output_shape(self, rng):
        model = ShortTermTemporalModel(reasoning_dim=8, window=6,
                                       rng=derive_rng(0, "t"))
        out = model(Tensor(rng.normal(size=(3, 6, 8))))
        assert out.shape == (3, 8)

    def test_window_validation(self, rng):
        model = ShortTermTemporalModel(reasoning_dim=8, window=6,
                                       rng=derive_rng(0, "t"))
        with pytest.raises(ValueError):
            model(Tensor(rng.normal(size=(3, 4, 8))))
        with pytest.raises(ValueError):
            model(Tensor(rng.normal(size=(3, 6, 9))))


class TestDecisionModel:
    def test_probabilities_sum_to_one(self, rng):
        head = DecisionModel(8, num_anomaly_types=2, rng=derive_rng(0, "d"))
        probs = head.probabilities(Tensor(rng.normal(size=(4, 8)))).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_probability_decomposition(self):
        probs = np.array([[0.6, 0.3, 0.1]])
        assert DecisionModel.normal_probability(probs)[0] == pytest.approx(0.6)
        assert DecisionModel.anomaly_probability(probs)[0] == pytest.approx(0.4)
        posterior = DecisionModel.anomaly_type_posterior(probs)
        np.testing.assert_allclose(posterior[0], [0.75, 0.25])

    def test_posterior_sums_to_one_given_anomaly(self, rng):
        head = DecisionModel(8, num_anomaly_types=3, rng=derive_rng(0, "d"))
        probs = head.probabilities(Tensor(rng.normal(size=(5, 8)))).numpy()
        posterior = DecisionModel.anomaly_type_posterior(probs)
        np.testing.assert_allclose(posterior.sum(axis=-1), np.ones(5), atol=1e-9)

    def test_at_least_one_type(self, rng):
        with pytest.raises(ValueError):
            DecisionModel(8, num_anomaly_types=0, rng=derive_rng(0, "d"))


class TestMissionGNNModel:
    def test_forward_logits_shape(self, fresh_model, embedding_model, rng):
        model = fresh_model(window=4)
        windows = rng.normal(size=(3, 4, embedding_model.frame_dim))
        logits = model(windows)
        assert logits.shape == (3, 2)  # normal + 1 anomaly type

    def test_anomaly_scores_in_unit_interval(self, fresh_model, embedding_model, rng):
        model = fresh_model(window=4)
        windows = rng.normal(size=(6, 4, embedding_model.frame_dim))
        scores = model.anomaly_scores(windows)
        assert scores.shape == (6,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_requires_3d_windows(self, fresh_model, embedding_model):
        model = fresh_model(window=4)
        with pytest.raises(ValueError):
            model(np.ones((4, embedding_model.frame_dim)))

    def test_freeze_for_deployment(self, fresh_model):
        model = fresh_model()
        model.freeze_for_deployment()
        assert all(not p.requires_grad for p in model.parameters())
        assert all(t.requires_grad for t in model.token_parameters())
        assert not model.temporal.training  # eval mode

    def test_needs_at_least_one_kg(self, embedding_model):
        with pytest.raises(ValueError):
            MissionGNNModel([], embedding_model)

    def test_multi_kg_concatenation(self, fresh_kg, embedding_model, rng):
        kgs = [fresh_kg("Stealing"), fresh_kg("Robbery", seed=4)]
        model = MissionGNNModel(kgs, embedding_model,
                                MissionGNNConfig(temporal_window=4))
        assert model.reasoning_dim == 16
        logits = model(rng.normal(size=(2, 4, embedding_model.frame_dim)))
        assert logits.shape == (2, 3)  # normal + 2 anomaly types

    def test_deterministic_construction(self, fresh_kg, embedding_model, rng):
        windows = rng.normal(size=(2, 4, embedding_model.frame_dim))

        def build():
            model = MissionGNNModel([fresh_kg("Stealing")], embedding_model,
                                    MissionGNNConfig(temporal_window=4, seed=9))
            model.eval()
            return model(windows).numpy()

        np.testing.assert_allclose(build(), build())
