"""Gateway server tests: round-trip parity, failure paths, admission
control, disconnects, drain, and the load generator."""

import socket
import struct
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import Deployment
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.gateway import (
    GatewayClient,
    GatewayError,
    LoadGenConfig,
    LoadGenerator,
    serve_in_thread,
)
from repro.gateway.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
    recv_frame,
    request_frame,
    send_frame,
)
from repro.serving import DeploymentFleet

ROUNDS = 3


def make_stream(frame_generator, seed, windows_per_step=2):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=2, steps_after_shift=2,
        windows_per_step=windows_per_step, window=4, seed=seed))


@pytest.fixture()
def fleet_factory(fresh_model, frame_generator):
    """Deterministic fleet factory: every call rebuilds bit-identical
    models and streams, so two fleets built with the same arguments are
    exact replicas (the basis of every parity assertion here)."""
    def make(streams=3):
        fleet = DeploymentFleet()
        model = fresh_model("Stealing", window=4)
        model.eval()
        for index in range(streams):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=40 + index))
        return fleet
    return make


@pytest.fixture()
def materialized(fleet_factory):
    """(windows, reference): per-stream arrival windows for ROUNDS rounds
    and the scores a direct in-process ``fleet.step()`` run produces."""
    fleet = fleet_factory()
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(ROUNDS)]
               for slot in fleet.slots}
    reference = {name: [] for name in fleet.names}
    for _ in range(ROUNDS):
        for event in fleet.step(batched=True):
            reference[event.stream].append(event.scores)
    return windows, reference


class TestRoundTrip:
    def test_single_client_parity(self, fleet_factory, materialized):
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                for name in windows:
                    client.attach(name)
                for round_index in range(ROUNDS):
                    for name in windows:
                        reply = client.ingest(name,
                                              windows[name][round_index])
                        assert reply["step"] == round_index
                        assert reply["mission"] == "Stealing"
                        assert np.array_equal(
                            reply["scores_array"],
                            reference[name][round_index]), \
                            f"{name} round {round_index} diverged"

    def test_concurrent_multi_client_parity(self, fleet_factory,
                                            materialized):
        windows, reference = materialized
        names = sorted(windows)

        def drive(address, my_streams):
            served = {}
            with GatewayClient(*address) as client:
                for name in my_streams:
                    client.attach(name)
                for round_index in range(ROUNDS):
                    for name in my_streams:
                        reply = client.ingest(name,
                                              windows[name][round_index])
                        served.setdefault(name, []).append(
                            reply["scores_array"])
            return served

        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with ThreadPoolExecutor(max_workers=len(names)) as pool:
                futures = [pool.submit(drive, handle.address, [name])
                           for name in names]
                results = [future.result(timeout=120)
                           for future in futures]
        served = {}
        for part in results:
            served.update(part)
        for name in names:
            for round_index in range(ROUNDS):
                assert np.array_equal(served[name][round_index],
                                      reference[name][round_index])

    def test_scores_op_does_not_feed_the_monitor(self, fleet_factory,
                                                 materialized):
        windows, reference = materialized
        name = sorted(windows)[0]
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                client.attach(name)
                first = client.ingest(name, windows[name][0])
                assert first["step"] == 0
                peeked = client.scores(name, windows[name][1])
                assert np.array_equal(peeked, reference[name][1])
                # The scores op did not consume a deployment step.
                second = client.ingest(name, windows[name][1])
                assert second["step"] == 1

    def test_attach_detach_and_stats(self, fleet_factory):
        with fleet_factory(streams=2) as fleet, \
                serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                reply = client.attach("cam-0")
                assert reply["attached"] == ["cam-0"]
                client.attach("cam-1")
                reply = client.detach("cam-0")
                assert reply["attached"] == ["cam-1"]
                stats = client.stats()
                assert stats["fleet"]["type"] == "DeploymentFleet"
                assert stats["fleet"]["streams"] == ["cam-0", "cam-1"]
                counters = stats["metrics"]["counters"]
                assert counters["gateway.requests.attach"] == 2
                assert counters["gateway.requests.detach"] == 1
                assert not stats["draining"]


class TestFailurePaths:
    def test_unknown_stream_attach(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                with pytest.raises(GatewayError) as err:
                    client.attach("ghost")
                assert err.value.code == "unknown_stream"

    def test_ingest_before_attach(self, fleet_factory, materialized):
        windows, _ = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                with pytest.raises(GatewayError) as err:
                    client.ingest("cam-0", windows["cam-0"][0])
                assert err.value.code == "not_attached"

    def test_detach_when_not_attached(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                with pytest.raises(GatewayError) as err:
                    client.detach("cam-0")
                assert err.value.code == "not_attached"

    def test_unknown_op(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet) as handle:
            sock = socket.create_connection(handle.address, timeout=10)
            try:
                send_frame(sock, {"v": PROTOCOL_VERSION, "op": "explode",
                                  "id": 1})
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]["code"] == "unknown_op"
                assert reply["id"] == 1
            finally:
                sock.close()

    def test_version_mismatch(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet) as handle:
            sock = socket.create_connection(handle.address, timeout=10)
            try:
                send_frame(sock, {"v": 42, "op": "stats", "id": 2})
                reply = recv_frame(sock)
                assert reply["error"]["code"] == "version_mismatch"
            finally:
                sock.close()

    def test_malformed_frame_closes_connection(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet) as handle:
            sock = socket.create_connection(handle.address, timeout=10)
            try:
                sock.sendall(struct.pack(">I", 7) + b"not js!")
                reply = recv_frame(sock)
                assert reply["error"]["code"] == "bad_frame"
                # The server hangs up after an unframeable stream.
                assert recv_frame(sock) is None
            finally:
                sock.close()

    def test_truncated_frame_closes_connection(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet) as handle:
            sock = socket.create_connection(handle.address, timeout=10)
            try:
                frame = encode_frame({"v": PROTOCOL_VERSION, "op": "stats",
                                      "id": 1})
                sock.sendall(frame[:-4])
                sock.shutdown(socket.SHUT_WR)  # EOF mid-body
                reply = recv_frame(sock)
                assert reply["error"]["code"] == "bad_frame"
                assert "truncated" in reply["error"]["message"]
            finally:
                sock.close()

    def test_oversized_frame_rejected(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet, max_frame_bytes=1024) as handle:
            sock = socket.create_connection(handle.address, timeout=10)
            try:
                sock.sendall(struct.pack(">I", 1 << 20))
                reply = recv_frame(sock)
                assert reply["error"]["code"] == "bad_frame"
            finally:
                sock.close()

    def test_bad_windows_shape(self, fleet_factory):
        with fleet_factory(streams=1) as fleet, \
                serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                client.attach("cam-0")
                with pytest.raises(GatewayError) as err:
                    client.request("ingest", stream="cam-0",
                                   windows=[[1.0, 2.0]])  # 2-D, not 3-D
                assert err.value.code == "bad_request"
                with pytest.raises(GatewayError) as err:
                    client.request("ingest", stream="cam-0",
                                   windows=[[["x"]]])
                assert err.value.code == "bad_request"

    def test_backpressure_rejection(self, fleet_factory, materialized):
        windows, reference = materialized
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, max_queue_depth=1) as handle:
            handle.pause_rounds()
            blocked = GatewayClient(*handle.address)
            rejected = GatewayClient(*handle.address)
            try:
                blocked.attach("cam-0")
                rejected.attach("cam-0")
                with ThreadPoolExecutor(max_workers=1) as pool:
                    pending = pool.submit(blocked.ingest, "cam-0",
                                          windows["cam-0"][0])
                    _wait_for_queue(rejected, {"cam-0": 1})
                    with pytest.raises(GatewayError) as err:
                        rejected.ingest("cam-0", windows["cam-0"][0])
                    assert err.value.code == "backpressure"
                    assert "retry" in err.value.message
                    handle.resume_rounds()
                    reply = pending.result(timeout=60)
                assert np.array_equal(reply["scores_array"],
                                      reference["cam-0"][0])
                stats = rejected.stats()
                assert stats["metrics"]["counters"][
                    "gateway.rejected.backpressure"] == 1
            finally:
                blocked.close()
                rejected.close()

    def test_client_disconnect_mid_round_drops_its_work(
            self, fleet_factory, materialized):
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            handle.pause_rounds()
            doomed = GatewayClient(*handle.address)
            doomed.attach("cam-0")
            with ThreadPoolExecutor(max_workers=1) as pool:
                pending = pool.submit(doomed.ingest, "cam-0",
                                      windows["cam-0"][0])
                survivor = GatewayClient(*handle.address)
                try:
                    survivor.attach("cam-1")
                    _wait_for_queue(survivor, {"cam-0": 1})
                    doomed.close()  # mid-round disconnect
                    with pytest.raises((ConnectionError, OSError)):
                        pending.result(timeout=30)
                    _wait_for_queue(survivor, {})  # queued work dropped
                    handle.resume_rounds()
                    reply = survivor.ingest("cam-1", windows["cam-1"][0])
                    assert np.array_equal(reply["scores_array"],
                                          reference["cam-1"][0])
                finally:
                    survivor.close()

    def test_bad_windows_cannot_fail_other_clients_round(
            self, fleet_factory, materialized):
        """One client's un-scoreable windows (wrong frame_dim — passes
        the admission shape check) must error alone, not poison the
        coalesced round for everyone else."""
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            handle.pause_rounds()  # force both requests into one round
            saboteur = GatewayClient(*handle.address)
            victim = GatewayClient(*handle.address)
            observer = GatewayClient(*handle.address)
            try:
                saboteur.attach("cam-0")
                victim.attach("cam-1")
                with ThreadPoolExecutor(max_workers=2) as pool:
                    bad = pool.submit(saboteur.ingest, "cam-0",
                                      np.zeros((1, 4, 7)))
                    good = pool.submit(victim.ingest, "cam-1",
                                       windows["cam-1"][0])
                    _wait_for_queue(observer, {"cam-0": 1, "cam-1": 1})
                    handle.resume_rounds()
                    with pytest.raises(GatewayError) as err:
                        bad.result(timeout=60)
                    assert err.value.code == "bad_request"
                    assert "cam-0" in err.value.message
                    reply = good.result(timeout=60)
                assert np.array_equal(reply["scores_array"],
                                      reference["cam-1"][0])
            finally:
                saboteur.close()
                victim.close()
                observer.close()

    def test_internal_round_failure_is_typed(self, fleet_factory,
                                             materialized):
        windows, _ = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                client.attach("cam-0")
                # Sabotage the fleet after attach: the round itself
                # fails server-side and must come back as a typed
                # internal error, not a hung or dropped connection.
                fleet.remove("cam-0")
                with pytest.raises(GatewayError) as err:
                    client.ingest("cam-0", windows["cam-0"][0])
                assert err.value.code in ("internal", "unknown_stream")


class TestShutdown:
    def test_graceful_drain(self, fleet_factory, materialized):
        windows, reference = materialized
        with fleet_factory() as fleet:
            handle = serve_in_thread(fleet)
            client = GatewayClient(*handle.address)
            client.attach("cam-0")
            reply = client.ingest("cam-0", windows["cam-0"][0])
            assert np.array_equal(reply["scores_array"],
                                  reference["cam-0"][0])
            assert client.shutdown()["draining"] is True
            handle.thread.join(timeout=60)
            assert not handle.thread.is_alive()
            with pytest.raises((ConnectionError, OSError)):
                GatewayClient(*handle.address).stats()
            client.close()
            handle.stop()  # idempotent after a client-driven shutdown

    def test_drain_serves_queued_work(self, fleet_factory, materialized):
        windows, reference = materialized
        with fleet_factory() as fleet:
            handle = serve_in_thread(fleet)
            handle.pause_rounds()  # force the ingest to sit in the queue
            client = GatewayClient(*handle.address)
            shutter = GatewayClient(*handle.address)
            try:
                client.attach("cam-0")
                with ThreadPoolExecutor(max_workers=1) as pool:
                    pending = pool.submit(client.ingest, "cam-0",
                                          windows["cam-0"][0])
                    _wait_for_queue(shutter, {"cam-0": 1})
                    # Drain un-pauses the round loop and must serve the
                    # queued request before the server goes away.
                    shutter.shutdown()
                    reply = pending.result(timeout=60)
                assert np.array_equal(reply["scores_array"],
                                      reference["cam-0"][0])
            finally:
                client.close()
                shutter.close()
                handle.thread.join(timeout=60)
                assert not handle.thread.is_alive()

    def test_ingest_after_shutdown_rejected(self, fleet_factory,
                                            materialized):
        windows, _ = materialized
        with fleet_factory() as fleet:
            handle = serve_in_thread(fleet)
            # Pipeline attach + shutdown + ingest in one burst: the
            # server dispatches them in order, so the ingest
            # deterministically lands after draining has begun.
            sock = socket.create_connection(handle.address, timeout=10)
            try:
                burst = (
                    encode_frame(request_frame("attach", 1, stream="cam-0"))
                    + encode_frame(request_frame("shutdown", 2))
                    + encode_frame(request_frame(
                        "ingest", 3, stream="cam-0",
                        windows=np.asarray(windows["cam-0"][0]).tolist())))
                sock.sendall(burst)
                replies = {}
                for _ in range(3):
                    reply = recv_frame(sock)
                    replies[reply["id"]] = reply
                assert replies[1]["ok"] and replies[2]["ok"]
                assert replies[3]["ok"] is False
                assert replies[3]["error"]["code"] == "shutting_down"
            finally:
                sock.close()
            handle.thread.join(timeout=60)


class TestLoadGenerator:
    def test_closed_loop_parity_and_latency(self, fleet_factory,
                                            materialized):
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            generator = LoadGenerator(
                handle.address, windows,
                LoadGenConfig(clients=2, rounds=ROUNDS))
            result = generator.run()
        assert not result.errors
        assert result.rejected == 0
        assert result.requests == len(windows) * ROUNDS
        assert result.latency.count == result.requests
        for name, rounds in result.scores.items():
            for round_index, scores in rounds:
                assert np.array_equal(scores,
                                      reference[name][round_index])
        summary = result.summary()
        assert summary["windows_per_sec"] > 0
        assert summary["latency"]["count"] == result.requests

    def test_open_loop_rate_paces_sends(self, fleet_factory, materialized):
        windows, _ = materialized
        one_stream = {"cam-0": windows["cam-0"]}
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            generator = LoadGenerator(
                handle.address, one_stream,
                LoadGenConfig(clients=1, rounds=ROUNDS, rate=10.0))
            start = time.perf_counter()
            result = generator.run()
            elapsed = time.perf_counter() - start
        assert not result.errors
        assert result.requests == ROUNDS
        # 3 requests at 10 req/s are due at t=0, 0.1, 0.2.
        assert elapsed >= 0.2


def _wait_for_queue(client: GatewayClient, expected: dict,
                    timeout: float = 30.0) -> None:
    """Poll the stats op (served off the event loop, so it works while
    rounds are paused) until the queued map matches."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.stats()["queued"] == expected:
            return
        time.sleep(0.01)
    raise AssertionError(f"queue never reached {expected!r}")


class TestEnginePolicies:
    """The gateway's scheduling seam: pluggable engine policies over the
    wire — parity under every policy, deadlines shed stale work."""

    @pytest.mark.parametrize("policy", ["fair", "greedy", "priority"])
    def test_parity_under_every_policy(self, fleet_factory, materialized,
                                       policy):
        windows, reference = materialized
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, policy=policy) as handle:
            with GatewayClient(*handle.address) as client:
                for name in windows:
                    client.attach(name)
                for round_index in range(ROUNDS):
                    for name in windows:
                        reply = client.ingest(name,
                                              windows[name][round_index])
                        assert np.array_equal(
                            reply["scores_array"],
                            reference[name][round_index]), \
                            f"{policy}: {name}[{round_index}] diverged"
                stats = client.stats()
                assert stats["engine"]["policy"] == policy
                assert stats["engine"]["backend"] == "inline"
                assert stats["engine"]["rounds"] >= 1

    def test_priority_request_fields_validated(self, fleet_factory,
                                               materialized):
        windows, _ = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                client.attach("cam-0")
                body = np.asarray(windows["cam-0"][0]).tolist()
                with pytest.raises(GatewayError) as err:
                    client.request("ingest", stream="cam-0", windows=body,
                                   priority="high")
                assert err.value.code == "bad_request"
                with pytest.raises(GatewayError) as err:
                    client.request("ingest", stream="cam-0", windows=body,
                                   deadline_ms=-5)
                assert err.value.code == "bad_request"

    def test_missed_deadline_answers_expired(self, fleet_factory,
                                             materialized):
        windows, reference = materialized
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, policy="priority") as handle:
            handle.pause_rounds()  # let the deadline lapse while queued
            client = GatewayClient(*handle.address)
            observer = GatewayClient(*handle.address)
            try:
                client.attach("cam-0")
                observer.attach("cam-0")
                with ThreadPoolExecutor(max_workers=1) as pool:
                    doomed = pool.submit(
                        client.request, "ingest", stream="cam-0",
                        windows=np.asarray(windows["cam-0"][0]).tolist(),
                        deadline_ms=20)
                    _wait_for_queue(observer, {"cam-0": 1})
                    time.sleep(0.1)  # 20 ms deadline long gone
                    handle.resume_rounds()
                    with pytest.raises(GatewayError) as err:
                        doomed.result(timeout=60)
                    assert err.value.code == "expired"
                # The expired request consumed no deployment step.
                reply = observer.ingest("cam-0", windows["cam-0"][0])
                assert reply["step"] == 0
                assert np.array_equal(reply["scores_array"],
                                      reference["cam-0"][0])
            finally:
                client.close()
                observer.close()


class TestFleetRoundEntryPoints:
    """DeploymentFleet.ingest_round/score_only — the server-side seam."""

    def test_ingest_round_matches_step(self, fleet_factory, materialized):
        windows, reference = materialized
        fleet = fleet_factory()
        for round_index in range(ROUNDS):
            events = fleet.ingest_round(
                {name: windows[name][round_index] for name in windows})
            for name, event in events.items():
                assert event.step == round_index
                assert np.array_equal(event.scores,
                                      reference[name][round_index])

    def test_partial_round_and_unknown_stream(self, fleet_factory,
                                              materialized):
        windows, reference = materialized
        fleet = fleet_factory()
        events = fleet.ingest_round({"cam-1": windows["cam-1"][0]})
        assert set(events) == {"cam-1"}
        assert np.array_equal(events["cam-1"].scores, reference["cam-1"][0])
        with pytest.raises(KeyError, match="ghost"):
            fleet.ingest_round({"ghost": windows["cam-1"][0]})

    def test_bad_shape_rejected(self, fleet_factory):
        fleet = fleet_factory(streams=1)
        with pytest.raises(ValueError, match="cam-0"):
            fleet.ingest_round({"cam-0": np.zeros((2, 4))})
        with pytest.raises(ValueError, match="cam-0"):
            fleet.score_only({"cam-0": np.zeros((0, 4, 8))})

    def test_score_only_leaves_steps_alone(self, fleet_factory,
                                           materialized):
        windows, reference = materialized
        fleet = fleet_factory()
        scores = fleet.score_only({"cam-0": windows["cam-0"][0]})
        assert np.array_equal(scores["cam-0"], reference["cam-0"][0])
        event = fleet.ingest_round({"cam-0": windows["cam-0"][0]})["cam-0"]
        assert event.step == 0  # score_only consumed no deployment step

    def test_fleet_context_manager_is_uniform(self, fleet_factory):
        with fleet_factory(streams=1) as fleet:
            assert isinstance(fleet, DeploymentFleet)
            assert len(fleet) == 1
        fleet.close()  # idempotent no-op, mirroring ShardedFleet.close
        assert fleet.step()  # still serviceable: close holds no resources
