"""Tests for the token table and joint embedding model (ImageBind substitute)."""

import numpy as np
import pytest

from repro.embedding import (
    TokenEmbeddingTable,
    build_default_embedding_model,
    build_domain_corpus,
)
from repro.nn import Tensor


class TestTokenEmbeddingTable:
    def test_rows_align_with_vocab(self, embedding_model):
        table = embedding_model.token_table
        assert table.vectors.shape == (table.tokenizer.vocab_size, table.dim)

    def test_rows_unit_norm(self, embedding_model):
        norms = np.linalg.norm(embedding_model.token_table.vectors, axis=1)
        np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-10)

    def test_lookup(self, embedding_model):
        table = embedding_model.token_table
        out = table.lookup([0, 3, 3])
        assert out.shape == (3, table.dim)
        np.testing.assert_allclose(out[1], out[2])

    def test_lookup_out_of_range(self, embedding_model):
        with pytest.raises(IndexError):
            embedding_model.token_table.lookup([10**6])

    def test_embed_text_pools_tokens(self, embedding_model):
        table = embedding_model.token_table
        vec = table.embed_text("sneaky")
        ids = table.tokenizer.encode("sneaky")
        np.testing.assert_allclose(vec, table.lookup(ids).mean(axis=0))

    def test_embed_empty_text(self, embedding_model):
        vec = embedding_model.token_table.embed_text("")
        np.testing.assert_allclose(vec, np.zeros(embedding_model.token_dim))

    def test_nearest_tokens_self(self, embedding_model):
        table = embedding_model.token_table
        row = table.vectors[10]
        hits = table.nearest_tokens(row, k=1, skip_special=False)
        assert hits[0][0] == 10

    def test_nearest_tokens_skip_special(self, embedding_model):
        table = embedding_model.token_table
        for metric in TokenEmbeddingTable.METRICS:
            hits = table.nearest_tokens(table.vectors[5], k=5, metric=metric)
            specials = {table.tokenizer.PAD, table.tokenizer.UNK}
            for _, word, _ in hits:
                assert word not in specials

    def test_scores_shape_validation(self, embedding_model):
        with pytest.raises(ValueError):
            embedding_model.token_table.scores(np.zeros(3))

    def test_unknown_metric(self, embedding_model):
        with pytest.raises(ValueError):
            embedding_model.token_table.scores(
                np.zeros(embedding_model.token_dim), metric="hamming")


class TestJointEmbeddingModel:
    def test_text_fit_quality(self, embedding_model):
        """The ridge-fitted text path must land near ontology vectors."""
        assert embedding_model.text_fit_cosine > 0.6

    def test_encode_text_near_concept_vector(self, embedding_model):
        space = embedding_model.concept_space
        vec = embedding_model.encode_text("firearm")
        target = space.concept_vector("firearm")
        cos = vec @ target / (np.linalg.norm(vec) * np.linalg.norm(target))
        assert cos > 0.5

    def test_render_encode_inverts(self, embedding_model):
        """encode_image(render_semantic(s)) ~ s without noise."""
        space = embedding_model.concept_space
        semantic = space.concept_vector("blast")
        frame = embedding_model.render_semantic(semantic)
        recovered = embedding_model.encode_image(frame)
        np.testing.assert_allclose(recovered, semantic, atol=1e-8)

    def test_render_noise_requires_rng(self, embedding_model):
        semantic = embedding_model.concept_space.concept_vector("blast")
        with pytest.raises(ValueError):
            embedding_model.render_semantic(semantic, noise=0.1)

    def test_alignment_class_consistent(self, embedding_model, rng):
        """A rendered 'firearm' frame aligns more with 'firearm' than 'walking'."""
        semantic = embedding_model.concept_space.concept_vector("firearm")
        frame = embedding_model.render_semantic(semantic, rng=rng, noise=0.1)
        same = embedding_model.alignment(frame, "firearm")
        other = embedding_model.alignment(frame, "walking")
        assert same > other + 0.2

    def test_encode_image_batch(self, embedding_model, rng):
        frames = rng.normal(size=(5, embedding_model.frame_dim))
        out = embedding_model.encode_image(frames)
        assert out.shape == (5, embedding_model.joint_dim)

    def test_encode_image_wrong_dim(self, embedding_model):
        with pytest.raises(ValueError):
            embedding_model.encode_image(np.zeros(17))

    def test_differentiable_text_path_gradient(self, embedding_model):
        """Gradients must flow through encode_token_tensor into the tokens —
        the mechanism continuous adaptation relies on."""
        ids = embedding_model.tokenizer.encode("sneaky")
        tokens = Tensor(embedding_model.token_table.lookup(ids),
                        requires_grad=True)
        out = embedding_model.encode_token_tensor(tokens)
        out.sum().backward()
        assert tokens.grad is not None
        assert np.any(tokens.grad != 0)

    def test_differentiable_path_matches_frozen_path(self, embedding_model):
        ids = embedding_model.tokenizer.encode("sneaky")
        tokens = embedding_model.token_table.lookup(ids)
        frozen = embedding_model.encode_token_vectors(tokens)
        diff = embedding_model.encode_token_tensor(Tensor(tokens)).numpy()
        np.testing.assert_allclose(frozen, diff, atol=1e-12)

    def test_encode_token_vectors_validation(self, embedding_model):
        with pytest.raises(ValueError):
            embedding_model.encode_token_vectors(np.zeros((2, 3)))

    def test_builder_deterministic(self):
        a = build_default_embedding_model(seed=11, num_merges=50)
        b = build_default_embedding_model(seed=11, num_merges=50)
        np.testing.assert_allclose(a.encode_text("sneaky"),
                                   b.encode_text("sneaky"))

    def test_corpus_nonempty_and_deterministic(self):
        corpus = build_domain_corpus()
        assert len(corpus) > 100
        assert corpus == build_domain_corpus()


class TestEncodeImageRowStability:
    def test_3d_input_matches_per_window_encoding(self):
        """A window's frame encodings must not depend on how many windows
        share the encode_image call (micro-batch parity substrate)."""
        model = build_default_embedding_model(seed=7)
        rng = np.random.default_rng(0)
        windows = rng.normal(size=(3, 8, model.frame_dim))
        together = model.encode_image(windows)
        assert together.shape == (3, 8, model.joint_dim)
        for i in range(3):
            alone = model.encode_image(windows[i])
            np.testing.assert_array_equal(together[i], alone)
