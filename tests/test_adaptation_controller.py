"""Integration-lite tests for the continuous adaptation controller."""

import numpy as np
import pytest

from repro.adaptation import (
    AdaptationConfig,
    ContinuousAdaptationController,
    MonitorConfig,
    TokenUpdateConfig,
)


def small_config(**overrides):
    base = dict(
        monitor=MonitorConfig(window=12, lag=6, trigger_threshold=0.02),
        update=TokenUpdateConfig(learning_rate=0.02, inner_steps=1),
        adaptation_rounds=2,
        min_trigger_k=2,
    )
    base.update(overrides)
    return AdaptationConfig(**base)


def deployed_controller(fresh_model, embedding_model, rng, **overrides):
    model = fresh_model(window=4)
    anchors = rng.normal(size=(10, 4, embedding_model.frame_dim))
    controller = ContinuousAdaptationController(
        model, small_config(**overrides), normal_anchor_windows=anchors)
    return model, controller


class TestControllerLifecycle:
    def test_freezes_model_on_construction(self, fresh_model, embedding_model, rng):
        model, controller = deployed_controller(fresh_model, embedding_model, rng)
        assert all(not p.requires_grad for p in model.parameters())
        assert all(t.requires_grad for t in model.token_parameters())

    def test_process_batch_returns_log(self, fresh_model, embedding_model, rng):
        model, controller = deployed_controller(fresh_model, embedding_model, rng)
        windows = rng.normal(size=(6, 4, embedding_model.frame_dim))
        log = controller.process_batch(windows)
        assert log.step == 0
        assert log.scores.shape == (6,)
        assert not log.updated  # not warmed up yet

    def test_no_adaptation_before_warmup(self, fresh_model, embedding_model, rng):
        model, controller = deployed_controller(fresh_model, embedding_model, rng)
        tokens_before = [t.data.copy() for t in model.token_parameters()]
        controller.process_batch(rng.normal(size=(4, 4, embedding_model.frame_dim)))
        for t, before in zip(model.token_parameters(), tokens_before):
            np.testing.assert_allclose(t.data, before)

    def test_rejects_2d_windows(self, fresh_model, embedding_model, rng):
        _, controller = deployed_controller(fresh_model, embedding_model, rng)
        with pytest.raises(ValueError):
            controller.process_batch(rng.normal(size=(4, embedding_model.frame_dim)))

    def test_anchor_shape_validation(self, fresh_model, embedding_model, rng):
        model = fresh_model(window=4)
        with pytest.raises(ValueError):
            ContinuousAdaptationController(
                model, small_config(),
                normal_anchor_windows=rng.normal(size=(4, embedding_model.frame_dim)))

    def test_logs_accumulate(self, fresh_model, embedding_model, rng):
        _, controller = deployed_controller(fresh_model, embedding_model, rng)
        for _ in range(3):
            controller.process_batch(rng.normal(size=(4, 4, embedding_model.frame_dim)))
        assert [log.step for log in controller.logs] == [0, 1, 2]

    def test_mean_score_trace(self, fresh_model, embedding_model, rng):
        _, controller = deployed_controller(fresh_model, embedding_model, rng)
        controller.process_batch(rng.normal(size=(4, 4, embedding_model.frame_dim)))
        assert controller.mean_score_trace().size > 0


class TestAdaptationTriggering:
    def _drive_with_trickle(self, fresh_model, embedding_model,
                            frame_generator, rng):
        """Warm up past the monitor window with the maintenance trickle on,
        which guarantees adaptation steps regardless of the (untrained)
        model's score geometry.  The K = |delta_m| * N rule itself is unit-
        tested in test_adaptation_monitor."""
        model, controller = deployed_controller(
            fresh_model, embedding_model, rng,
            monitor=MonitorConfig(window=12, lag=6, min_k=2,
                                  trigger_threshold=0.02),
            min_trigger_k=1)

        def class_windows(cls, n):
            return np.stack([
                np.stack([frame_generator.anomaly_frame(cls, rng) for _ in range(4)])
                for _ in range(n)])

        logs = []
        for _ in range(5):
            logs.append(controller.process_batch(class_windows("Stealing", 8)))
        return model, controller, logs

    def test_trickle_triggers_update_after_warmup(self, fresh_model,
                                                  embedding_model,
                                                  frame_generator, rng):
        model, controller, logs = self._drive_with_trickle(
            fresh_model, embedding_model, frame_generator, rng)
        assert any(log.updated for log in logs)
        assert controller.update_count > 0

    def test_k_rule_logged(self, fresh_model, embedding_model,
                           frame_generator, rng):
        _, controller, logs = self._drive_with_trickle(
            fresh_model, embedding_model, frame_generator, rng)
        triggered = [log for log in logs if log.updated]
        assert triggered
        assert all(log.k >= 1 for log in triggered)

    def test_tokens_move_on_trigger(self, fresh_model, embedding_model,
                                    frame_generator, rng):
        model, controller, logs = self._drive_with_trickle(
            fresh_model, embedding_model, frame_generator, rng)
        kg = model.kgs[0]
        # At least one node's embeddings differ from their vocab initialization.
        moved = False
        for node in kg.concept_nodes():
            if node.token_ids:
                init = embedding_model.token_table.lookup(node.token_ids)
                if init.shape == node.token_embeddings.shape and \
                        not np.allclose(init, node.token_embeddings):
                    moved = True
        assert moved

    def test_structural_adaptation_can_be_disabled(self, fresh_model,
                                                   embedding_model, rng):
        model = fresh_model(window=4)
        controller = ContinuousAdaptationController(
            model, small_config(structural_adaptation=False))
        assert controller.config.structural_adaptation is False
