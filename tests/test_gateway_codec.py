"""Wire-codec tests: binary frames end-to-end, negotiation and the v1
fallback, mixed-codec clients on one server, and frame-cap enforcement.

The invariant under test everywhere: whatever codec the bytes travel
in, the decoded scores are bit-identical to a direct in-process
``fleet.step()`` run.
"""

import socket
import struct

import numpy as np
import pytest

from repro.api import Deployment
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.gateway import GatewayClient, serve_in_thread
from repro.gateway.protocol import (
    ERROR_CODES,
    FrameError,
    MAX_FRAME_BYTES,
    encode_frame,
    frame_codec,
    recv_frame,
    request_frame,
)
from repro.serving import DeploymentFleet
from repro.utils.binframe import BIN_HEADER, BIN_MAGIC

ROUNDS = 3


def make_stream(frame_generator, seed, windows_per_step=2):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=2, steps_after_shift=2,
        windows_per_step=windows_per_step, window=4, seed=seed))


@pytest.fixture()
def fleet_factory(fresh_model, frame_generator):
    def make(streams=3):
        fleet = DeploymentFleet()
        model = fresh_model("Stealing", window=4)
        model.eval()
        for index in range(streams):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=40 + index))
        return fleet
    return make


@pytest.fixture()
def materialized(fleet_factory):
    fleet = fleet_factory()
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(ROUNDS)]
               for slot in fleet.slots}
    reference = {name: [] for name in fleet.names}
    for _ in range(ROUNDS):
        for event in fleet.step(batched=True):
            reference[event.stream].append(event.scores)
    return windows, reference


def raw_exchange(address, frames: list[bytes],
                 max_bytes: int = MAX_FRAME_BYTES) -> list:
    """Send raw pre-encoded frames on a bare socket; collect replies
    until the server stops answering (None = connection closed)."""
    replies = []
    with socket.create_connection(address, timeout=10) as sock:
        for frame in frames:
            sock.sendall(frame)
            try:
                replies.append(recv_frame(sock, max_bytes))
            except (FrameError, ConnectionError, OSError, TimeoutError):
                replies.append(None)
                break
    return replies


class TestNegotiation:
    def test_binary_preferring_client_upgrades(self, fleet_factory):
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                assert client.negotiated_codec == "json"
                reply = client.attach("cam-0")
                assert client.negotiated_codec == "binary"
                assert client.protocol_version == 2
                assert set(reply["codecs"]) == {"json", "binary"}

    def test_json_preferring_client_stays_json(self, fleet_factory):
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address, codec="json") as client:
                client.attach("cam-0")
                assert client.negotiated_codec == "json"
                assert client.protocol_version == 1

    def test_v1_only_server_downgrades_the_client(self, fleet_factory,
                                                  materialized):
        """A codec='json' server is a legacy v1 peer: the v2 attach gets
        version_mismatch, the client silently falls back to v1 JSON, and
        scores still match the direct run bit for bit."""
        windows, reference = materialized
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, codec="json") as handle:
            with GatewayClient(*handle.address) as client:
                reply = client.attach("cam-0")
                assert client.protocol_version == 1
                assert client.negotiated_codec == "json"
                assert reply.get("codecs") == ["json"]
                for round_index in range(ROUNDS):
                    got = client.scores("cam-0",
                                        windows["cam-0"][round_index])
                    np.testing.assert_array_equal(
                        got, reference["cam-0"][round_index])

    def test_binary_frame_to_v1_server_is_bad_frame(self, fleet_factory):
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, codec="json") as handle:
            frame = encode_frame(request_frame("stats", 1, version=1),
                                 codec="binary")
            reply = raw_exchange(handle.address, [frame])[0]
            assert reply is not None
            assert reply["error"]["code"] == "bad_frame"
            assert reply["v"] == 1

    def test_binary_frame_claiming_v1_is_version_mismatch(
            self, fleet_factory):
        """Binary framing is a v2 feature; a binary frame whose envelope
        says v=1 is self-contradictory and typed as version_mismatch."""
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            frame = encode_frame(request_frame("stats", 1, version=1),
                                 codec="binary")
            reply = raw_exchange(handle.address, [frame])[0]
            assert reply["error"]["code"] == "version_mismatch"


class TestBinaryParity:
    def test_binary_scores_and_ingest_parity(self, fleet_factory,
                                             materialized):
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                for name in windows:
                    client.attach(name)
                assert client.negotiated_codec == "binary"
                for round_index in range(ROUNDS):
                    for name in windows:
                        reply = client.ingest(name,
                                              windows[name][round_index])
                        np.testing.assert_array_equal(
                            np.asarray(reply["scores"]),
                            reference[name][round_index])

    def test_mixed_codec_clients_share_one_server(self, fleet_factory,
                                                  materialized):
        """One JSON client and one binary client interleave rounds on
        the same server; every response matches the direct run."""
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address, codec="json") as alice, \
                    GatewayClient(*handle.address) as bob:
                alice.attach("cam-0")
                bob.attach("cam-1")
                assert alice.negotiated_codec == "json"
                assert bob.negotiated_codec == "binary"
                for round_index in range(ROUNDS):
                    got_a = alice.scores("cam-0",
                                         windows["cam-0"][round_index])
                    got_b = bob.scores("cam-1",
                                       windows["cam-1"][round_index])
                    np.testing.assert_array_equal(
                        got_a, reference["cam-0"][round_index])
                    np.testing.assert_array_equal(
                        got_b, reference["cam-1"][round_index])
                counters = bob.stats()["metrics"]["counters"]
                assert counters["gateway.frames.json"] > 0
                assert counters["gateway.frames.binary"] > 0

    def test_per_frame_codec_switch_on_one_connection(self, fleet_factory,
                                                      materialized):
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address) as client:
                client.attach("cam-0")
                json_reply = client.request(
                    "scores", codec="json", stream="cam-0",
                    windows=windows["cam-0"][0].tolist())
                binary_reply = client.request(
                    "scores", codec="binary", stream="cam-0",
                    windows=windows["cam-0"][0])
                assert frame_codec(json_reply) == "json"
                assert frame_codec(binary_reply) == "binary"
                np.testing.assert_array_equal(
                    np.asarray(json_reply["scores"]),
                    reference["cam-0"][0])
                np.testing.assert_array_equal(
                    np.asarray(binary_reply["scores"]),
                    reference["cam-0"][0])

    def test_nan_inf_windows_round_trip(self, fleet_factory, materialized):
        """Pathological float payloads ride binary frames bit-exactly;
        the binary response matches the JSON response for the same
        windows (NaN-aware comparison)."""
        windows, _ = materialized
        ugly = np.array(windows["cam-0"][0])
        ugly[0, 0, 0] = np.nan
        ugly[0, 1, 0] = np.inf
        ugly[0, 1, 1] = -np.inf
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address, codec="json") as js, \
                    GatewayClient(*handle.address) as bin_client:
                js.attach("cam-0")
                bin_client.attach("cam-0")
                got_json = js.scores("cam-0", ugly)
                got_binary = bin_client.scores("cam-0", ugly)
        np.testing.assert_array_equal(got_json, got_binary)


class TestFrameFuzz:
    def test_truncated_binary_header_closes_connection(self, fleet_factory):
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            reply = raw_exchange(handle.address, [BIN_MAGIC + b"\x02"])[0]
            assert reply is None  # server dropped the unparseable stream

    def test_oversized_binary_lengths_rejected(self, fleet_factory):
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, max_frame_bytes=4096) as handle:
            header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, 1, 64,
                                     0x7FFF_FFF0)
            reply = raw_exchange(handle.address, [header])[0]
            assert reply is not None
            assert reply["error"]["code"] == "bad_frame"

    def test_garbage_binary_body_is_typed_error(self, fleet_factory):
        garbage = b"\x9cnot-json\xff" * 3
        header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, 0, len(garbage), 0)
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            reply = raw_exchange(handle.address, [header + garbage])[0]
            assert reply is not None
            assert reply["error"]["code"] == "bad_frame"

    def test_mutated_binary_frames_never_kill_the_server(
            self, fleet_factory, materialized):
        """Random corruptions of a valid binary request either produce a
        typed error or a closed connection — and the server keeps
        serving well-formed clients afterwards."""
        windows, reference = materialized
        rng = np.random.default_rng(23)
        pristine = encode_frame(
            request_frame("scores", 1, stream="cam-0",
                          windows=windows["cam-0"][0]),
            codec="binary")
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            for _ in range(25):
                blob = bytearray(pristine)
                for _ in range(rng.integers(1, 6)):
                    blob[rng.integers(0, len(blob))] = rng.integers(0, 256)
                replies = raw_exchange(handle.address, [bytes(blob)])
                reply = replies[0]
                if reply is not None and "error" in reply:
                    # Any *typed* error is fine (a mutated stream name
                    # legitimately yields not_attached); the point is
                    # no crash and no untyped failure.
                    assert reply["error"]["code"] in ERROR_CODES
            with GatewayClient(*handle.address) as client:
                client.attach("cam-0")
                np.testing.assert_array_equal(
                    client.scores("cam-0", windows["cam-0"][0]),
                    reference["cam-0"][0])


class TestFrameCap:
    def test_client_write_cap_raises_before_send(self, fleet_factory):
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            with GatewayClient(*handle.address,
                               max_frame_bytes=2048) as client:
                client.attach("cam-0")
                with pytest.raises(FrameError, match="exceeds"):
                    client.ingest("cam-0", np.zeros((8, 8, 16)))
                # The connection survived: nothing hit the socket.
                assert client.stats()["engine"] is not None

    def test_server_response_overflow_is_typed_bad_frame(
            self, fleet_factory):
        """A response the server cannot fit under its own frame cap must
        come back as a typed bad_frame error, not a silent close."""
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, max_frame_bytes=384) as handle:
            frame = encode_frame(request_frame("stats", 1), codec="json",
                                 max_bytes=MAX_FRAME_BYTES)
            reply = raw_exchange(handle.address, [frame])[0]
            assert reply is not None
            assert reply["error"]["code"] == "bad_frame"
            assert "frame cap" in reply["error"]["message"]

    def test_encode_frame_binary_write_cap(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(request_frame("ingest", 1, stream="s",
                                       windows=np.zeros((32, 32, 32))),
                         codec="binary", max_bytes=4096)


class TestJsonPrefixDisambiguation:
    def test_json_length_prefix_can_never_look_binary(self):
        # A JSON frame's first byte is the high byte of a u32 BE length
        # <= MAX_FRAME_BYTES; the binary magic's first byte is 0xb7.
        assert struct.pack(">I", MAX_FRAME_BYTES)[0] < BIN_MAGIC[0]
