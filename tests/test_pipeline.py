"""Tests for pipelined serving rounds: async group-commit acks and the
fused score/ingest scatter.

The load-bearing properties:

* **Ack-after-fsync, overlapped** — a pipelined engine's ``run_round``
  returns immediately and results arrive via ``on_commit`` only after
  the committer thread's group-commit fsync; a crash after handoff but
  before the fsync loses nothing that was acked and replays nothing
  acked twice.
* **FIFO + parity** — commit batches deliver strictly in round order,
  and pipelined scores stay bit-identical to a serial engine's over the
  same windows.
* **Failure latching** — one failed fsync fails that batch *and* every
  batch queued behind it with typed ``durability`` errors, and latches
  admission shut.
* **Fused scatter** — ``serve_round`` produces bit-identical scores to
  the split score/ingest path, one ring round-trip per shard per wave,
  with per-entry bad-input isolation via the split fallback.
"""

import shutil
import threading

import numpy as np
import pytest

from repro.api import Deployment
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.errors import DurabilityError
from repro.runtime import AdmissionError, EngineRequest
from repro.serving import DeploymentFleet, FleetInfra, ShardedFleet
from repro.wal import WalConfig, WalDurability, recover_fleet

INFRA = FleetInfra(embedding_seed=7, generator_seed=5)
ROUNDS = 3


def make_stream(frame_generator, seed, windows_per_step=2):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=2, steps_after_shift=2,
        windows_per_step=windows_per_step, window=4, seed=seed))


def make_fleet(fresh_model, frame_generator, streams=3) -> DeploymentFleet:
    fleet = DeploymentFleet()
    model = fresh_model("Stealing", window=4)
    model.eval()
    for index in range(streams):
        fleet.add(f"cam-{index}",
                  Deployment(model, mission="Stealing", adaptive=False),
                  make_stream(frame_generator, seed=60 + index))
    return fleet


@pytest.fixture()
def materialized(fresh_model, frame_generator):
    """(windows, reference): per-stream arrivals for ROUNDS rounds and
    the scores a direct ``fleet.step()`` run produces."""
    fleet = make_fleet(fresh_model, frame_generator)
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(ROUNDS)]
               for slot in fleet.slots}
    reference = {name: [] for name in fleet.names}
    for _ in range(ROUNDS):
        for event in fleet.step(batched=True):
            reference[event.stream].append(event.scores)
    return windows, reference


def pipelined(fleet, sink=None):
    """Flip a fleet's engine into pipelined mode with ``sink`` (a list)
    collecting each committed batch."""
    engine = fleet.engine
    engine.pipeline = True
    if sink is not None:
        engine.on_commit = sink.append
    return engine


def submit_round(engine, fleet, windows, round_index):
    for name in fleet.names:
        engine.submit(EngineRequest(op="ingest", stream=name,
                                    windows=windows[name][round_index]))


class TestPipelinedEngine:
    def test_run_round_returns_empty_results_arrive_via_on_commit(
            self, fresh_model, frame_generator, materialized):
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        batches = []
        engine = pipelined(fleet, batches)
        for round_index in range(ROUNDS):
            submit_round(engine, fleet, windows, round_index)
            assert engine.run_round() == []
        engine.stop_committer()
        served = {name: [] for name in fleet.names}
        for batch in batches:
            for result in batch:
                assert result.kind == "event", (result.code, result.message)
                served[result.request.stream].append(result.event.scores)
        for name in fleet.names:
            assert len(served[name]) == ROUNDS
            for got, expected in zip(served[name], reference[name]):
                np.testing.assert_array_equal(got, expected)

    def test_batches_deliver_fifo(self, fresh_model, frame_generator,
                                  materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        batches = []
        engine = pipelined(fleet, batches)
        for round_index in range(ROUNDS):
            submit_round(engine, fleet, windows, round_index)
            engine.run_round()
        engine.stop_committer()
        assert len(batches) == ROUNDS
        # Each stream's scores replay its windows in submit order.
        for round_index, batch in enumerate(batches):
            for result in batch:
                np.testing.assert_array_equal(
                    result.request.windows,
                    windows[result.request.stream][round_index])

    def test_empty_round_commits_nothing(self, fresh_model,
                                         frame_generator):
        fleet = make_fleet(fresh_model, frame_generator)
        batches = []
        engine = pipelined(fleet, batches)
        assert engine.run_round() == []
        engine.stop_committer()
        assert batches == []

    def test_committer_restarts_after_stop(self, fresh_model,
                                           frame_generator, materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        batches = []
        engine = pipelined(fleet, batches)
        submit_round(engine, fleet, windows, 0)
        engine.run_round()
        engine.stop_committer()
        assert len(batches) == 1
        submit_round(engine, fleet, windows, 1)
        engine.run_round()
        engine.stop_committer()
        assert len(batches) == 2

    def test_stats_surface_pipeline_gauges(self, fresh_model,
                                           frame_generator, materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = pipelined(fleet, [])
        submit_round(engine, fleet, windows, 0)
        engine.run_round()
        engine.stop_committer()
        stats = engine.stats()
        assert stats["pipeline"]["enabled"] is True
        assert stats["pipeline"]["commit_batches"] == 1
        assert stats["pipeline"]["commit_backlog"] == 0
        assert stats["pipeline"]["committer_queue_depth"] == 0
        serial = make_fleet(fresh_model, frame_generator)
        assert "pipeline" not in serial.engine.stats()
        serial.close()

    def test_queue_wait_recorded_without_tracer(self, fresh_model,
                                                frame_generator,
                                                materialized):
        # Regression: queue_wait used to be observed only when a tracer
        # was attached; it must record on every round.
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        assert engine._tracer is None
        submit_round(engine, fleet, windows, 0)
        engine.run_round()
        hist = engine.metrics.histogram("engine.stage.queue_wait")
        assert hist.count == len(fleet.names)

    def test_drop_pending_predicate_called_once_per_request(
            self, fresh_model, frame_generator, materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        for round_index in range(2):
            submit_round(engine, fleet, windows, round_index)
        calls = []
        dropped = engine.drop_pending(
            lambda request: calls.append(request) or
            request.stream == "cam-1")
        assert len(calls) == 2 * len(fleet.names)
        assert len(dropped) == 2
        assert all(r.stream == "cam-1" for r in dropped)
        assert engine.pending_count() == 2 * (len(fleet.names) - 1)


class TestDurabilityPipelined:
    def test_acks_follow_fsync_and_recover(self, fresh_model,
                                           frame_generator, materialized,
                                           tmp_path):
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        durability = WalDurability(fleet, tmp_path,
                                   config=WalConfig(fsync_batch=64))
        batches = []
        engine = pipelined(fleet, batches)
        engine.durability = durability
        for round_index in range(ROUNDS):
            submit_round(engine, fleet, windows, round_index)
            engine.run_round()
        engine.stop_committer()
        # No clean close: recovery sees exactly what the committer
        # fsynced, and every acked score must come back bit-identically.
        recovered, report = recover_fleet(tmp_path)
        try:
            acked = {name: [] for name in fleet.names}
            for batch in batches:
                for result in batch:
                    assert result.kind == "event"
                    acked[result.request.stream].append(result.event.scores)
            for name, scores in acked.items():
                assert len(report.scores[name]) >= len(scores)
                for got, expected in zip(report.scores[name], scores):
                    np.testing.assert_array_equal(got, expected)
        finally:
            recovered.close()

    def test_crash_between_handoff_and_fsync(self, fresh_model,
                                             frame_generator, materialized,
                                             tmp_path):
        """SIGKILL emulation: round 1 committed and acked, round 2
        handed off but stalled before its fsync.  Copying the WAL
        directory while the flush is stalled yields the post-crash disk
        image; recovery from it must replay every acked ingest
        bit-identically and the unfsynced round at most once."""
        windows, _ = materialized
        wal_dir = tmp_path / "live"
        crash_dir = tmp_path / "crash"
        fleet = make_fleet(fresh_model, frame_generator)
        durability = WalDurability(fleet, wal_dir,
                                   config=WalConfig(fsync_batch=64))
        batches = []
        engine = pipelined(fleet, batches)
        engine.durability = durability

        stall = threading.Event()
        stalled = threading.Event()
        real_flush = durability.flush_only

        def flush_gate(trace_parent=None):
            if batches:  # round 1 already delivered -> stall round 2
                stalled.set()
                stall.wait(10.0)
                raise DurabilityError("crashed before fsync")
            real_flush(trace_parent=trace_parent)

        durability.flush_only = flush_gate
        submit_round(engine, fleet, windows, 0)
        engine.run_round()
        assert engine.drain_commits(timeout=10.0)
        assert len(batches) == 1
        submit_round(engine, fleet, windows, 1)
        engine.run_round()
        assert stalled.wait(10.0)
        # The crash: freeze the on-disk state mid-commit.
        shutil.copytree(wal_dir, crash_dir)
        stall.set()
        engine.stop_committer()

        recovered, report = recover_fleet(crash_dir)
        try:
            for result in batches[0]:
                name = result.request.stream
                replayed = report.scores[name]
                # Acked round 1 survives bit-identically...
                assert len(replayed) >= 1
                np.testing.assert_array_equal(replayed[0],
                                              result.event.scores)
                # ...and the never-fsynced round 2 replays at most once.
                assert len(replayed) <= 2
        finally:
            recovered.close()
        # The stalled batch's acks failed with the typed code.
        assert len(batches) == 2
        assert all(r.kind == "error" and r.code == "durability"
                   for r in batches[1])

    def test_fsync_failure_fails_queued_batches_and_latches(
            self, fresh_model, frame_generator, materialized, tmp_path):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        durability = WalDurability(fleet, tmp_path,
                                   config=WalConfig(fsync_batch=64))
        batches = []
        engine = pipelined(fleet, batches)
        engine.durability = durability

        release = threading.Event()
        entered = threading.Event()

        def failing_flush(trace_parent=None):
            entered.set()
            release.wait(10.0)
            raise DurabilityError("fsync failed")

        durability.flush_only = failing_flush
        submit_round(engine, fleet, windows, 0)
        engine.run_round()
        assert entered.wait(10.0)
        # Second batch queues behind the doomed first one.
        submit_round(engine, fleet, windows, 1)
        engine.run_round()
        release.set()
        engine.stop_committer()
        assert len(batches) == 2
        for batch in batches:
            assert all(r.kind == "error" and r.code == "durability"
                       for r in batch)
        with pytest.raises(AdmissionError) as excinfo:
            engine.submit(EngineRequest(
                op="ingest", stream="cam-0", windows=windows["cam-0"][2]))
        assert excinfo.value.code == "durability"

    def test_min_pending_wal_seq_covers_handed_off_batches(
            self, fresh_model, frame_generator, materialized, tmp_path):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        durability = WalDurability(fleet, tmp_path,
                                   config=WalConfig(fsync_batch=64))
        batches = []
        engine = pipelined(fleet, batches)
        engine.durability = durability

        release = threading.Event()
        entered = threading.Event()
        real_flush = durability.flush_only

        def stalling_flush(trace_parent=None):
            entered.set()
            release.wait(10.0)
            real_flush(trace_parent=trace_parent)

        durability.flush_only = stalling_flush
        submit_round(engine, fleet, windows, 0)
        low_queued = engine.min_pending_wal_seq()
        assert low_queued is not None
        engine.run_round()
        assert entered.wait(10.0)
        # Queues are empty, but the batch is riding the committer: its
        # seqs must still bound snapshot truncation.
        assert not engine.has_pending()
        assert engine.min_pending_wal_seq() == low_queued
        release.set()
        engine.stop_committer()
        assert engine.min_pending_wal_seq() is None

    def test_custom_hook_without_flush_only_still_commits(
            self, fresh_model, frame_generator, materialized):
        # Duck-typing compatibility: a durability hook that predates
        # flush_only gets the plain commit() call even in pipelined mode.
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        commits = []

        class LegacyDurability:
            def record_submit(self, request):
                return None

            def record_applied(self, stream, seq):
                pass

            def record_skip(self, seq):
                pass

            def commit(self, engine):
                commits.append(engine.rounds)

        batches = []
        engine = pipelined(fleet, batches)
        engine.durability = LegacyDurability()
        submit_round(engine, fleet, windows, 0)
        engine.run_round()
        engine.stop_committer()
        assert commits == [1]
        assert all(r.kind == "event" for r in batches[0])


class TestFusedScatter:
    def test_serve_round_parity_with_split_path(self, fresh_model,
                                                frame_generator,
                                                materialized):
        windows, reference = materialized
        single = make_fleet(fresh_model, frame_generator)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            for round_index in range(ROUNDS):
                arrivals = {name: windows[name][round_index]
                            for name in sharded.names}
                scored, events, unscored = sharded.serve_round(
                    arrivals, ingest=list(arrivals))
                assert unscored == []
                for name in sharded.names:
                    np.testing.assert_array_equal(
                        scored[name], reference[name][round_index])
                    np.testing.assert_array_equal(
                        events[name].scores, reference[name][round_index])
            assert sharded.transport_stats()["fused_rounds"] == ROUNDS

    def test_engine_round_uses_fused_path_untraced(self, fresh_model,
                                                   frame_generator,
                                                   materialized):
        windows, reference = materialized
        single = make_fleet(fresh_model, frame_generator)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            engine = sharded.engine
            for round_index in range(ROUNDS):
                for name in sharded.names:
                    engine.submit(EngineRequest(
                        op="ingest", stream=name,
                        windows=windows[name][round_index]))
                results = engine.run_round()
                for result in results:
                    assert result.kind == "event"
                    np.testing.assert_array_equal(
                        result.event.scores,
                        reference[result.request.stream][round_index])
            assert sharded.transport_stats()["fused_rounds"] >= ROUNDS
            stats = engine.stats()
            assert stats["transport"]["fused_rounds"] >= ROUNDS

    def test_fused_bad_input_isolated_per_entry(self, fresh_model,
                                                frame_generator,
                                                materialized):
        windows, reference = materialized
        single = make_fleet(fresh_model, frame_generator)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            engine = sharded.engine
            bad = np.zeros((1, 2, 3))  # wrong (T, D) for window=4 models
            engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                        windows=bad))
            for name in ("cam-1", "cam-2"):
                engine.submit(EngineRequest(op="ingest", stream=name,
                                            windows=windows[name][0]))
            outcomes = {r.request.stream: r for r in engine.run_round()}
            assert outcomes["cam-0"].kind == "error"
            assert outcomes["cam-0"].code == "bad_request"
            for name in ("cam-1", "cam-2"):
                assert outcomes[name].kind == "event", (
                    outcomes[name].code, outcomes[name].message)
                np.testing.assert_array_equal(outcomes[name].event.scores,
                                              reference[name][0])

    def test_mixed_scores_and_ingest_ops_fused(self, fresh_model,
                                               frame_generator,
                                               materialized):
        windows, reference = materialized
        single = make_fleet(fresh_model, frame_generator)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            engine = sharded.engine
            engine.submit(EngineRequest(op="scores", stream="cam-0",
                                        windows=windows["cam-0"][0]))
            engine.submit(EngineRequest(op="ingest", stream="cam-1",
                                        windows=windows["cam-1"][0]))
            outcomes = {r.request.stream: r for r in engine.run_round()}
            assert outcomes["cam-0"].kind == "scores"
            np.testing.assert_array_equal(outcomes["cam-0"].scores,
                                          reference["cam-0"][0])
            assert outcomes["cam-1"].kind == "event"
            np.testing.assert_array_equal(outcomes["cam-1"].event.scores,
                                          reference["cam-1"][0])
