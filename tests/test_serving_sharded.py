"""Tests for multi-process sharded fleet serving.

The load-bearing property throughout: a :class:`ShardedFleet` is
*observationally identical* to the single-process
:class:`DeploymentFleet` it was partitioned from — same event order,
bit-identical scores, same checkpoints — for any shard count.
"""

import numpy as np
import pytest

from repro.api import Deployment
from repro.data import FrameGenerator, TrendShiftConfig, TrendShiftStream
from repro.serving import (DeploymentFleet, FleetInfra, ShardedFleet,
                           partition_fleet_payload)

INFRA = FleetInfra(embedding_seed=7, generator_seed=5)


def make_stream(frame_generator, seed=11, windows_per_step=3,
                before=2, after=2, window=4):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=before, steps_after_shift=after,
        windows_per_step=windows_per_step, window=window, seed=seed))


def make_single_fleet(fresh_model, frame_generator, streams=5,
                      missions=("Stealing", "Robbery"), adaptive=False,
                      **stream_kwargs) -> DeploymentFleet:
    """A mixed-mission fleet; static streams share one model per mission."""
    fleet = DeploymentFleet()
    shared = {}
    for index in range(streams):
        mission = missions[index % len(missions)]
        if adaptive:
            deployment = Deployment(fresh_model(mission, window=4),
                                    mission=mission)
        else:
            if mission not in shared:
                model = fresh_model(mission, window=4)
                model.eval()
                shared[mission] = model
            deployment = Deployment(shared[mission], mission=mission,
                                    adaptive=False)
        fleet.add(f"{mission.lower()}-{index}", deployment,
                  make_stream(frame_generator, seed=30 + index,
                              **stream_kwargs))
    return fleet


def collect_rounds(fleet, max_rounds=None, batched=True):
    return [events for events in fleet.serve(max_rounds=max_rounds,
                                             batched=batched)]


def assert_rounds_identical(rounds_a, rounds_b):
    assert len(rounds_a) == len(rounds_b)
    for events_a, events_b in zip(rounds_a, rounds_b):
        assert [e.stream for e in events_a] == [e.stream for e in events_b]
        for a, b in zip(events_a, events_b):
            assert a.step == b.step
            assert a.mission == b.mission
            assert a.active_class == b.active_class
            np.testing.assert_array_equal(a.scores, b.scores)


class TestPartitionPayload:
    """Pure payload partitioning (no worker processes involved)."""

    def test_round_robin_by_stored_order(self, fresh_model, frame_generator):
        fleet = make_single_fleet(fresh_model, frame_generator, streams=5)
        parts = partition_fleet_payload(fleet.to_dict(), 2)
        assert [s["name"] for s in parts[0]["slots"]] == [
            "stealing-0", "stealing-2", "stealing-4"]
        assert [s["name"] for s in parts[1]["slots"]] == [
            "robbery-1", "robbery-3"]

    def test_models_deduplicated_within_shard(self, fresh_model,
                                              frame_generator):
        # 5 streams over 2 missions -> shard 0 holds three Stealing
        # streams sharing one model; shard 1 holds two Robbery streams.
        fleet = make_single_fleet(fresh_model, frame_generator, streams=5)
        parts = partition_fleet_payload(fleet.to_dict(), 2)
        assert len(parts[0]["models"]) == 1
        assert [s["model_index"] for s in parts[0]["slots"]] == [0, 0, 0]
        assert len(parts[1]["models"]) == 1

    def test_more_shards_than_streams_leaves_empty_shards(
            self, fresh_model, frame_generator):
        fleet = make_single_fleet(fresh_model, frame_generator, streams=2)
        parts = partition_fleet_payload(fleet.to_dict(), 4)
        assert [len(p["slots"]) for p in parts] == [1, 1, 0, 0]

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            partition_fleet_payload({"slots": [], "models": []}, 0)


class TestShardedParity:
    """Bit-parity of sharded vs single-process batched serving."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_mixed_mission_scores_bit_identical(self, fresh_model,
                                                frame_generator, shards):
        single = make_single_fleet(fresh_model, frame_generator, streams=5)
        with ShardedFleet.from_fleet(single, shards, infra=INFRA) as sharded:
            assert sharded.shards == shards
            sharded_rounds = collect_rounds(sharded)
            single_rounds = collect_rounds(single)
            assert_rounds_identical(single_rounds, sharded_rounds)
            assert sharded.rounds == single.rounds

    def test_adaptive_trajectories_bit_identical(self, fresh_model,
                                                 frame_generator):
        single = make_single_fleet(fresh_model, frame_generator, streams=3,
                                   missions=("Stealing",), adaptive=True,
                                   windows_per_step=4, before=3, after=3)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            sharded_rounds = collect_rounds(sharded)
            single_rounds = collect_rounds(single)
            assert_rounds_identical(single_rounds, sharded_rounds)
            for events_a, events_b in zip(single_rounds, sharded_rounds):
                assert ([e.log.updated for e in events_a]
                        == [e.log.updated for e in events_b])
                assert ([e.log.k for e in events_a]
                        == [e.log.k for e in events_b])


class TestLifecycle:
    def test_round_robin_attach_assignment(self, fresh_model,
                                           frame_generator):
        model = fresh_model(window=4)
        model.eval()
        with ShardedFleet(2, infra=INFRA) as fleet:
            for index in range(5):
                fleet.add(f"cam-{index}",
                          Deployment(model, mission="Stealing",
                                     adaptive=False),
                          make_stream(frame_generator, seed=60 + index))
            assert fleet.assignment == {"cam-0": 0, "cam-1": 1, "cam-2": 0,
                                        "cam-3": 1, "cam-4": 0}
            assert fleet.names == [f"cam-{i}" for i in range(5)]
            assert len(fleet) == 5 and "cam-3" in fleet

    def test_added_streams_share_models_within_shard(self, fresh_model,
                                                     frame_generator):
        """Streams attached via add() keep sharing their scoring model
        inside each worker: one coalesced forward per shard per round,
        and shard snapshots store the shared model once."""
        model = fresh_model(window=4)
        model.eval()
        with ShardedFleet(2, infra=INFRA) as fleet:
            for index in range(4):
                fleet.add(f"cam-{index}",
                          Deployment(model, mission="Stealing",
                                     adaptive=False),
                          make_stream(frame_generator, seed=70 + index))
            fleet.step()
            stats = fleet.batcher_stats()
            assert stats["batches_run"] == 2   # one forward per shard
            assert stats["windows_scored"] == 12
            payload = fleet.to_dict()
            assert len(payload["models"]) == 2  # one copy per shard

    def test_attach_detach_mid_run_across_shards(self, fresh_model,
                                                 frame_generator):
        single = make_single_fleet(fresh_model, frame_generator, streams=4,
                                   missions=("Stealing",), after=4)
        model = single.slots[0].deployment.model
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            single.step()
            sharded.step()

            # Attach mid-run on both; the late stream joins next round.
            for fleet in (single, sharded):
                fleet.add("late",
                          Deployment(model, mission="Stealing",
                                     adaptive=False),
                          make_stream(frame_generator, seed=99))
            a, b = single.step(), sharded.step()
            assert [e.stream for e in a] == [e.stream for e in b]
            assert "late" in {e.stream for e in b}
            assert_rounds_identical([a], [b])

            # Detach returns an equivalent deployment on both sides.
            removed_single = single.remove("late")
            removed_sharded = sharded.remove("late")
            assert isinstance(removed_sharded, Deployment)
            assert removed_sharded.mission == removed_single.mission
            probe = make_stream(frame_generator, seed=1).batch(0).windows
            np.testing.assert_array_equal(removed_sharded.scores(probe),
                                          removed_single.scores(probe))
            assert "late" not in sharded
            assert_rounds_identical([single.step()], [sharded.step()])

    def test_duplicate_name_rejected(self, fresh_model, frame_generator):
        model = fresh_model(window=4)
        model.eval()
        with ShardedFleet(2, infra=INFRA) as fleet:
            fleet.add("cam", Deployment(model, adaptive=False),
                      make_stream(frame_generator, seed=1))
            with pytest.raises(ValueError, match="already attached"):
                fleet.add("cam", Deployment(model, adaptive=False),
                          make_stream(frame_generator, seed=2))

    def test_remove_missing_raises(self, frame_generator):
        with ShardedFleet(1, infra=INFRA) as fleet:
            with pytest.raises(KeyError, match="ghost"):
                fleet.remove("ghost")

    def test_plain_iterable_stream_rejected(self, fresh_model, rng):
        model = fresh_model(window=4)
        model.eval()
        with ShardedFleet(1, infra=INFRA) as fleet:
            with pytest.raises(ValueError, match="process boundary"):
                fleet.add("raw", Deployment(model, adaptive=False),
                          [rng.normal(size=(2, 4, 192))])

    def test_worker_error_surfaces_without_desync(self, fresh_model,
                                                  frame_generator):
        model = fresh_model(window=4)
        model.eval()
        with ShardedFleet(2, infra=INFRA) as fleet:
            fleet.add("cam", Deployment(model, adaptive=False),
                      make_stream(frame_generator, seed=3))
            with pytest.raises(RuntimeError, match="score_round before"):
                fleet.score_round(0)
            # The pipe protocol stays in sync after a worker-side error.
            assert len(fleet.step()) == 1

    def test_close_is_idempotent_and_final(self, frame_generator):
        fleet = ShardedFleet(1, infra=INFRA)
        fleet.close()
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.step()

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedFleet(0, infra=INFRA)


class TestShardedCheckpoint:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_save_load_resume_identical_remaining_rounds(
            self, fresh_model, frame_generator, tmp_path, shards):
        single = make_single_fleet(fresh_model, frame_generator, streams=5,
                                   after=3)
        with ShardedFleet.from_fleet(single, shards, infra=INFRA) as sharded:
            single.step()
            sharded.step()
            path = tmp_path / "sharded.json"
            sharded.save(path)
            with ShardedFleet.load(path, infra=INFRA) as resumed:
                assert resumed.shards == shards
                assert resumed.names == sharded.names
                assert resumed.rounds == sharded.rounds
                assert_rounds_identical(collect_rounds(single),
                                        collect_rounds(resumed))

    def test_checkpoint_loadable_by_single_process_fleet(
            self, fresh_model, frame_generator, embedding_model, tmp_path):
        """The merged checkpoint is plain fleet format: DeploymentFleet
        opens it, and the resumed run matches."""
        single = make_single_fleet(fresh_model, frame_generator, streams=4)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            sharded.step()
            single.step()
            path = tmp_path / "sharded.json"
            sharded.save(path)
        restored = DeploymentFleet.load(path, embedding_model,
                                        frame_generator)
        assert restored.names == single.names
        assert_rounds_identical(collect_rounds(single),
                                collect_rounds(restored))

    def test_single_process_checkpoint_loadable_sharded(
            self, fresh_model, frame_generator, tmp_path):
        """And the reverse: a plain fleet checkpoint re-partitions across
        any shard count."""
        single = make_single_fleet(fresh_model, frame_generator, streams=4)
        single.step()
        path = tmp_path / "fleet.json"
        single.save(path)
        with ShardedFleet.load(path, shards=2, infra=INFRA) as sharded:
            assert sharded.shards == 2
            assert_rounds_identical(collect_rounds(single),
                                    collect_rounds(sharded))

    def test_adaptive_checkpoint_resume(self, fresh_model, frame_generator,
                                        tmp_path):
        single = make_single_fleet(fresh_model, frame_generator, streams=2,
                                   missions=("Stealing",), adaptive=True,
                                   windows_per_step=4, before=2, after=3)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            single.step()
            sharded.step()
            path = tmp_path / "adaptive.json"
            sharded.save(path)
            with ShardedFleet.load(path, infra=INFRA) as resumed:
                assert_rounds_identical(collect_rounds(single),
                                        collect_rounds(resumed))

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="format version"):
            ShardedFleet.from_dict({"fleet_format_version": 99})


class TestInfraFidelity:
    """Workers must rebuild the exact same frame-generation setup the
    parent's streams were built over — or fail fast, never silently
    diverge."""

    def test_mismatched_generator_rejected_at_add(self, fresh_model,
                                                  embedding_model,
                                                  frame_generator):
        model = fresh_model(window=4)
        model.eval()
        noisy = FrameGenerator(embedding_model, seed=5, sensor_noise=0.9)
        with ShardedFleet(1, infra=INFRA) as fleet:  # default-params infra
            with pytest.raises(ValueError, match="hyperparameters"):
                fleet.add("cam", Deployment(model, adaptive=False),
                          make_stream(noisy, seed=1))

    def test_non_default_generator_parity(self, fresh_model,
                                          embedding_model):
        """from_fleet derives the generator hyperparameters, so a fleet
        over a non-default generator still shards bit-identically."""
        generator = FrameGenerator(embedding_model, seed=5,
                                   sensor_noise=0.2, concepts_per_frame=2)
        single = make_single_fleet(fresh_model, generator, streams=3,
                                   missions=("Stealing",))
        with ShardedFleet.from_fleet(single, 2) as sharded:
            assert sharded.infra.generator_params["sensor_noise"] == 0.2
            assert_rounds_identical(collect_rounds(single),
                                    collect_rounds(sharded))

    def test_worker_startup_failure_reports_cause(self, fresh_model,
                                                  frame_generator,
                                                  tmp_path):
        single = make_single_fleet(fresh_model, frame_generator, streams=2)
        with ShardedFleet.from_fleet(single, 1, infra=INFRA) as sharded:
            path = tmp_path / "fleet.json"
            sharded.save(path)
        # Wrong embedding seed: the worker dies on the deployment's
        # stored embedding fingerprint, and the parent must surface that
        # instead of a bare EOFError.
        bad = ShardedFleet.load(path, infra=FleetInfra(embedding_seed=1))
        try:
            with pytest.raises(RuntimeError, match="startup failed.*embedding"):
                bad.step()
        finally:
            bad.close()

    def test_checkpoint_is_self_describing(self, fresh_model,
                                           embedding_model, tmp_path):
        """save() stores the FleetInfra, so load() needs no arguments
        even for non-default generator hyperparameters."""
        generator = FrameGenerator(embedding_model, seed=5, sensor_noise=0.2)
        single = make_single_fleet(fresh_model, generator, streams=2,
                                   missions=("Stealing",))
        with ShardedFleet.from_fleet(single, 2) as sharded:
            sharded.step()
            single.step()
            path = tmp_path / "fleet.json"
            sharded.save(path)
            saved_infra = sharded.infra
        with ShardedFleet.load(path) as resumed:
            assert resumed.infra == saved_infra
            assert_rounds_identical(collect_rounds(single),
                                    collect_rounds(resumed))


class TestGatewayEntryPoints:
    """ingest_round/score_only — what the network gateway calls."""

    def test_ingest_round_parity_with_single_process(self, fresh_model,
                                                     frame_generator):
        single = make_single_fleet(fresh_model, frame_generator, streams=4)
        arrivals = {slot.name: np.asarray(slot.stream.batch(0).windows,
                                          dtype=np.float64)
                    for slot in single.slots}
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            expected = single.ingest_round(arrivals)
            got = sharded.ingest_round(arrivals)
            assert set(got) == set(expected)
            for name, event in expected.items():
                assert got[name].step == event.step
                np.testing.assert_array_equal(got[name].scores, event.scores)
            assert sharded.rounds == 1

    def test_score_only_and_unknown_stream(self, fresh_model,
                                           frame_generator):
        single = make_single_fleet(fresh_model, frame_generator, streams=3)
        slot = single.slots[0]
        windows = np.asarray(slot.stream.batch(0).windows, dtype=np.float64)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            scored = sharded.score_only({slot.name: windows})
            np.testing.assert_array_equal(
                scored[slot.name], single.score_only({slot.name: windows})[slot.name])
            with pytest.raises(KeyError, match="ghost"):
                sharded.ingest_round({"ghost": windows})
            assert sharded.rounds == 0  # no successful round ran


class TestBenchHooks:
    def test_prime_and_score_round_match_step_scores(self, fresh_model,
                                                     frame_generator):
        single = make_single_fleet(fresh_model, frame_generator, streams=4)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA) as sharded:
            windows_per_round = sharded.prime(2)
            assert windows_per_round == 4 * 3
            for index in range(2):
                scored = sharded.score_round(index)
                events = single.step()
                assert set(scored) == {e.stream for e in events}
                for event in events:
                    np.testing.assert_array_equal(scored[event.stream],
                                                  event.scores)
