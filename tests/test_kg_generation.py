"""Tests for the Fig. 3 KG generation framework (expansion + error correction)."""

import pytest

from repro.concepts import ANOMALY_CLASSES
from repro.kg import (
    DuplicatedConcept,
    InvalidEdge,
    KGGenerationConfig,
    KGGenerator,
    ReasoningKG,
)
from repro.llm import EdgeProposal, SyntheticLLM


class TestErrorDetection:
    def test_detects_duplicate_against_existing(self):
        errors = KGGenerator.detect_errors(
            existing={"sneaky": 1}, proposals=["sneaky", "new concept"],
            edges=[], level=1)
        dups = [e for e in errors if isinstance(e, DuplicatedConcept)]
        assert len(dups) == 1
        assert dups[0].concept == "sneaky"
        assert dups[0].existing_level == 1

    def test_detects_duplicate_within_proposals(self):
        errors = KGGenerator.detect_errors(
            existing={}, proposals=["a", "a"], edges=[], level=1)
        assert any(isinstance(e, DuplicatedConcept) for e in errors)

    def test_detects_invalid_edge_from_older_level(self):
        errors = KGGenerator.detect_errors(
            existing={"old": 1, "current": 2}, proposals=["new"],
            edges=[EdgeProposal("old", "new")], level=2)
        invalid = [e for e in errors if isinstance(e, InvalidEdge)]
        assert len(invalid) == 1
        assert invalid[0].source == "old"
        assert invalid[0].source_level == 1

    def test_valid_expansion_no_errors(self):
        errors = KGGenerator.detect_errors(
            existing={"current": 1}, proposals=["new"],
            edges=[EdgeProposal("current", "new")], level=1)
        assert errors == []

    def test_edge_to_unknown_target_invalid(self):
        errors = KGGenerator.detect_errors(
            existing={"current": 1}, proposals=["new"],
            edges=[EdgeProposal("current", "phantom")], level=1)
        assert any(isinstance(e, InvalidEdge) for e in errors)


class TestGeneration:
    @pytest.mark.parametrize("mission", ["Stealing", "Robbery", "Explosion"])
    def test_generates_valid_kg(self, ontology, mission):
        oracle = SyntheticLLM(ontology, seed=3)
        kg, report = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate(mission)
        assert isinstance(kg, ReasoningKG)
        kg.validate()
        assert kg.mission == mission
        assert kg.sensor_id is not None
        assert kg.embedding_id is not None
        for level in range(1, 4):
            assert kg.nodes_at_level(level), f"level {level} empty"

    def test_concepts_belong_to_mission(self, ontology):
        oracle = SyntheticLLM(ontology, seed=3, error_rate=0.0)
        kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Explosion")
        mission_concepts = {c.text for c in ontology.concepts_for_class("Explosion")}
        related = set()
        for c in ontology.concepts_for_class("Explosion"):
            related.update(ontology.related(c.text))
        for node in kg.concept_nodes():
            assert node.text in mission_concepts | related

    def test_every_concept_node_reachable(self, ontology):
        """No orphans: every concept node has at least one incoming edge."""
        oracle = SyntheticLLM(ontology, seed=9, error_rate=0.3)
        kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Robbery")
        for node in kg.concept_nodes():
            assert kg.in_degree(node.node_id) >= 1

    def test_high_error_rate_still_produces_valid_kg(self, ontology):
        oracle = SyntheticLLM(ontology, seed=1, error_rate=0.9,
                              correction_error_rate=0.5)
        kg, report = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Assault")
        kg.validate()
        assert report.errors_detected  # errors were actually exercised

    def test_zero_error_rate_clean_run(self, ontology):
        oracle = SyntheticLLM(ontology, seed=3, error_rate=0.0)
        kg, report = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Arson")
        assert not report.errors_detected
        assert report.corrections_applied == 0

    def test_report_counts_llm_calls(self, ontology):
        oracle = SyntheticLLM(ontology, seed=3)
        _, report = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Stealing")
        # At minimum: 1 initial + (depth-1) x (nodes + edges).
        assert report.llm_calls >= 1 + 2 * 2

    def test_depth_config_respected(self, ontology):
        oracle = SyntheticLLM(ontology, seed=3)
        kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=2)).generate("Stealing")
        assert kg.depth == 2
        # Level 3 holds only the embedding terminal; no concept nodes.
        assert all(not n.is_concept for n in kg.nodes_at_level(3))
        assert kg.node(kg.embedding_id).level == 3

    def test_determinism(self, ontology):
        def run():
            oracle = SyntheticLLM(ontology, seed=42)
            kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Fighting")
            return sorted(n.text for n in kg.concept_nodes()), kg.edges()
        assert run() == run()

    def test_all_thirteen_classes_generate(self, ontology):
        for mission in ANOMALY_CLASSES:
            oracle = SyntheticLLM(ontology, seed=5)
            kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=2)).generate(mission)
            kg.validate()
