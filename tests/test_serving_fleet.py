"""Tests for the deployment fleet: lifecycle, parity, checkpointing."""

import numpy as np
import pytest

from repro.api import Deployment
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.serving import DeploymentFleet


def make_stream(frame_generator, seed=11, windows_per_step=3,
                before=2, after=2, window=4):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=before, steps_after_shift=after,
        windows_per_step=windows_per_step, window=window, seed=seed))


@pytest.fixture()
def static_deployment(fresh_model):
    def make(model=None, mission="Stealing"):
        model = model or fresh_model(mission, window=4)
        model.eval()
        return Deployment(model, mission=mission, adaptive=False)
    return make


class TestLifecycle:
    def test_add_and_step(self, static_deployment, frame_generator):
        fleet = DeploymentFleet()
        fleet.add("cam-0", static_deployment(), make_stream(frame_generator, 1))
        fleet.add("cam-1", static_deployment(), make_stream(frame_generator, 2))
        events = fleet.step()
        assert len(events) == 2
        assert {e.stream for e in events} == {"cam-0", "cam-1"}
        assert all(e.scores.shape == (3,) for e in events)
        assert all(e.active_class == "Stealing" for e in events)

    def test_duplicate_name_rejected(self, static_deployment, frame_generator):
        fleet = DeploymentFleet()
        fleet.add("cam", static_deployment(), make_stream(frame_generator, 1))
        with pytest.raises(ValueError, match="already attached"):
            fleet.add("cam", static_deployment(), make_stream(frame_generator, 2))

    def test_remove_mid_run(self, static_deployment, frame_generator):
        fleet = DeploymentFleet()
        fleet.add("a", static_deployment(), make_stream(frame_generator, 1))
        fleet.add("b", static_deployment(), make_stream(frame_generator, 2))
        fleet.step()
        removed = fleet.remove("b")
        assert isinstance(removed, Deployment)
        assert "b" not in fleet and len(fleet) == 1
        events = fleet.step()
        assert [e.stream for e in events] == ["a"]

    def test_remove_missing_raises(self, static_deployment, frame_generator):
        with pytest.raises(KeyError):
            DeploymentFleet().remove("ghost")

    def test_add_mid_run_joins_next_round(self, static_deployment,
                                          frame_generator):
        fleet = DeploymentFleet()
        fleet.add("a", static_deployment(), make_stream(frame_generator, 1))
        fleet.step()
        fleet.add("late", static_deployment(), make_stream(frame_generator, 9))
        events = fleet.step()
        assert {e.stream for e in events} == {"a", "late"}
        # The late stream starts from its own step 0.
        late = next(e for e in events if e.stream == "late")
        assert late.active_class == "Stealing"

    def test_exhaustion_ends_serving(self, static_deployment, frame_generator):
        fleet = DeploymentFleet()
        fleet.add("a", static_deployment(),
                  make_stream(frame_generator, 1, before=1, after=1))
        rounds = list(fleet.serve())
        assert len(rounds) == 2  # 1 pre-shift + 1 post-shift step
        assert fleet.active_count == 0
        assert fleet.step() == []

    def test_serve_max_rounds(self, static_deployment, frame_generator):
        fleet = DeploymentFleet()
        fleet.add("a", static_deployment(), make_stream(frame_generator, 1))
        rounds = list(fleet.serve(max_rounds=1))
        assert len(rounds) == 1


class TestBatchedSequentialParity:
    def test_scores_identical_within_zero(self, fresh_model, frame_generator):
        """The acceptance property: batched fleet scoring equals the
        sequential per-deployment loop exactly (max abs diff 0.0)."""
        model = fresh_model(window=4)
        model.eval()
        batched_fleet = DeploymentFleet()
        sequential_fleet = DeploymentFleet()
        for index in range(4):
            for fleet in (batched_fleet, sequential_fleet):
                fleet.add(f"cam-{index}",
                          Deployment(model, mission="Stealing", adaptive=False),
                          make_stream(frame_generator, seed=40 + index))
        for _ in range(3):
            batched = batched_fleet.step(batched=True)
            sequential = sequential_fleet.step(batched=False)
            for b, s in zip(batched, sequential):
                assert b.stream == s.stream
                assert float(np.abs(b.scores - s.scores).max()) == 0.0

    def test_shared_model_coalesces(self, fresh_model, frame_generator):
        model = fresh_model(window=4)
        model.eval()
        fleet = DeploymentFleet()
        for index in range(3):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=50 + index))
        fleet.step()
        assert fleet.batcher.batches_run == 1  # one forward for all streams
        assert fleet.batcher.windows_scored == 9

    def test_adaptive_ingest_precomputed_scores_equivalent(
            self, fresh_model, frame_generator):
        """An adaptive deployment fed micro-batched scores must follow the
        exact trajectory of one that scores its own windows."""
        stream = make_stream(frame_generator, seed=60)
        batched = Deployment(fresh_model(window=4), mission="Stealing")
        solo = Deployment(fresh_model(window=4), mission="Stealing")

        fleet = DeploymentFleet()
        fleet.add("cam", batched, make_stream(frame_generator, seed=60))
        for batch in stream:
            fleet.step(batched=True)
            log = solo.ingest(batch.windows)
            fleet_log = batched.controller.logs[-1]
            np.testing.assert_array_equal(fleet_log.scores, log.scores)
            assert fleet_log.k == log.k
            assert fleet_log.updated == log.updated


class TestFleetCheckpoint:
    def test_roundtrip_continues_identically(self, fresh_model,
                                             frame_generator,
                                             embedding_model, tmp_path):
        model = fresh_model(window=4)
        model.eval()
        fleet = DeploymentFleet()
        for index in range(3):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=70 + index))
        fleet.step()
        path = tmp_path / "fleet.json"
        fleet.save(path)

        restored = DeploymentFleet.load(path, embedding_model, frame_generator)
        assert restored.names == fleet.names
        assert restored.rounds == fleet.rounds
        original_next = fleet.step()
        restored_next = restored.step()
        for a, b in zip(original_next, restored_next):
            assert a.stream == b.stream
            assert a.step == b.step
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_shared_models_stored_once(self, fresh_model, frame_generator):
        model = fresh_model(window=4)
        model.eval()
        fleet = DeploymentFleet()
        for index in range(3):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=80 + index))
        payload = fleet.to_dict()
        assert len(payload["models"]) == 1
        assert [s["model_index"] for s in payload["slots"]] == [0, 0, 0]

    def test_restored_shared_models_are_shared(self, fresh_model,
                                               frame_generator,
                                               embedding_model, tmp_path):
        model = fresh_model(window=4)
        model.eval()
        fleet = DeploymentFleet()
        for index in range(2):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=90 + index))
        path = tmp_path / "fleet.json"
        fleet.save(path)
        restored = DeploymentFleet.load(path, embedding_model, frame_generator)
        models = {id(slot.deployment.model) for slot in restored.slots}
        assert len(models) == 1

    def test_adaptive_fleet_roundtrip(self, fresh_model, frame_generator,
                                      embedding_model, tmp_path):
        fleet = DeploymentFleet()
        fleet.add("cam", Deployment(fresh_model(window=4), mission="Stealing"),
                  make_stream(frame_generator, seed=95))
        fleet.step()
        path = tmp_path / "fleet.json"
        fleet.save(path)
        restored = DeploymentFleet.load(path, embedding_model, frame_generator)
        slot = restored.slots[0]
        assert slot.deployment.adaptive
        assert slot.deployment.step_count == 1
        original = fleet.step()
        resumed = restored.step()
        np.testing.assert_array_equal(original[0].scores, resumed[0].scores)

    def test_plain_iterable_stream_not_checkpointable(self, static_deployment,
                                                      frame_generator, rng):
        fleet = DeploymentFleet()
        fleet.add("raw", static_deployment(),
                  [rng.normal(size=(2, 4, 192)) for _ in range(2)])
        assert fleet.step()  # serving plain iterables works...
        with pytest.raises(ValueError, match="checkpoint"):
            fleet.to_dict()   # ...but saving them mid-run does not

    def test_bad_version_rejected(self, embedding_model, frame_generator):
        with pytest.raises(ValueError, match="format version"):
            DeploymentFleet.from_dict({"fleet_format_version": 99},
                                      embedding_model, frame_generator)


class TestSharedModelGuard:
    def test_shared_model_with_adaptive_sharer_rejected(self, fresh_model,
                                                        frame_generator):
        model = fresh_model(window=4)
        fleet = DeploymentFleet()
        fleet.add("adaptive", Deployment(model, mission="Stealing"),
                  make_stream(frame_generator, seed=1))
        with pytest.raises(ValueError, match="private model"):
            fleet.add("static", Deployment(model, mission="Stealing",
                                           adaptive=False),
                      make_stream(frame_generator, seed=2))

    def test_static_then_adaptive_sharer_rejected(self, fresh_model,
                                                  frame_generator):
        model = fresh_model(window=4)
        model.eval()
        fleet = DeploymentFleet()
        fleet.add("static", Deployment(model, mission="Stealing",
                                       adaptive=False),
                  make_stream(frame_generator, seed=1))
        with pytest.raises(ValueError, match="private model"):
            fleet.add("adaptive", Deployment(model, mission="Stealing"),
                      make_stream(frame_generator, seed=2))
