"""Tests for Module plumbing and the standard layers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Dense,
    Dropout,
    ELU,
    Embedding,
    LayerNorm,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tensor,
)


def make_rng():
    return np.random.default_rng(0)


class TestModulePlumbing:
    def test_named_parameters_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(2))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.layers = [Inner(), Inner()]

        outer = Outer()
        names = dict(outer.named_parameters())
        assert "inner.w" in names
        assert "layers.0.w" in names
        assert "layers.1.w" in names
        assert len(list(outer.parameters())) == 3

    def test_freeze_unfreeze(self):
        layer = Dense(3, 2, make_rng())
        assert not layer.frozen
        layer.freeze()
        assert layer.frozen
        assert all(not p.requires_grad for p in layer.parameters())
        layer.unfreeze()
        assert not layer.frozen

    def test_train_eval_propagates(self):
        seq = Sequential(Dense(3, 3, make_rng()), BatchNorm(3))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self):
        a = Dense(4, 3, make_rng())
        b = Dense(4, 3, np.random.default_rng(99))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        a = Dense(4, 3, make_rng())
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        a = Dense(4, 3, make_rng())
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_num_parameters(self):
        layer = Dense(4, 3, make_rng())
        assert layer.num_parameters() == 4 * 3 + 3

    def test_zero_grad(self):
        layer = Dense(2, 2, make_rng())
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestDense:
    def test_forward_matches_manual(self):
        layer = Dense(3, 2, make_rng())
        x = np.array([[1.0, 2.0, 3.0]])
        out = layer(Tensor(x)).numpy()
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out, expected)

    def test_no_bias(self):
        layer = Dense(3, 2, make_rng(), bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_gradients_flow_to_params(self):
        layer = Dense(3, 2, make_rng())
        loss = layer(Tensor(np.ones((4, 3)))).sum()
        loss.backward()
        assert layer.weight.grad.shape == (3, 2)
        np.testing.assert_allclose(layer.bias.grad, 4 * np.ones(2))


class TestBatchNorm:
    def test_train_normalizes_batch(self):
        bn = BatchNorm(3)
        x = np.random.default_rng(1).normal(5.0, 3.0, size=(64, 3))
        out = bn(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), np.ones(3), atol=1e-3)

    def test_running_stats_update(self):
        bn = BatchNorm(2, momentum=0.5)
        x = np.full((8, 2), 4.0)
        bn(Tensor(x))
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm(2)
        rng = np.random.default_rng(2)
        for _ in range(50):
            bn(Tensor(rng.normal(1.0, 2.0, size=(32, 2))))
        bn.eval()
        x = np.array([[1.0, 1.0]])
        out = bn(Tensor(x)).numpy()
        # Input at the running mean should normalize to ~0.
        np.testing.assert_allclose(out, np.zeros((1, 2)), atol=0.2)

    def test_eval_is_deterministic(self):
        bn = BatchNorm(2)
        bn(Tensor(np.random.default_rng(0).normal(size=(16, 2))))
        bn.eval()
        x = Tensor(np.ones((4, 2)))
        np.testing.assert_allclose(bn(x).numpy(), bn(x).numpy())

    def test_3d_input(self):
        bn = BatchNorm(5)
        out = bn(Tensor(np.random.default_rng(3).normal(size=(2, 7, 5))))
        assert out.shape == (2, 7, 5)

    def test_wrong_feature_dim_raises(self):
        bn = BatchNorm(3)
        with pytest.raises(ValueError):
            bn(Tensor(np.ones((4, 5))))

    def test_gradient_flows(self):
        bn = BatchNorm(3)
        x = Tensor(np.random.default_rng(4).normal(size=(8, 3)),
                   requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = LayerNorm(6)
        x = np.random.default_rng(5).normal(3.0, 2.0, size=(4, 6))
        out = ln(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-9)

    def test_gamma_beta_apply(self):
        ln = LayerNorm(3)
        ln.gamma.data = np.array([2.0, 2.0, 2.0])
        ln.beta.data = np.array([1.0, 1.0, 1.0])
        x = np.array([[1.0, 2.0, 3.0]])
        out = ln(Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(), 1.0, atol=1e-9)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, make_rng())
        out = emb(np.array([1, 5, 5]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.numpy()[1], out.numpy()[2])

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, make_rng())
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_gradient_scatters(self):
        emb = Embedding(5, 3, make_rng())
        out = emb(np.array([2, 2, 4]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 2 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[4], np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, make_rng())
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_train_zeroes_and_scales(self):
        drop = Dropout(0.5, make_rng())
        x = Tensor(np.ones((100, 100)))
        out = drop(x).numpy()
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        # Surviving entries are scaled by 1/(1-p).
        assert np.allclose(out[out != 0], 2.0)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0, make_rng())


class TestActivationsAndSequential:
    def test_elu_module(self):
        out = ELU()(Tensor(np.array([-1.0, 1.0]))).numpy()
        np.testing.assert_allclose(out, [np.expm1(-1.0), 1.0])

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 1.0]))).numpy()
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_sequential_chains(self):
        rng = make_rng()
        seq = Sequential(Dense(3, 4, rng), ReLU(), Dense(4, 2, rng))
        out = seq(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
