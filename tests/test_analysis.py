"""Per-rule fixtures for ``repro.analysis``: every rule must fire on a
seeded violation and stay quiet on the fixed form."""

import textwrap

import pytest

from repro.analysis import Analyzer, SourceFile
from repro.analysis.core import PARSE_ERROR_ID
from repro.analysis.rules import RULES
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.lock_guard import LockGuardRule
from repro.analysis.rules.typed_raise import TypedRaiseRule
from repro.analysis.rules.wire_consts import WireConstsRule


def _run(rule, text, module, filename="fixture.py"):
    source = SourceFile(filename, textwrap.dedent(text), module=module)
    findings = list(rule.check(source))
    findings.extend(rule.finalize())
    return [f for f in findings if not source.is_suppressed(f)]


# ---------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------
def test_registry_ids_match_classes():
    assert set(RULES) == {"layer-dag", "lock-guard", "async-blocking",
                          "typed-raise", "wire-consts"}
    for rule_id, rule_cls in RULES.items():
        assert rule_cls.id == rule_id
        assert rule_cls.summary


# ---------------------------------------------------------------------
# lock-guard
# ---------------------------------------------------------------------
GUARDED_CLASS = """
    class Engine:
        def __init__(self):
            self._queues = {}  # repro: guarded-by[_lock]
            self._lock = object()

        def depth(self):
            {body}
"""


def _lock_fixture(body):
    return GUARDED_CLASS.replace("{body}", body)


class TestLockGuard:
    def test_unlocked_read_flags(self):
        findings = _run(LockGuardRule(),
                        _lock_fixture("return len(self._queues)"),
                        module="repro.runtime.engine")
        assert len(findings) == 1
        assert "_queues" in findings[0].message

    def test_locked_read_passes(self):
        body = ("with self._lock:\n"
                "                return len(self._queues)")
        assert _run(LockGuardRule(), _lock_fixture(body),
                    module="repro.runtime.engine") == []

    def test_wrong_lock_flags(self):
        body = ("with self._other:\n"
                "                return len(self._queues)")
        assert _run(LockGuardRule(), _lock_fixture(body),
                    module="repro.runtime.engine")

    def test_lock_held_annotation_exempts(self):
        text = """
            class Engine:
                def __init__(self):
                    self._queues = {}  # repro: guarded-by[_lock]
                    self._lock = object()

                def depth(self):  # repro: lock-held
                    return len(self._queues)
        """
        assert _run(LockGuardRule(), text,
                    module="repro.runtime.engine") == []

    def test_closure_does_not_inherit_lock(self):
        text = """
            class Engine:
                def __init__(self):
                    self._queues = {}  # repro: guarded-by[_lock]
                    self._lock = object()

                def deferred(self):
                    with self._lock:
                        def thunk():
                            return len(self._queues)
                    return thunk
        """
        assert _run(LockGuardRule(), text, module="repro.runtime.engine")

    def test_unlocked_write_flags(self):
        findings = _run(LockGuardRule(),
                        _lock_fixture("self._queues = {}"),
                        module="repro.runtime.engine")
        assert findings and "write" in findings[0].message

    def test_unregistered_attribute_passes(self):
        assert _run(LockGuardRule(),
                    _lock_fixture("return self._rounds"),
                    module="repro.runtime.engine") == []


# ---------------------------------------------------------------------
# async-blocking
# ---------------------------------------------------------------------
class TestAsyncBlocking:
    def test_blocking_call_in_async_def_flags(self):
        text = """
            import time
            async def handler():
                time.sleep(1.0)
        """
        findings = _run(AsyncBlockingRule(), text,
                        module="repro.gateway.server")
        assert findings and "time.sleep" in findings[0].message

    def test_durability_close_flags(self):
        text = """
            class Server:
                async def drain(self):
                    self.durability.close(self.engine)
        """
        assert _run(AsyncBlockingRule(), text,
                    module="repro.gateway.server")

    def test_round_call_flags(self):
        text = """
            class Server:
                async def loop(self):
                    return self.engine.run_round()
        """
        assert _run(AsyncBlockingRule(), text,
                    module="repro.gateway.server")

    def test_run_in_executor_reference_passes(self):
        text = """
            import asyncio
            class Server:
                async def drain(self):
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        None, self.durability.close, self.engine)
        """
        assert _run(AsyncBlockingRule(), text,
                    module="repro.gateway.server") == []

    def test_sync_def_passes(self):
        text = """
            import time
            def handler():
                time.sleep(1.0)
        """
        assert _run(AsyncBlockingRule(), text,
                    module="repro.gateway.server") == []

    def test_outside_gateway_passes(self):
        text = """
            import time
            async def handler():
                time.sleep(1.0)
        """
        assert _run(AsyncBlockingRule(), text,
                    module="repro.serving.bench") == []

    def test_nested_sync_def_escapes(self):
        text = """
            import os
            async def handler():
                def thunk():
                    os.fsync(3)
                return thunk
        """
        assert _run(AsyncBlockingRule(), text,
                    module="repro.gateway.server") == []


# ---------------------------------------------------------------------
# typed-raise
# ---------------------------------------------------------------------
class TestTypedRaise:
    @pytest.mark.parametrize("builtin", ["RuntimeError", "ValueError"])
    def test_bare_builtin_flags(self, builtin):
        text = f"""
            def check(n):
                if n < 0:
                    raise {builtin}("bad")
        """
        findings = _run(TypedRaiseRule(), text, module="repro.wal.log")
        assert findings and builtin in findings[0].message

    def test_bare_reference_raise_flags(self):
        assert _run(TypedRaiseRule(), "raise ValueError\n",
                    module="repro.serving.fleet")

    def test_typed_raise_passes(self):
        text = """
            from repro.errors import ConfigError
            def check(n):
                if n < 0:
                    raise ConfigError("bad")
        """
        assert _run(TypedRaiseRule(), text, module="repro.wal.log") == []

    def test_reraise_and_bound_name_pass(self):
        text = """
            def check(exc):
                try:
                    raise exc
                except ValueError:
                    raise
        """
        assert _run(TypedRaiseRule(), text, module="repro.wal.log") == []

    def test_outside_scope_passes(self):
        assert _run(TypedRaiseRule(), "raise ValueError('x')\n",
                    module="repro.eval.metrics") == []


# ---------------------------------------------------------------------
# wire-consts
# ---------------------------------------------------------------------
GOOD_BINFRAME = """
    import struct
    BIN_MAGIC = b"\\xb7\\xf3"
    BIN_HEADER = struct.Struct("<2sBBHHII")
"""

GOOD_PROTOCOL = """
    import struct
    PROTOCOL_VERSION = 2
    SUPPORTED_VERSIONS = (1, 2)
    MAX_FRAME_BYTES = 32 * 1024 * 1024
    _HEADER = struct.Struct(">I")
    OPS = ("ingest", "scores", "attach", "detach", "stats", "shutdown")
    FLAG_RESPONSE = 0x0001

    def encode_frame(payload, codec="json", max_bytes=MAX_FRAME_BYTES):
        pass

    def read_frame(reader, max_bytes=MAX_FRAME_BYTES):
        _check_length(0, max_bytes)
        _check_binary_lengths(None, max_bytes)

    def write_frame(writer, payload, codec="json",
                    max_bytes=MAX_FRAME_BYTES):
        pass

    def recv_frame(sock, max_bytes=MAX_FRAME_BYTES):
        _check_length(0, max_bytes)
        _check_binary_lengths(None, max_bytes)

    def send_frame(sock, payload, codec="json", max_bytes=MAX_FRAME_BYTES):
        pass

    def _check_length(length, max_bytes):
        pass

    def _check_binary_lengths(header, max_bytes):
        pass
"""


def _wire(binframe_text=GOOD_BINFRAME, protocol_text=GOOD_PROTOCOL):
    rule = WireConstsRule()
    findings = []
    for text, module in ((binframe_text, "repro.utils.binframe"),
                         (protocol_text, "repro.gateway.protocol")):
        if text is None:
            continue
        source = SourceFile("fixture.py", textwrap.dedent(text),
                            module=module)
        findings.extend(rule.check(source))
    findings.extend(rule.finalize())
    return findings


class TestWireConsts:
    def test_consistent_modules_pass(self):
        assert _wire() == []

    def test_wrong_header_size_flags(self):
        bad = GOOD_BINFRAME.replace("<2sBBHHII", "<2sBBHHI")
        assert any("16" in f.message for f in _wire(binframe_text=bad))

    def test_big_endian_binary_header_flags(self):
        bad = GOOD_BINFRAME.replace("<2sBBHHII", ">2sBBHHII")
        assert any("little-endian" in f.message
                   for f in _wire(binframe_text=bad))

    def test_magic_length_flags(self):
        bad = GOOD_BINFRAME.replace('b"\\xb7\\xf3"', 'b"\\xb7"')
        assert _wire(binframe_text=bad)

    def test_json_prefix_format_flags(self):
        bad = GOOD_PROTOCOL.replace('">I"', '"<I"')
        assert any("_HEADER" in f.message for f in _wire(protocol_text=bad))

    def test_oversized_cap_flags(self):
        bad = GOOD_PROTOCOL.replace("32 * 1024 * 1024",
                                    "8 * 1024 * 1024 * 1024")
        assert any("u32" in f.message for f in _wire(protocol_text=bad))

    def test_magic_disambiguation_flags(self):
        # A magic whose first byte a JSON length prefix could produce.
        bad = GOOD_BINFRAME.replace('b"\\xb7\\xf3"', 'b"\\x01\\xf3"')
        assert any("disambiguation" in f.message
                   for f in _wire(binframe_text=bad))

    def test_missing_max_bytes_default_flags(self):
        bad = GOOD_PROTOCOL.replace(
            "def send_frame(sock, payload, codec=\"json\", "
            "max_bytes=MAX_FRAME_BYTES):",
            "def send_frame(sock, payload, codec=\"json\"):")
        assert any("send_frame" in f.message for f in _wire(protocol_text=bad))

    def test_reader_without_guard_flags(self):
        bad = GOOD_PROTOCOL.replace(
            "def recv_frame(sock, max_bytes=MAX_FRAME_BYTES):\n"
            "        _check_length(0, max_bytes)\n"
            "        _check_binary_lengths(None, max_bytes)",
            "def recv_frame(sock, max_bytes=MAX_FRAME_BYTES):\n"
            "        pass")
        assert any("recv_frame" in f.message and "_check_length" in f.message
                   for f in _wire(protocol_text=bad))

    def test_version_not_supported_flags(self):
        bad = GOOD_PROTOCOL.replace("PROTOCOL_VERSION = 2",
                                    "PROTOCOL_VERSION = 3")
        assert any("SUPPORTED_VERSIONS" in f.message
                   for f in _wire(protocol_text=bad))

    def test_single_module_skips_cross_checks(self):
        # Linting one side alone must not report the other as missing.
        assert _wire(protocol_text=None) == []


# ---------------------------------------------------------------------
# analyzer plumbing
# ---------------------------------------------------------------------
class TestAnalyzer:
    def test_parse_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = Analyzer().run([tmp_path])
        assert [f.rule for f in findings] == [PARSE_ERROR_ID]

    def test_suppression_covers_own_and_next_line(self):
        text = textwrap.dedent("""
            # repro: allow[typed-raise] fixture
            raise ValueError("above")
            raise ValueError("inline")  # repro: allow[typed-raise]
            raise ValueError("naked")
        """)
        source = SourceFile("fixture.py", text, module="repro.wal.x")
        rule = TypedRaiseRule()
        kept = [f for f in rule.check(source)
                if not source.is_suppressed(f)]
        assert len(kept) == 1
        assert "naked" in source.text.splitlines()[kept[0].line - 1]

    def test_marker_inside_string_is_not_a_suppression(self):
        text = ('note = "# repro: allow[typed-raise]"\n'
                'raise ValueError("real")\n')
        source = SourceFile("fixture.py", text, module="repro.wal.x")
        rule = TypedRaiseRule()
        kept = [f for f in rule.check(source)
                if not source.is_suppressed(f)]
        assert len(kept) == 1

    def test_rule_filter(self, tmp_path):
        mod = tmp_path / "fixture.py"
        mod.write_text("x = 1\n")
        findings = Analyzer([RULES["wire-consts"]]).run([mod])
        assert findings == []

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            Analyzer().run(["no/such/dir"])

    def test_findings_are_sorted_and_deduplicated_paths(self, tmp_path):
        a = tmp_path / "a.py"
        a.write_text("raise ValueError('x')\n")
        findings = Analyzer().run([tmp_path, a])
        assert findings == sorted(findings)
