"""Tests for loss functions, including the paper's VAD regularizers."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    binary_cross_entropy,
    cross_entropy,
    mse_loss,
    smoothness_loss,
    sparsity_loss,
    vad_loss,
)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 0.0], [0.0, 3.0]])
        targets = np.array([0, 1])
        loss = cross_entropy(Tensor(logits), targets).item()
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.mean([np.log(probs[0, 0]), np.log(probs[1, 1])])
        assert loss == pytest.approx(expected, abs=1e-9)

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0]])
        assert cross_entropy(Tensor(logits), np.array([0])).item() < 1e-6

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        # Gradient is negative for the target class, positive elsewhere.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))


class TestBinaryCrossEntropy:
    def test_known_value(self):
        probs = Tensor(np.array([0.9, 0.1]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0])).item()
        assert loss == pytest.approx(-np.log(0.9), rel=1e-6)

    def test_clipping_avoids_infinity(self):
        probs = Tensor(np.array([0.0, 1.0]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0])).item()
        assert np.isfinite(loss)


class TestMSE:
    def test_zero_at_match(self):
        x = Tensor(np.ones(4))
        assert mse_loss(x, np.ones(4)).item() == pytest.approx(0.0)

    def test_known_value(self):
        assert mse_loss(Tensor(np.zeros(2)), np.array([1.0, 1.0])).item() == \
            pytest.approx(1.0)


class TestVADRegularizers:
    def test_sparsity_is_mean_abs(self):
        probs = Tensor(np.array([0.2, 0.4]))
        assert sparsity_loss(probs).item() == pytest.approx(0.3)

    def test_smoothness_penalizes_jumps(self):
        smooth = smoothness_loss(Tensor(np.array([0.5, 0.5, 0.5]))).item()
        jumpy = smoothness_loss(Tensor(np.array([0.0, 1.0, 0.0]))).item()
        assert smooth == pytest.approx(0.0)
        assert jumpy > 0.5

    def test_smoothness_single_element(self):
        assert smoothness_loss(Tensor(np.array([0.3]))).item() == pytest.approx(0.0)

    def test_vad_loss_composition(self):
        logits = np.array([[3.0, 0.0], [0.0, 3.0]])
        targets = np.array([0, 1])
        base = cross_entropy(Tensor(logits), targets).item()
        full = vad_loss(Tensor(logits), targets,
                        lambda_spa=0.001, lambda_smt=0.001).item()
        plain = vad_loss(Tensor(logits), targets,
                         lambda_spa=0.0, lambda_smt=0.0).item()
        assert plain == pytest.approx(base, abs=1e-9)
        assert full > plain  # regularizers add positive mass

    def test_vad_loss_gradient_flows(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 2)),
                        requires_grad=True)
        vad_loss(logits, np.array([0, 1, 0, 1])).backward()
        assert logits.grad is not None
        assert np.all(np.isfinite(logits.grad))
