"""Architectural layering guard: serving/runtime never import the gateway.

The dependency direction is ``repro.metrics`` ← ``repro.runtime`` ←
``repro.serving`` ← ``repro.gateway`` (the gateway is the outermost
layer).  PR 4 briefly inverted this (``serving.bench`` imported
``gateway.metrics``); this test walks the ASTs so the inversion cannot
come back through *any* import form — ruff's banned-api rule (TID251 in
pyproject.toml) catches absolute imports, this catches relative ones
too.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages/modules that must never depend on the gateway.  ``wal`` sits
#: beside serving (recovery imports it; the runtime engine only sees a
#: duck-typed durability hook), so it too must never reach up.
LOWER_LAYERS = ("serving", "runtime", "api", "wal", "metrics.py",
                "errors.py")


def _modules():
    for layer in LOWER_LAYERS:
        path = SRC / layer
        if path.is_file():
            yield path
        else:
            yield from sorted(path.rglob("*.py"))


def _gateway_imports(text: str, depth: int) -> list[str]:
    """Offending import statements in ``text``; ``depth`` is how many
    package levels below ``repro`` the module sits (so ``depth`` leading
    dots in a relative import land on the ``repro`` package itself)."""
    offenders = []
    for node in ast.walk(ast.parse(text)):
        if isinstance(node, ast.Import):
            offenders.extend(
                f"line {node.lineno}: import {alias.name}"
                for alias in node.names
                if alias.name.split(".")[:2] == ["repro", "gateway"])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            absolute = module.split(".")[:2] == ["repro", "gateway"]
            relative = (node.level == depth
                        and module.split(".")[:1] == ["gateway"])
            if absolute or relative:
                offenders.append(f"line {node.lineno}: from "
                                 f"{'.' * node.level}{module} import ...")
    return offenders


@pytest.mark.parametrize("path", list(_modules()),
                         ids=lambda p: str(p.relative_to(SRC)))
def test_no_gateway_imports_below_the_gateway(path):
    depth = len(path.relative_to(SRC).parts)  # serving/bench.py -> 2
    offenders = _gateway_imports(path.read_text(), depth)
    assert not offenders, (
        f"{path.relative_to(SRC)} imports repro.gateway — the gateway is "
        f"the outermost serving layer and nothing below it may depend on "
        f"it (promote shared code to repro.metrics/repro.runtime "
        f"instead): {offenders}")


class TestGuardSelf:
    """The guard must catch every spelling it exists to forbid."""

    def test_absolute_from_import(self):
        assert _gateway_imports(
            "from repro.gateway.metrics import percentile\n", depth=2)

    def test_absolute_import(self):
        assert _gateway_imports("import repro.gateway.metrics\n", depth=2)

    def test_relative_import(self):
        # The exact PR 4 inversion: serving/bench.py reaching over.
        assert _gateway_imports(
            "from ..gateway.metrics import percentile\n", depth=2)

    def test_legitimate_imports_pass(self):
        assert not _gateway_imports(
            "from ..metrics import percentile\n"
            "from ..runtime import ServingEngine\n"
            "import numpy as np\n", depth=2)
