"""Architectural layering guard, now a thin wrapper over ``repro lint``.

The dependency DAG between ``repro`` packages is declared in exactly one
place — :data:`repro.analysis.rules.layer_dag.LAYER_DEPS` — and enforced
by the **layer-dag** rule (which catches absolute *and* relative import
spellings; it subsumed both the ruff TID251 banned-api config and this
file's original bespoke AST walk).  This test runs that rule over the
source tree per module, checks the declaration itself is acyclic, and
keeps self-check fixtures proving the rule still catches every spelling
the old guard existed to forbid.
"""

from graphlib import CycleError, TopologicalSorter
from pathlib import Path

import pytest

from repro.analysis import SourceFile
from repro.analysis.rules.layer_dag import LAYER_DEPS, LayerDagRule

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _modules():
    return sorted(p for p in SRC.rglob("*.py") if "__pycache__" not in p.parts)


@pytest.mark.parametrize("path", _modules(),
                         ids=lambda p: str(p.relative_to(SRC)))
def test_declared_layer_dag_holds(path):
    source = SourceFile.load(path)
    findings = [f for f in LayerDagRule().check(source)
                if not source.is_suppressed(f)]
    assert not findings, (
        f"{path.relative_to(SRC)} violates the declared layer DAG "
        f"(repro.analysis.rules.layer_dag.LAYER_DEPS): "
        f"{[f.message for f in findings]}")


def test_layer_deps_is_acyclic():
    try:
        order = list(TopologicalSorter(
            {pkg: set(deps) for pkg, deps in LAYER_DEPS.items()}
        ).static_order())
    except CycleError as exc:
        pytest.fail(f"LAYER_DEPS declares an import cycle: {exc.args[1]}")
    assert set(order) >= set(LAYER_DEPS)


def test_every_source_package_is_declared():
    packages = {p.name for p in SRC.iterdir() if (p / "__init__.py").exists()}
    packages |= {p.stem for p in SRC.glob("*.py") if p.stem != "__init__"}
    undeclared = packages - set(LAYER_DEPS)
    assert not undeclared, (
        f"packages missing from LAYER_DEPS: {sorted(undeclared)}")


def _findings(text: str, module: str, filename: str = "fixture.py"):
    source = SourceFile(filename, text, module=module)
    return list(LayerDagRule().check(source))


class TestGuardSelf:
    """The guard must catch every spelling it exists to forbid."""

    def test_absolute_from_import(self):
        assert _findings("from repro.gateway.server import GatewayServer\n",
                         module="repro.serving.bench")

    def test_absolute_import(self):
        assert _findings("import repro.gateway.protocol\n",
                         module="repro.serving.bench")

    def test_relative_import(self):
        # The exact PR 4 inversion: serving/bench.py reaching over.
        assert _findings("from ..gateway.protocol import MAX_FRAME_BYTES\n",
                         module="repro.serving.bench")

    def test_relative_import_from_package_init(self):
        # __init__ relative imports anchor at the package itself.
        assert _findings("from .protocol import MAX_FRAME_BYTES\n",
                         module="repro.serving",
                         filename="serving/__init__.py") == []
        assert _findings("from ..gateway import protocol\n",
                         module="repro.serving",
                         filename="serving/__init__.py")

    def test_undeclared_package_is_flagged(self):
        assert _findings("import os\n", module="repro.brand_new_pkg")

    def test_legitimate_imports_pass(self):
        assert not _findings(
            "from ..metrics import percentile\n"
            "from ..runtime import ServingEngine\n"
            "import numpy as np\n", module="repro.serving.bench")

    def test_suppression_comment_is_honored(self):
        text = ("# repro: allow[layer-dag] deliberate lazy back-edge\n"
                "from ..serving.batcher import ScoreRequest\n")
        source = SourceFile("fixture.py", text,
                            module="repro.runtime.backends")
        findings = [f for f in LayerDagRule().check(source)
                    if not source.is_suppressed(f)]
        assert findings == []
