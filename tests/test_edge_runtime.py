"""Tests for the metered edge deployment simulator."""

import pytest

from repro.adaptation import AdaptationConfig, MonitorConfig
from repro.edge import DeploymentReport, EdgeDeploymentSimulator, EdgeDeviceModel


def make_simulator(fresh_model, embedding_model, rng, **kwargs):
    model = fresh_model(window=4)
    anchors = rng.normal(size=(8, 4, embedding_model.frame_dim))
    return EdgeDeploymentSimulator(
        model,
        AdaptationConfig(monitor=MonitorConfig(window=12, lag=6)),
        normal_anchor_windows=anchors, **kwargs)


class TestMetering:
    def test_every_batch_metered(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        for _ in range(3):
            windows = rng.normal(size=(5, 4, embedding_model.frame_dim))
            log, meter = sim.process_batch(windows)
            assert meter.windows == 5
            assert meter.inference_flops > 0
            assert meter.energy_joules > 0
            assert meter.latency_seconds > 0
        assert len(sim.report.steps) == 3

    def test_inference_flops_scale_with_batch(self, fresh_model,
                                              embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        _, small = sim.process_batch(rng.normal(size=(2, 4, embedding_model.frame_dim)))
        _, large = sim.process_batch(rng.normal(size=(8, 4, embedding_model.frame_dim)))
        assert large.inference_flops == pytest.approx(4 * small.inference_flops)

    def test_no_adaptation_means_zero_adaptation_flops(self, fresh_model,
                                                       embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        _, meter = sim.process_batch(
            rng.normal(size=(4, 4, embedding_model.frame_dim)))
        assert not meter.adapted
        assert meter.adaptation_flops == 0.0

    def test_run_over_stream(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        stream = [rng.normal(size=(4, 4, embedding_model.frame_dim))
                  for _ in range(4)]
        report = sim.run(stream)
        assert isinstance(report, DeploymentReport)
        assert report.total_windows == 16
        assert report.total_flops > 0

    def test_energy_follows_device_model(self, fresh_model, embedding_model, rng):
        device = EdgeDeviceModel(joules_per_flop=1e-9)
        sim = make_simulator(fresh_model, embedding_model, rng, device=device)
        _, meter = sim.process_batch(
            rng.normal(size=(4, 4, embedding_model.frame_dim)))
        assert meter.energy_joules == pytest.approx(meter.total_flops * 1e-9)


class TestReport:
    def test_aggregates(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        for _ in range(4):
            sim.process_batch(rng.normal(size=(3, 4, embedding_model.frame_dim)))
        report = sim.report
        assert report.total_flops == pytest.approx(
            report.inference_flops + report.adaptation_flops)
        assert report.total_energy_joules == pytest.approx(
            sum(m.energy_joules for m in report.steps))

    def test_flops_per_day_extrapolation(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        sim.process_batch(rng.normal(size=(4, 4, embedding_model.frame_dim)))
        per_step = sim.report.total_flops
        assert sim.report.flops_per_day(steps_per_day=100) == pytest.approx(
            100 * per_step)

    def test_empty_report(self):
        report = DeploymentReport()
        assert report.total_flops == 0.0
        assert report.flops_per_day(10) == 0.0

    def test_summary_renders(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        sim.process_batch(rng.normal(size=(2, 4, embedding_model.frame_dim)))
        text = sim.report.summary()
        assert "windows scored" in text
        assert "total energy" in text
