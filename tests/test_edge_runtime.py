"""Tests for the metered edge deployment simulator."""

import pytest

from repro.adaptation import AdaptationConfig, MonitorConfig
from repro.edge import DeploymentReport, EdgeDeploymentSimulator, EdgeDeviceModel
from repro.edge.flops import count_model_forward


def make_simulator(fresh_model, embedding_model, rng, **kwargs):
    model = fresh_model(window=4)
    anchors = rng.normal(size=(8, 4, embedding_model.frame_dim))
    return EdgeDeploymentSimulator(
        model,
        AdaptationConfig(monitor=MonitorConfig(window=12, lag=6)),
        normal_anchor_windows=anchors, **kwargs)


class TestMetering:
    def test_every_batch_metered(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        for _ in range(3):
            windows = rng.normal(size=(5, 4, embedding_model.frame_dim))
            log, meter = sim.process_batch(windows)
            assert meter.windows == 5
            assert meter.inference_flops > 0
            assert meter.energy_joules > 0
            assert meter.latency_seconds > 0
        assert len(sim.report.steps) == 3

    def test_inference_flops_scale_with_batch(self, fresh_model,
                                              embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        _, small = sim.process_batch(rng.normal(size=(2, 4, embedding_model.frame_dim)))
        _, large = sim.process_batch(rng.normal(size=(8, 4, embedding_model.frame_dim)))
        assert large.inference_flops == pytest.approx(4 * small.inference_flops)

    def test_no_adaptation_means_zero_adaptation_flops(self, fresh_model,
                                                       embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        _, meter = sim.process_batch(
            rng.normal(size=(4, 4, embedding_model.frame_dim)))
        assert not meter.adapted
        assert meter.adaptation_flops == 0.0

    def test_run_over_stream(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        stream = [rng.normal(size=(4, 4, embedding_model.frame_dim))
                  for _ in range(4)]
        report = sim.run(stream)
        assert isinstance(report, DeploymentReport)
        assert report.total_windows == 16
        assert report.total_flops > 0

    def test_energy_follows_device_model(self, fresh_model, embedding_model, rng):
        device = EdgeDeviceModel(joules_per_flop=1e-9)
        sim = make_simulator(fresh_model, embedding_model, rng, device=device)
        _, meter = sim.process_batch(
            rng.normal(size=(4, 4, embedding_model.frame_dim)))
        assert meter.energy_joules == pytest.approx(meter.total_flops * 1e-9)


class TestStructuralMeteringRefresh:
    """Regression: the per-forward FLOPs cache from ``__init__`` must be
    recomputed once structural adaptation changes the KG — pruning a
    high-fan node changes the true per-forward cost, and a stale cache
    would mis-bill every subsequent window."""

    @staticmethod
    def _prune_busiest_node(sim) -> None:
        """Force one structural event that strictly drops the edge count:
        prune the concept node with the most edges, replace it with a
        minimally-connected one (edge_probability=0 keeps one edge per
        side)."""
        kg = sim.model.reasoners[0].kg
        candidates = [node for node in kg._nodes.values() if node.is_concept
                      and len(kg.nodes_at_level(node.level)) > 1]

        def edge_count(node):
            return sum(1 for (src, dst) in kg._edges
                       if src == node.node_id or dst == node.node_id)

        busiest = max(candidates, key=edge_count)
        assert edge_count(busiest) > 2  # replacement gets exactly 2 edges
        sim.controller.structural.edge_probability = 0.0
        event = sim.controller.structural.replace_node(
            0, busiest.node_id, step=0)
        assert event is not None

    def test_flops_per_window_drop_after_pruning(self, fresh_model,
                                                 embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        _, before_meter = sim.process_batch(
            rng.normal(size=(5, 4, embedding_model.frame_dim)))
        stale = sim._forward_flops
        self._prune_busiest_node(sim)
        _, after_meter = sim.process_batch(
            rng.normal(size=(5, 4, embedding_model.frame_dim)))
        assert sim._forward_flops == count_model_forward(sim.model).total
        assert sim._forward_flops < stale
        # Subsequent windows are billed at the refreshed per-forward cost.
        _, next_meter = sim.process_batch(
            rng.normal(size=(5, 4, embedding_model.frame_dim)))
        assert next_meter.inference_flops == 5 * sim._forward_flops
        assert next_meter.inference_flops < before_meter.inference_flops

    def test_no_structural_change_keeps_cache(self, fresh_model,
                                              embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        cached = sim._forward_flops
        sim.process_batch(rng.normal(size=(4, 4, embedding_model.frame_dim)))
        assert sim._forward_flops == cached


class TestReport:
    def test_aggregates(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        for _ in range(4):
            sim.process_batch(rng.normal(size=(3, 4, embedding_model.frame_dim)))
        report = sim.report
        assert report.total_flops == pytest.approx(
            report.inference_flops + report.adaptation_flops)
        assert report.total_energy_joules == pytest.approx(
            sum(m.energy_joules for m in report.steps))

    def test_flops_per_day_extrapolation(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        sim.process_batch(rng.normal(size=(4, 4, embedding_model.frame_dim)))
        per_step = sim.report.total_flops
        assert sim.report.flops_per_day(steps_per_day=100) == pytest.approx(
            100 * per_step)

    def test_empty_report(self):
        report = DeploymentReport()
        assert report.total_flops == 0.0
        assert report.flops_per_day(10) == 0.0

    def test_summary_renders(self, fresh_model, embedding_model, rng):
        sim = make_simulator(fresh_model, embedding_model, rng)
        sim.process_batch(rng.normal(size=(2, 4, embedding_model.frame_dim)))
        text = sim.report.summary()
        assert "windows scored" in text
        assert "total energy" in text
