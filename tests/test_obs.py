"""repro.obs unit tests: contexts, spans, the bounded recorder, the
JSONL/Chrome exporters, the trace report, plus the LatencyHistogram
true-count/merge semantics the tracing stack leans on."""

import json
import threading

import pytest

from repro.metrics import LatencyHistogram
from repro.obs import (
    Span,
    TraceContext,
    TraceRecorder,
    check_trace,
    chrome_trace,
    load_jsonl,
    render_report,
    render_tree,
    slowest_traces,
    stage_summary,
    write_chrome_trace,
    write_jsonl,
)


class TestTraceContext:
    def test_root_and_child_identity(self):
        root = TraceContext.root()
        assert root.parent_id is None
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_wire_round_trip_drops_parent(self):
        child = TraceContext.root().child()
        wire = child.to_wire()
        assert set(wire) == {"trace_id", "span_id"}
        back = TraceContext.from_wire(wire)
        assert back.trace_id == child.trace_id
        assert back.span_id == child.span_id
        assert back.parent_id is None

    @pytest.mark.parametrize("payload", [
        None, "nope", 7, [], {},
        {"trace_id": "abc"},                       # missing span_id
        {"trace_id": "", "span_id": "abc"},        # empty id
        {"trace_id": 1, "span_id": "abc"},         # non-string id
    ])
    def test_from_wire_degrades_malformed_to_none(self, payload):
        assert TraceContext.from_wire(payload) is None


class TestSpan:
    def test_dict_round_trip(self):
        span = Span(name="x", trace_id="t" * 16, span_id="s" * 8,
                    parent_id=None, ts=1.5, dur=0.25, attrs={"k": "v"})
        assert Span.from_dict(span.to_dict()) == span

    def test_from_dict_rejects_missing_ids(self):
        with pytest.raises(ValueError, match="missing name"):
            Span.from_dict({"name": "x", "trace_id": "t"})

    def test_from_dict_rejects_non_mapping_attrs(self):
        with pytest.raises(ValueError, match="attrs"):
            Span.from_dict({"name": "x", "trace_id": "t", "span_id": "s",
                            "attrs": ["not", "a", "mapping"]})


class TestRecorder:
    def test_start_finish_records_with_parentage(self):
        recorder = TraceRecorder()
        root = recorder.start("gateway.request", attrs={"op": "ingest"})
        child = recorder.start("queue.wait", parent=root.context)
        child.finish(stream="cam-0")
        span = root.finish(outcome="ok")
        assert span.attrs == {"op": "ingest", "outcome": "ok"}
        spans = recorder.snapshot()
        assert [s.name for s in spans] == ["queue.wait", "gateway.request"]
        assert spans[0].trace_id == spans[1].trace_id
        assert spans[0].parent_id == spans[1].span_id

    def test_double_finish_raises(self):
        recorder = TraceRecorder()
        active = recorder.start("x")
        active.finish()
        with pytest.raises(RuntimeError, match="finished twice"):
            active.finish()

    def test_abandoned_span_is_never_recorded(self):
        recorder = TraceRecorder()
        recorder.start("engine.round")  # dropped without finish()
        assert len(recorder) == 0

    def test_capacity_drops_new_spans_and_counts(self):
        recorder = TraceRecorder(capacity=3)
        for index in range(5):
            recorder.record_span(f"s{index}", parent=None, ts=0.0, dur=0.0)
        assert len(recorder) == 3
        assert recorder.dropped == 2
        # Oldest complete spans kept, newest dropped.
        assert [s.name for s in recorder.snapshot()] == ["s0", "s1", "s2"]

    def test_mark_and_since(self):
        recorder = TraceRecorder()
        recorder.record_span("before", parent=None, ts=0.0, dur=0.0)
        mark = recorder.mark()
        recorder.record_span("after-1", parent=None, ts=0.0, dur=0.0)
        recorder.record_span("after-2", parent=None, ts=0.0, dur=0.0)
        assert [s.name for s in recorder.since(mark)] == ["after-1",
                                                          "after-2"]
        assert recorder.since(recorder.mark()) == []

    def test_record_dicts_relays_worker_spans(self):
        recorder = TraceRecorder()
        recorder.record_dicts([{"name": "shard.score", "trace_id": "t",
                                "span_id": "s", "parent_id": "p",
                                "ts": 1.0, "dur": 0.5,
                                "attrs": {"shard": 1}}])
        span, = recorder.snapshot()
        assert span.name == "shard.score"
        assert span.attrs["shard"] == 1

    def test_concurrent_record_stays_bounded_and_consistent(self):
        recorder = TraceRecorder(capacity=256)
        per_thread = 200
        threads = [threading.Thread(target=lambda: [
            recorder.record_span("flood", parent=None, ts=0.0, dur=0.0)
            for _ in range(per_thread)]) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder) == 256
        assert len(recorder) + recorder.dropped == 8 * per_thread

    def test_drain_clears_but_keeps_drop_count(self):
        recorder = TraceRecorder(capacity=1)
        recorder.record_span("a", parent=None, ts=0.0, dur=0.0)
        recorder.record_span("b", parent=None, ts=0.0, dur=0.0)
        drained = recorder.drain()
        assert [s.name for s in drained] == ["a"]
        assert len(recorder) == 0
        assert recorder.dropped == 1


def _request_trace(recorder, stream="cam-0", outcome="ok",
                   stages=("queue.wait", "stage.score", "stage.ingest",
                           "stage.durability")):
    """One complete client->gateway->stages trace in ``recorder``."""
    client = recorder.start("client.request",
                            attrs={"op": "ingest", "stream": stream})
    server = recorder.start("gateway.request", parent=client.context,
                            attrs={"op": "ingest", "stream": stream})
    for stage in stages:
        recorder.record_span(stage, parent=server.context, ts=1.0,
                             dur=0.002, attrs={"stream": stream})
    server.finish(outcome=outcome)
    client.finish(outcome=outcome)
    return server.context.trace_id


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = TraceRecorder()
        _request_trace(recorder)
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(recorder.snapshot(), path)
        assert count == 6
        loaded = load_jsonl(path)
        assert len(loaded) == 6
        assert {record["name"] for record in loaded} >= {"client.request",
                                                         "queue.wait"}

    def test_load_jsonl_names_the_bad_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps({"name": "x", "trace_id": "t", "span_id": "s",
                           "ts": 0.0, "dur": 0.0})
        path.write_text(good + "\nnot json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r":2: not JSON"):
            load_jsonl(path)
        path.write_text(good + "\n" + json.dumps({"name": "y"}) + "\n",
                        encoding="utf-8")
        with pytest.raises(ValueError, match=r":2: span record missing"):
            load_jsonl(path)

    def test_chrome_trace_events(self, tmp_path):
        recorder = TraceRecorder()
        trace_id = _request_trace(recorder)
        document = chrome_trace(recorder.snapshot())
        events = document["traceEvents"]
        assert len(events) == 6
        assert all(event["ph"] == "X" for event in events)
        assert sorted(events, key=lambda e: e["ts"]) == events
        stage = next(e for e in events if e["name"] == "queue.wait")
        assert stage["ts"] == pytest.approx(1.0 * 1e6)
        assert stage["dur"] == pytest.approx(0.002 * 1e6)
        assert stage["args"]["trace_id"] == trace_id
        # One timeline row per trace, "gateway"/"stage" categories.
        assert len({event["tid"] for event in events}) == 1
        assert {event["cat"] for event in events} == {"client", "gateway",
                                                      "queue", "stage"}
        path = tmp_path / "chrome.json"
        assert write_chrome_trace(recorder.snapshot(), path) == 6
        assert json.loads(path.read_text())["displayTimeUnit"] == "ms"


class TestReport:
    def test_stage_summary_counts_every_span(self):
        recorder = TraceRecorder()
        for _ in range(3):
            _request_trace(recorder)
        summary = stage_summary(recorder.snapshot())
        assert summary["queue.wait"]["count"] == 3
        assert summary["queue.wait"]["p50_ms"] == pytest.approx(2.0)
        assert set(summary["stage.score"]) == {"count", "mean_ms", "p50_ms",
                                               "p95_ms", "p99_ms"}

    def test_slowest_traces_ranked_by_wall_duration(self):
        recorder = TraceRecorder()
        recorder.record_span("a", parent=None, ts=0.0, dur=0.010)
        recorder.record_span("b", parent=None, ts=5.0, dur=0.500)
        ranked = slowest_traces(recorder.snapshot(), n=2)
        assert [round(duration, 3) for _, duration, _ in ranked] \
            == [0.5, 0.01]

    def test_render_tree_indents_children_and_roots_orphans(self):
        recorder = TraceRecorder()
        _request_trace(recorder)
        groups = slowest_traces(recorder.snapshot(), n=1)
        tree = render_tree(groups[0][2])
        lines = tree.splitlines()
        assert lines[0].startswith("client.request")
        assert lines[1].startswith("  gateway.request")
        assert any(line.startswith("    queue.wait") for line in lines)
        # A span whose parent lives in another recorder renders as root.
        orphan = [{"name": "shard.score", "trace_id": "t", "span_id": "s",
                   "parent_id": "elsewhere", "ts": 0.0, "dur": 0.0,
                   "attrs": {}}]
        assert render_tree(orphan).startswith("shard.score")

    def test_render_report_mentions_stages_and_slowest(self):
        recorder = TraceRecorder()
        _request_trace(recorder)
        report = render_report(recorder.snapshot(), slowest=1)
        assert "queue.wait" in report
        assert "slowest #1" in report

    def test_check_trace_passes_complete_chain(self):
        recorder = TraceRecorder()
        _request_trace(recorder)
        assert check_trace(recorder.snapshot()) == []

    def test_check_trace_flags_missing_stage(self):
        recorder = TraceRecorder()
        _request_trace(recorder, stages=("queue.wait", "stage.score",
                                         "stage.ingest"))
        problems = check_trace(recorder.snapshot())
        assert len(problems) == 1
        assert "stage.durability" in problems[0]

    def test_check_trace_flags_cross_trace_parent(self):
        recorder = TraceRecorder()
        _request_trace(recorder)
        spans = [span.to_dict() for span in recorder.snapshot()]
        server = next(s for s in spans if s["name"] == "gateway.request")
        spans.append({"name": "queue.wait", "trace_id": "other-trace",
                      "span_id": "zz", "parent_id": server["span_id"],
                      "ts": 0.0, "dur": 0.0, "attrs": {}})
        problems = check_trace(spans)
        assert any("crosses traces" in problem for problem in problems)

    def test_check_trace_requires_a_served_request(self):
        recorder = TraceRecorder()
        _request_trace(recorder, outcome="backpressure")
        problems = check_trace(recorder.snapshot())
        assert any("no completed gateway.request" in problem
                   for problem in problems)


class TestLatencyHistogramSemantics:
    """The satellite fix: true counts survive sampling and merging."""

    def test_count_is_true_observation_count_past_reservoir(self):
        histogram = LatencyHistogram(max_samples=8)
        for index in range(100):
            histogram.observe(index * 1e-3)
        assert histogram.count == 100
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["sampled"] == 8

    def test_empty_summary_shape(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_merge_preserves_true_count(self):
        merged = LatencyHistogram(max_samples=16)
        parts = []
        for offset in range(4):
            part = LatencyHistogram(max_samples=16)
            for index in range(50):
                part.observe((offset * 50 + index) * 1e-3)
            parts.append(part)
        for part in parts:
            merged.merge(part)
        assert merged.count == 200
        summary = merged.summary()
        assert summary["count"] == 200
        assert summary["sampled"] == 16

    def test_merge_without_overflow_pools_exact_samples(self):
        left = LatencyHistogram(max_samples=64)
        right = LatencyHistogram(max_samples=64)
        for value in (0.001, 0.002):
            left.observe(value)
        for value in (0.003, 0.004):
            right.observe(value)
        left.merge(right)
        assert left.count == 4
        assert sorted(left._samples) == [0.001, 0.002, 0.003, 0.004]

    def test_concurrent_observe_keeps_count_exact(self):
        histogram = LatencyHistogram(max_samples=32)
        per_thread = 500
        threads = [threading.Thread(target=lambda: [
            histogram.observe(1e-3) for _ in range(per_thread)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 8 * per_thread
        assert len(histogram._samples) == 32
