"""Tests for the unified serving core: engine, backends, policies.

The load-bearing property: every (ExecutionBackend, SchedulingPolicy)
combination serves **bit-identical** per-stream scores to a seed-style
direct ``DeploymentFleet.step()`` run over the same windows — backends
and policies may only change *round composition*, never a score bit.
Plus: engine metrics land in one registry, admission control bounds the
queues, deadlines expire stale work, and per-stream FIFO survives every
policy.
"""

import time

import numpy as np
import pytest

from repro.api import Deployment
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.metrics import MetricsRegistry
from repro.runtime import (
    AdmissionError,
    EngineRequest,
    FairRoundRobin,
    GreedyDrain,
    InlineBackend,
    PriorityAdmission,
    ShardedBackend,
    resolve_policy,
)
from repro.serving import DeploymentFleet, FleetInfra, ShardedFleet

INFRA = FleetInfra(embedding_seed=7, generator_seed=5)
ROUNDS = 3


def make_stream(frame_generator, seed, windows_per_step=2):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=2, steps_after_shift=2,
        windows_per_step=windows_per_step, window=4, seed=seed))


def make_fleet(fresh_model, frame_generator, streams=3) -> DeploymentFleet:
    """Deterministic fleet: same arguments -> bit-identical replicas."""
    fleet = DeploymentFleet()
    model = fresh_model("Stealing", window=4)
    model.eval()
    for index in range(streams):
        fleet.add(f"cam-{index}",
                  Deployment(model, mission="Stealing", adaptive=False),
                  make_stream(frame_generator, seed=60 + index))
    return fleet


@pytest.fixture()
def materialized(fresh_model, frame_generator):
    """(windows, reference): per-stream arrivals for ROUNDS rounds and
    the scores the seed-style direct ``fleet.step()`` run produces."""
    fleet = make_fleet(fresh_model, frame_generator)
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(ROUNDS)]
               for slot in fleet.slots}
    reference = {name: [] for name in fleet.names}
    for _ in range(ROUNDS):
        for event in fleet.step(batched=True):
            reference[event.stream].append(event.scores)
    return windows, reference


def drain_engine(engine):
    """Run policy-composed rounds until the queues empty; returns
    (per-stream score lists in served order, engine rounds used)."""
    served: dict[str, list] = {}
    errors = []
    rounds = 0
    while engine.has_pending():
        for result in engine.run_round():
            if result.kind == "event":
                served.setdefault(result.request.stream, []).append(
                    result.event.scores)
            else:
                errors.append((result.code, result.message))
        rounds += 1
        assert rounds < 100, "engine failed to drain"
    assert not errors, errors
    return served, rounds


class TestBackendPolicyParityMatrix:
    """(InlineBackend, ShardedBackend) x (fair, greedy, priority)."""

    POLICIES = {
        "fair": FairRoundRobin,
        "greedy": GreedyDrain,
        "priority": PriorityAdmission,
    }

    @pytest.mark.parametrize("backend", ["inline", "sharded"])
    @pytest.mark.parametrize("policy", ["fair", "greedy", "priority"])
    def test_scores_bit_identical_to_seed_step(
            self, fresh_model, frame_generator, backend, policy,
            materialized):
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        if backend == "sharded":
            fleet = ShardedFleet.from_fleet(fleet, shards=2, infra=INFRA)
        with fleet:
            engine = fleet.engine
            engine.policy = self.POLICIES[policy]()
            assert isinstance(
                engine.backend,
                InlineBackend if backend == "inline" else ShardedBackend)
            # Interleaved arrivals with distinct priorities, so the
            # priority policy actually reorders cross-stream.
            for round_index in range(ROUNDS):
                for position, name in enumerate(windows):
                    engine.submit(EngineRequest(
                        op="ingest", stream=name,
                        windows=windows[name][round_index],
                        priority=position))
            served, engine_rounds = drain_engine(engine)
        for name, expected_rounds in reference.items():
            assert len(served[name]) == len(expected_rounds)
            for round_index, expected in enumerate(expected_rounds):
                np.testing.assert_array_equal(
                    served[name][round_index], expected,
                    err_msg=f"{backend}x{policy}: {name} round "
                            f"{round_index} diverged")
        # Policies differ only in round composition.
        if policy == "greedy":
            assert engine_rounds == 1        # whole backlog in one round
        elif policy == "fair":
            assert engine_rounds == ROUNDS   # <=1 per stream per round

    def test_score_only_matrix_is_stateless(self, fresh_model,
                                            frame_generator, materialized):
        windows, reference = materialized
        arrivals = {name: windows[name][0] for name in windows}
        fleet = make_fleet(fresh_model, frame_generator)
        scored_inline = fleet.score_only(arrivals)
        with ShardedFleet.from_fleet(fleet, shards=2,
                                     infra=INFRA) as sharded:
            scored_sharded = sharded.score_only(arrivals)
        for name in arrivals:
            np.testing.assert_array_equal(scored_inline[name],
                                          reference[name][0])
            np.testing.assert_array_equal(scored_sharded[name],
                                          reference[name][0])


class TestEngineMetrics:
    def test_step_rounds_instrumented(self, fresh_model, frame_generator):
        fleet = make_fleet(fresh_model, frame_generator)
        rounds = len(list(fleet.serve()))
        metrics = fleet.engine.metrics.to_dict()
        assert metrics["counters"]["engine.rounds"] == rounds
        assert fleet.rounds == rounds
        assert metrics["histograms"]["engine.round_latency"]["count"] \
            == rounds
        # 3 streams x 2 windows/step, every stream exhausted together.
        assert metrics["counters"]["engine.windows"] == rounds * 3 * 2
        assert metrics["gauges"]["engine.last_round_streams"] == 3

    def test_stats_reports_backend_policy_and_coalescing(
            self, fresh_model, frame_generator):
        fleet = make_fleet(fresh_model, frame_generator)
        fleet.step()
        stats = fleet.engine.stats()
        assert stats["backend"] == "inline"
        assert stats["policy"] == "fair"
        assert stats["rounds"] == 1
        # 3 streams share one scoring model: one coalesced forward for
        # all 6 windows.
        assert stats["coalesce"]["batches_run"] == 1
        assert stats["coalesce"]["windows_scored"] == 6
        assert stats["coalesce"]["windows_per_forward"] == 6.0
        # Concurrent readers may still read inline backend counters.
        assert "coalesce" in fleet.engine.stats(concurrent=True)

    def test_queue_depth_gauge_tracks_submissions(self, fresh_model,
                                                  frame_generator,
                                                  materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        for name in windows:
            engine.submit(EngineRequest(op="ingest", stream=name,
                                        windows=windows[name][0]))
        assert engine.metrics.gauge("engine.queue_depth").value == 3
        assert engine.queued_depths() == {name: 1 for name in windows}
        engine.run_round()
        assert engine.metrics.gauge("engine.queue_depth").value == 0
        assert engine.metrics.to_dict()["counters"]["engine.requests"] == 3

    def test_shared_registry_with_caller(self, fresh_model,
                                         frame_generator):
        registry = MetricsRegistry()
        fleet = DeploymentFleet(metrics=registry)
        model = fresh_model("Stealing", window=4)
        model.eval()
        fleet.add("cam-0", Deployment(model, mission="Stealing",
                                      adaptive=False),
                  make_stream(frame_generator, seed=60))
        fleet.step()
        assert registry.to_dict()["counters"]["engine.rounds"] == 1


class TestAdmissionAndDeadlines:
    def test_backpressure_beyond_max_queue_depth(self, fresh_model,
                                                 frame_generator,
                                                 materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        engine.max_queue_depth = 1
        engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                    windows=windows["cam-0"][0]))
        with pytest.raises(AdmissionError) as err:
            engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                        windows=windows["cam-0"][1]))
        assert err.value.code == "backpressure"
        assert "retry" in err.value.message

    def test_expired_deadline_is_shed_not_served(self, fresh_model,
                                                 frame_generator,
                                                 materialized):
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        engine.policy = PriorityAdmission()
        engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                    windows=windows["cam-0"][0],
                                    deadline=time.monotonic() - 1.0))
        engine.submit(EngineRequest(op="ingest", stream="cam-1",
                                    windows=windows["cam-1"][0]))
        results = {r.request.stream: r for r in engine.run_round()}
        assert results["cam-0"].kind == "error"
        assert results["cam-0"].code == "expired"
        assert results["cam-1"].kind == "event"
        np.testing.assert_array_equal(results["cam-1"].event.scores,
                                      reference["cam-1"][0])
        # The expired stream never consumed a deployment step.
        event = fleet.ingest_round(
            {"cam-0": windows["cam-0"][0]})["cam-0"]
        assert event.step == 0
        assert engine.metrics.to_dict()["counters"]["engine.expired"] == 1

    def test_priority_orders_streams_under_round_cap(self, fresh_model,
                                                     frame_generator,
                                                     materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        engine.policy = PriorityAdmission(max_streams=1)
        engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                    windows=windows["cam-0"][0],
                                    priority=0))
        engine.submit(EngineRequest(op="ingest", stream="cam-2",
                                    windows=windows["cam-2"][0],
                                    priority=5))
        first = engine.run_round()
        assert [r.request.stream for r in first] == ["cam-2"]
        second = engine.run_round()
        assert [r.request.stream for r in second] == ["cam-0"]

    def test_greedy_cap_limits_per_stream_drain(self, fresh_model,
                                                frame_generator,
                                                materialized):
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        engine.policy = GreedyDrain(max_per_stream=2)
        for round_index in range(ROUNDS):
            engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                        windows=windows["cam-0"][round_index]))
        results = engine.run_round()
        assert len(results) == 2           # two FIFO waves in one round
        assert engine.queued_depths() == {"cam-0": 1}
        for round_index, result in enumerate(results):
            np.testing.assert_array_equal(result.event.scores,
                                          reference["cam-0"][round_index])

    def test_drop_pending_cancels_matching_work(self, fresh_model,
                                                frame_generator,
                                                materialized):
        windows, _ = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        doomed = EngineRequest(op="ingest", stream="cam-0",
                               windows=windows["cam-0"][0], tag="doomed")
        kept = EngineRequest(op="ingest", stream="cam-1",
                             windows=windows["cam-1"][0], tag="kept")
        engine.submit(doomed)
        engine.submit(kept)
        dropped = engine.drop_pending(lambda r: r.tag == "doomed")
        assert dropped == [doomed]
        assert engine.queued_depths() == {"cam-1": 1}

    def test_broken_policy_degrades_to_fair_service(self, fresh_model,
                                                    frame_generator,
                                                    materialized):
        """A raising policy must not wedge the engine (or, through it,
        the gateway's round loop): run_round falls back to serving each
        queue's front request and counts the failure."""
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine

        class ExplodingPolicy(FairRoundRobin):
            def select(self, queues, now):
                raise RuntimeError("scheduler bug")

        engine.policy = ExplodingPolicy()
        engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                    windows=windows["cam-0"][0]))
        results = engine.run_round()
        assert [r.kind for r in results] == ["event"]
        np.testing.assert_array_equal(results[0].event.scores,
                                      reference["cam-0"][0])
        assert not engine.has_pending()
        assert engine.metrics.to_dict()["counters"][
            "engine.policy_errors"] == 1

    def test_stale_policy_selection_is_ignored(self, fresh_model,
                                               frame_generator,
                                               materialized):
        """A policy returning request objects that are not actually
        queued (stale echoes) must not serve-without-dequeuing."""
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        stale = EngineRequest(op="ingest", stream="cam-0",
                              windows=windows["cam-0"][1])

        class StalePolicy(FairRoundRobin):
            def select(self, queues, now):
                plan = super().select(queues, now)
                plan.entries.append(stale)  # never submitted
                return plan

        engine.policy = StalePolicy()
        engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                    windows=windows["cam-0"][0]))
        results = engine.run_round()
        assert len(results) == 1
        np.testing.assert_array_equal(results[0].event.scores,
                                      reference["cam-0"][0])
        assert not engine.has_pending()

    def test_bad_entry_isolated_per_wave(self, fresh_model,
                                         frame_generator, materialized):
        """Un-scoreable windows (wrong frame_dim) error alone instead of
        poisoning the coalesced round — the gateway's isolation
        guarantee, now an engine property."""
        windows, reference = materialized
        fleet = make_fleet(fresh_model, frame_generator)
        engine = fleet.engine
        engine.submit(EngineRequest(op="ingest", stream="cam-0",
                                    windows=np.zeros((1, 4, 7))))
        engine.submit(EngineRequest(op="ingest", stream="cam-1",
                                    windows=windows["cam-1"][0]))
        results = {r.request.stream: r for r in engine.run_round()}
        assert results["cam-0"].kind == "error"
        assert results["cam-0"].code == "bad_request"
        assert "cam-0" in results["cam-0"].message
        np.testing.assert_array_equal(results["cam-1"].event.scores,
                                      reference["cam-1"][0])


class TestPolicyUnits:
    def _queues(self, *requests):
        queues: dict[str, list] = {}
        for request in requests:
            queues.setdefault(request.stream, []).append(request)
        return {name: tuple(q) for name, q in queues.items()}

    def _request(self, stream, priority=0, deadline=None, queued_at=0.0):
        return EngineRequest(op="ingest", stream=stream,
                             windows=np.zeros((1, 2, 3)),
                             priority=priority, deadline=deadline,
                             queued_at=queued_at)

    def test_fair_takes_one_per_stream_in_arrival_order(self):
        a0, a1 = self._request("a"), self._request("a")
        b0 = self._request("b")
        plan = FairRoundRobin().select(self._queues(a0, a1, b0), now=0.0)
        assert plan.entries == [a0, b0]
        assert plan.expired == []

    def test_greedy_drains_up_to_cap(self):
        a = [self._request("a") for _ in range(3)]
        plan = GreedyDrain(max_per_stream=2).select(self._queues(*a), 0.0)
        assert plan.entries == a[:2]
        assert GreedyDrain().select(self._queues(*a), 0.0).entries == a

    def test_priority_orders_and_expires(self):
        stale = self._request("a", deadline=5.0)
        live = self._request("a", priority=1, queued_at=2.0)
        urgent = self._request("b", priority=9, queued_at=3.0)
        plan = PriorityAdmission().select(self._queues(stale, live, urgent),
                                          now=10.0)
        assert plan.expired == [stale]
        assert plan.entries == [urgent, live]

    def test_priority_breaks_ties_by_queue_age(self):
        older = self._request("a", queued_at=1.0)
        newer = self._request("b", queued_at=2.0)
        plan = PriorityAdmission().select(self._queues(newer, older), 5.0)
        assert plan.entries == [older, newer]

    def test_resolve_policy(self):
        assert isinstance(resolve_policy(None), FairRoundRobin)
        assert isinstance(resolve_policy("greedy"), GreedyDrain)
        custom = PriorityAdmission(max_streams=2)
        assert resolve_policy(custom) is custom
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            resolve_policy("lifo")
        with pytest.raises(ValueError):
            GreedyDrain(max_per_stream=0)
        with pytest.raises(ValueError):
            PriorityAdmission(max_streams=0)
