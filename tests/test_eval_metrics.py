"""Tests for the from-scratch evaluation metrics."""

import numpy as np
import pytest

from repro.eval import average_precision, roc_auc, roc_curve, score_statistics


class TestRocAuc:
    def test_perfect_ranking(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.0)

    def test_random_ranking_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, 4000)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_known_value(self):
        # Hand-computed: pairs (pos > neg): (0.7>0.4), (0.7>0.6), (0.5>0.4);
        # (0.5<0.6) -> 3/4.
        scores = np.array([0.4, 0.6, 0.5, 0.7])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.75)

    def test_ties_contribute_half(self):
        scores = np.array([0.5, 0.5])
        labels = np.array([0, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(1)
        scores = rng.random(100)
        labels = rng.integers(0, 2, 100)
        base = roc_auc(scores, labels)
        assert roc_auc(np.exp(5 * scores), labels) == pytest.approx(base)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.2]), np.array([1, 1]))

    def test_nonbinary_labels_raise(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.2]), np.array([0, 2]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1]), np.array([0, 1]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([]), np.array([]))


class TestRocCurve:
    def test_starts_at_origin_ends_at_one(self):
        scores = np.array([0.1, 0.4, 0.35, 0.8])
        labels = np.array([0, 0, 1, 1])
        fpr, tpr, thresholds = roc_curve(scores, labels)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(2)
        scores = rng.random(50)
        labels = rng.integers(0, 2, 50)
        fpr, tpr, _ = roc_curve(scores, labels)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_trapezoid_matches_mannwhitney(self):
        rng = np.random.default_rng(3)
        scores = rng.random(200)
        labels = rng.integers(0, 2, 200)
        fpr, tpr, _ = roc_curve(scores, labels)
        trapezoid = float(np.trapezoid(tpr, fpr))
        assert trapezoid == pytest.approx(roc_auc(scores, labels), abs=1e-9)


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision(np.array([0.9, 0.8, 0.1]),
                                 np.array([1, 1, 0])) == pytest.approx(1.0)

    def test_known_value(self):
        # Ranking: pos(0.9), neg(0.8), pos(0.7) -> AP = (1/1 + 2/3)/2.
        scores = np.array([0.9, 0.8, 0.7])
        labels = np.array([1, 0, 1])
        assert average_precision(scores, labels) == pytest.approx((1 + 2 / 3) / 2)

    def test_needs_positives(self):
        with pytest.raises(ValueError):
            average_precision(np.array([0.5]), np.array([0]))


class TestScoreStatistics:
    def test_fields(self):
        stats = score_statistics(np.array([0.0, 0.5, 1.0]))
        assert stats["mean"] == pytest.approx(0.5)
        assert stats["median"] == pytest.approx(0.5)
        assert stats["min"] == 0.0 and stats["max"] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            score_statistics(np.array([]))
