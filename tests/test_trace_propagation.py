"""End-to-end trace propagation: client -> gateway -> engine -> shard
workers -> WAL, across both wire codecs and both backends, plus v1-peer
compatibility, recorder bounding under flood, bit-parity with tracing
on, and the promoted stats/version surface."""

import numpy as np
import pytest

import repro
from repro.api import Deployment
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.gateway import GatewayClient, serve_in_thread
from repro.obs import TraceRecorder, check_trace, span_dicts
from repro.serving import DeploymentFleet, FleetInfra, ShardedFleet

INFRA = FleetInfra(embedding_seed=7, generator_seed=5)
ROUNDS = 3


def make_stream(frame_generator, seed, windows_per_step=2):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        steps_before_shift=2, steps_after_shift=2,
        windows_per_step=windows_per_step, window=4, seed=seed))


@pytest.fixture()
def fleet_factory(fresh_model, frame_generator):
    """Deterministic fleet factory (bit-identical replicas per call);
    ``shards`` > 0 partitions the replica across worker processes."""
    def make(streams=3, shards=0):
        fleet = DeploymentFleet()
        model = fresh_model("Stealing", window=4)
        model.eval()
        for index in range(streams):
            fleet.add(f"cam-{index}",
                      Deployment(model, mission="Stealing", adaptive=False),
                      make_stream(frame_generator, seed=80 + index))
        if shards:
            fleet = ShardedFleet.from_fleet(fleet, shards, infra=INFRA)
        return fleet
    return make


@pytest.fixture()
def materialized(fleet_factory):
    """(windows, reference): arrivals for ROUNDS rounds and the scores
    an untraced direct ``fleet.step()`` run produces — the bit-parity
    bar every traced run below must still hit."""
    fleet = fleet_factory()
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(ROUNDS)]
               for slot in fleet.slots}
    reference = {name: [] for name in fleet.names}
    for _ in range(ROUNDS):
        for event in fleet.step(batched=True):
            reference[event.stream].append(event.scores)
    return windows, reference


def drive(address, windows, reference, recorder=None, codec="binary"):
    """Serve every materialized round through one traced client,
    asserting bit parity against the untraced reference."""
    with GatewayClient(*address, codec=codec, tracer=recorder) as client:
        for name in windows:
            client.attach(name)
        for round_index in range(ROUNDS):
            for name in windows:
                reply = client.ingest(name, windows[name][round_index])
                np.testing.assert_array_equal(
                    reply["scores_array"], reference[name][round_index],
                    err_msg=f"{name} round {round_index} diverged "
                            f"under tracing")


def by_name(spans, name):
    return [span for span in spans if span["name"] == name]


class TestEndToEndPropagation:
    @pytest.mark.parametrize("codec", ["json", "binary"])
    @pytest.mark.parametrize("shards", [0, 2])
    def test_parentage_and_parity(self, fleet_factory, materialized,
                                  shards, codec):
        windows, reference = materialized
        recorder = TraceRecorder()
        with fleet_factory(shards=shards) as fleet, \
                serve_in_thread(fleet, tracer=recorder) as handle:
            drive(handle.address, windows, reference, recorder=recorder,
                  codec=codec)
        spans = span_dicts(recorder.snapshot())
        assert check_trace(spans) == []
        by_id = {span["span_id"]: span for span in spans}

        requests = ROUNDS * len(windows)
        clients = [span for span in by_name(spans, "client.request")
                   if span["attrs"]["op"] == "ingest"]
        assert len(clients) == requests
        servers = [span for span in by_name(spans, "gateway.request")
                   if span["attrs"]["op"] == "ingest"]
        assert len(servers) == requests
        # Every server span is a child of a client span, same trace,
        # and records the wire codec the request actually arrived in.
        for server in servers:
            parent = by_id[server["parent_id"]]
            assert parent["name"] == "client.request"
            assert parent["trace_id"] == server["trace_id"]
            assert server["attrs"]["outcome"] == "ok"
            assert server["attrs"]["codec"] == codec
        # Each request's stage chain hangs under *its* server span.
        for stage in ("queue.wait", "stage.score", "stage.ingest",
                      "stage.durability"):
            stage_spans = by_name(spans, stage)
            assert len(stage_spans) == requests
            for span in stage_spans:
                assert by_id[span["parent_id"]]["name"] == "gateway.request"
        # Engine rounds carry their own trace with the stage spans.
        rounds = by_name(spans, "engine.round")
        assert rounds
        for name in ("engine.schedule", "engine.score", "engine.ingest",
                     "engine.durability"):
            for span in by_name(spans, name):
                assert by_id[span["parent_id"]]["name"] == "engine.round"

        shard_spans = [span for span in spans
                       if span["name"] in ("shard.score", "shard.ingest")]
        if shards:
            # Worker spans crossed the process boundary into the parent
            # recorder, attributed to both shards, parented under the
            # engine's score/ingest spans.
            assert {span["attrs"]["shard"] for span in shard_spans} \
                == set(range(shards))
            for span in shard_spans:
                assert by_id[span["parent_id"]]["name"] in ("engine.score",
                                                            "engine.ingest")
                assert span["attrs"]["pid"] > 0
        else:
            assert shard_spans == []

    def test_wal_fsync_spans_parent_under_durability(self, fleet_factory,
                                                     materialized,
                                                     tmp_path):
        windows, reference = materialized
        recorder = TraceRecorder()
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, tracer=recorder,
                                wal_dir=tmp_path / "wal") as handle:
            drive(handle.address, windows, reference, recorder=recorder)
        spans = span_dicts(recorder.snapshot())
        assert check_trace(spans) == []
        by_id = {span["span_id"]: span for span in spans}
        fsyncs = by_name(spans, "wal.fsync")
        assert fsyncs, "durable traced rounds must record wal.fsync spans"
        # Group-commit fsyncs driven by the round's durability stage are
        # parented under it; the WAL's own append-batch fsyncs record as
        # roots (no caller context) and are fine.
        committed = [span for span in fsyncs
                     if span["parent_id"] is not None]
        assert committed, "no fsync joined a round's durability span"
        for span in committed:
            parent = by_id[span["parent_id"]]
            assert parent["name"] == "engine.durability"
            assert parent["trace_id"] == span["trace_id"]
        for span in fsyncs:
            assert span["attrs"]["pending"] >= 0
            assert span["attrs"]["segment"].endswith(".wal")

    def test_v1_peer_fallback_stays_traced_client_side(self, fleet_factory,
                                                       materialized):
        # A v1-only (json) server has never heard of the trace field;
        # the traced client falls back to v1 frames, parity holds, and
        # its own client.request spans still record.
        windows, reference = materialized
        recorder = TraceRecorder()
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, codec="json") as handle:
            drive(handle.address, windows, reference, recorder=recorder)
        spans = span_dicts(recorder.snapshot())
        clients = by_name(spans, "client.request")
        assert len(clients) == ROUNDS * len(windows)
        assert all(span["attrs"]["outcome"] == "ok" for span in clients)
        assert by_name(spans, "gateway.request") == []

    def test_untraced_client_yields_root_server_spans(self, fleet_factory,
                                                      materialized):
        # No trace field on the wire -> the server span starts a new
        # trace instead of erroring or joining anything.
        windows, reference = materialized
        recorder = TraceRecorder()
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, tracer=recorder) as handle:
            drive(handle.address, windows, reference, recorder=None)
        spans = span_dicts(recorder.snapshot())
        servers = [span for span in by_name(spans, "gateway.request")
                   if span["attrs"]["op"] == "ingest"]
        assert len(servers) == ROUNDS * len(windows)
        assert all(span["parent_id"] is None for span in servers)
        assert check_trace(spans) == []

    def test_recorder_stays_bounded_under_flood(self, fleet_factory,
                                                materialized):
        windows, reference = materialized
        recorder = TraceRecorder(capacity=16)
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, tracer=recorder) as handle:
            drive(handle.address, windows, reference, recorder=recorder)
        assert len(recorder) == 16
        assert recorder.dropped > 0
        # drop-new keeps the oldest complete traces: the very first
        # span recorded is still present.
        spans = span_dicts(recorder.snapshot())
        assert min(spans, key=lambda span: span["ts"])["name"] \
            in ("client.request", "gateway.request", "engine.round",
                "queue.wait")

    def test_tracing_off_records_nothing(self, fleet_factory, materialized):
        # The control arm of "tracing disabled -> hot path unchanged":
        # an untraced server serves the identical bits (the reference
        # was produced untraced; parity asserts equality) and no span
        # machinery is touched.
        windows, reference = materialized
        with fleet_factory() as fleet, serve_in_thread(fleet) as handle:
            drive(handle.address, windows, reference, recorder=None)
            assert fleet.engine.tracer is None


class TestStatsSurface:
    def test_stats_promotes_version_uptime_and_stage_histograms(
            self, fleet_factory, materialized):
        windows, reference = materialized
        recorder = TraceRecorder()
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, tracer=recorder) as handle:
            drive(handle.address, windows, reference, recorder=recorder)
            with GatewayClient(*handle.address) as observer:
                stats = observer.stats()
        assert stats["server_version"] == repro.__version__
        assert stats["uptime_seconds"] > 0
        engine = stats["engine"]
        assert engine["version"] == repro.__version__
        assert engine["uptime_seconds"] > 0
        assert engine["started_at"] > 0
        histograms = stats["metrics"]["histograms"]
        for stage in ("queue_wait", "schedule", "score", "ingest",
                      "durability"):
            name = f"engine.stage.{stage}"
            assert histograms[name]["count"] > 0, name
            assert "sampled" in histograms[name]

    def test_engine_stats_uptime_is_monotonic(self, fleet_factory):
        with fleet_factory(streams=1) as fleet:
            first = fleet.engine.stats()
            second = fleet.engine.stats()
            assert second["uptime_seconds"] >= first["uptime_seconds"]
            assert first["version"] == repro.__version__


class TestSlowRoundDump:
    def test_slow_rounds_dump_span_files(self, fleet_factory, materialized,
                                         tmp_path):
        windows, reference = materialized
        trace_dir = tmp_path / "traces"
        with fleet_factory() as fleet, \
                serve_in_thread(fleet, trace_dir=trace_dir,
                                slow_round_ms=0.0) as handle:
            drive(handle.address, windows, reference)
        # Every round is "slow" at a 0 ms threshold: the counter moved
        # and each dump file holds that round's spans.
        assert fleet.engine.metrics.counter("engine.slow_rounds").value > 0
        dumps = sorted(trace_dir.glob("slow-round-*.jsonl"))
        assert dumps
        from repro.obs import load_jsonl
        dumped = load_jsonl(dumps[0])
        assert any(span["name"] == "engine.round" for span in dumped)
        # The drain export landed next to the dumps.
        assert (trace_dir / "trace.jsonl").exists()
        assert (trace_dir / "trace_chrome.json").exists()
