"""Tests for the hierarchical ReproConfig (round-trip, dotted overrides)."""

import dataclasses

import pytest

from repro.api import ReproConfig, config_from_dict, config_to_dict
from repro.adaptation import AdaptationConfig


class TestRoundTrip:
    def test_dict_round_trip(self):
        cfg = ReproConfig()
        cfg.experiment.train_steps = 123
        cfg.adaptation.monitor.window = 72
        data = cfg.to_dict()
        restored = ReproConfig.from_dict(data)
        assert restored == cfg
        assert restored.to_dict() == data

    def test_dict_is_fully_nested_plain_data(self):
        data = ReproConfig().to_dict()
        assert data["adaptation"]["monitor"]["window"] == 96
        assert data["model"]["gnn_hidden_dim"] == 8
        assert data["stream"]["initial_class"] == "Stealing"

    def test_json_round_trip(self):
        cfg = ReproConfig()
        cfg.experiment.seed = 42
        cfg.adaptation.update.learning_rate = 0.05
        restored = ReproConfig.from_json(cfg.to_json())
        assert restored == cfg

    def test_file_round_trip(self, tmp_path):
        cfg = ReproConfig()
        cfg.training.weight_decay = 0.5
        path = tmp_path / "config.json"
        cfg.save(path)
        assert ReproConfig.load(path) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(KeyError):
            ReproConfig.from_dict({"no_such_section": {}})
        with pytest.raises(KeyError):
            ReproConfig.from_dict({"adaptation": {"monitor": {"bogus": 1}}})

    def test_nested_section_helpers(self):
        data = config_to_dict(AdaptationConfig())
        restored = config_from_dict(AdaptationConfig, data)
        assert restored == AdaptationConfig()

    def test_copy_is_independent(self):
        cfg = ReproConfig()
        clone = cfg.copy()
        clone.adaptation.monitor.window = 10
        assert cfg.adaptation.monitor.window == 96


class TestOverrides:
    def test_override_nested_leaf(self):
        cfg = ReproConfig().override("adaptation.monitor.window", 72)
        assert cfg.adaptation.monitor.window == 72

    def test_override_coerces_strings(self):
        cfg = ReproConfig()
        cfg.override("experiment.train_steps", "250")
        cfg.override("experiment.train_lr", "0.01")
        cfg.override("adaptation.structural_adaptation", "false")
        cfg.override("stream.initial_class", "Robbery")
        assert cfg.experiment.train_steps == 250
        assert cfg.experiment.train_lr == pytest.approx(0.01)
        assert cfg.adaptation.structural_adaptation is False
        assert cfg.stream.initial_class == "Robbery"

    def test_override_optional_field(self):
        cfg = ReproConfig().override("registry_dir", "/tmp/models")
        assert cfg.registry_dir == "/tmp/models"
        cfg.override("registry_dir", "none")
        assert cfg.registry_dir is None

    def test_override_returns_self_for_chaining(self):
        cfg = ReproConfig()
        assert cfg.override("experiment.seed", 1) is cfg

    def test_override_unknown_path_raises(self):
        with pytest.raises(KeyError):
            ReproConfig().override("adaptation.monitor.bogus", 1)
        with pytest.raises(KeyError):
            ReproConfig().override("nope.window", 1)

    def test_override_section_rejected(self):
        with pytest.raises(KeyError):
            ReproConfig().override("adaptation.monitor", 1)

    def test_override_bad_bool_raises(self):
        with pytest.raises(ValueError):
            ReproConfig().override("adaptation.structural_adaptation", "maybe")

    def test_apply_overrides_parses_assignments(self):
        cfg = ReproConfig().apply_overrides(
            ["adaptation.monitor.window=72", "experiment.seed = 3"])
        assert cfg.adaptation.monitor.window == 72
        assert cfg.experiment.seed == 3

    def test_apply_overrides_rejects_malformed(self):
        with pytest.raises(ValueError):
            ReproConfig().apply_overrides(["no-equals-sign"])

    def test_sections_are_the_real_config_types(self):
        """The nested sections are the subsystem dataclasses themselves."""
        cfg = ReproConfig()
        assert dataclasses.is_dataclass(cfg.adaptation.monitor)
        assert type(cfg.adaptation).__name__ == "AdaptationConfig"
        assert type(cfg.adaptation.update).__name__ == "TokenUpdateConfig"
