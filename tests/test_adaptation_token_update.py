"""Tests for token-embedding-only updates (paper Fig. 2C / Fig. 4A)."""

import numpy as np
import pytest

from repro.adaptation import TokenEmbeddingUpdater, TokenUpdateConfig


def deployed(fresh_model):
    model = fresh_model(window=4)
    model.freeze_for_deployment()
    return model


def small_batch(embedding_model, rng, n=6, window=4):
    windows = rng.normal(size=(n, window, embedding_model.frame_dim))
    labels = (np.arange(n) % 2).astype(np.int64)
    return windows, labels


class TestUpdaterGuards:
    def test_requires_deployment_freeze(self, fresh_model):
        model = fresh_model()
        with pytest.raises(ValueError):
            TokenEmbeddingUpdater(model)

    def test_rejects_trainable_weights(self, fresh_model):
        model = fresh_model()
        model.freeze_for_deployment()
        model.unfreeze()  # simulate a mistake
        with pytest.raises(ValueError):
            TokenEmbeddingUpdater(model)

    def test_batch_shape_validation(self, fresh_model, embedding_model, rng):
        model = deployed(fresh_model)
        updater = TokenEmbeddingUpdater(model)
        with pytest.raises(ValueError):
            updater.update(rng.normal(size=(3, 4, embedding_model.frame_dim)),
                           np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            updater.update(np.zeros((0, 4, embedding_model.frame_dim)),
                           np.zeros(0, dtype=np.int64))

    def test_unknown_optimizer(self, fresh_model):
        model = deployed(fresh_model)
        with pytest.raises(ValueError):
            TokenEmbeddingUpdater(model, TokenUpdateConfig(optimizer="rmsprop"))


class TestUpdateSemantics:
    def test_only_tokens_change(self, fresh_model, embedding_model, rng):
        """The paper's core constraint: model weights stay frozen, only the
        KG token embeddings move."""
        model = deployed(fresh_model)
        updater = TokenEmbeddingUpdater(model, TokenUpdateConfig(
            learning_rate=0.1, inner_steps=2))
        weights_before = {k: v.copy() for k, v in model.state_dict().items()}
        tokens_before = [t.data.copy() for t in model.token_parameters()]

        windows, labels = small_batch(embedding_model, rng)
        updater.update(windows, labels)

        for key, value in model.state_dict().items():
            np.testing.assert_allclose(value, weights_before[key],
                                       err_msg=f"weight {key} changed")
        moved = [not np.allclose(t.data, before)
                 for t, before in zip(model.token_parameters(), tokens_before)]
        assert any(moved)

    def test_distances_reported_for_every_node(self, fresh_model,
                                               embedding_model, rng):
        model = deployed(fresh_model)
        updater = TokenEmbeddingUpdater(model)
        windows, labels = small_batch(embedding_model, rng)
        result = updater.update(windows, labels)
        concept_ids = {(0, n.node_id) for n in model.kgs[0].concept_nodes()}
        assert set(result.node_distances) == concept_ids
        assert all(d >= 0 for d in result.node_distances.values())

    def test_kg_nodes_updated_in_place(self, fresh_model, embedding_model, rng):
        model = deployed(fresh_model)
        updater = TokenEmbeddingUpdater(model, TokenUpdateConfig(learning_rate=0.2))
        kg = model.kgs[0]
        before = {n.node_id: n.token_embeddings.copy() for n in kg.concept_nodes()}
        windows, labels = small_batch(embedding_model, rng)
        updater.update(windows, labels)
        changed = [not np.allclose(kg.node(nid).token_embeddings, b)
                   for nid, b in before.items()]
        assert any(changed)

    def test_lr_scale_zero_freezes(self, fresh_model, embedding_model, rng):
        model = deployed(fresh_model)
        updater = TokenEmbeddingUpdater(model)
        tokens_before = [t.data.copy() for t in model.token_parameters()]
        windows, labels = small_batch(embedding_model, rng)
        updater.update(windows, labels, lr_scale=0.0)
        for t, before in zip(model.token_parameters(), tokens_before):
            np.testing.assert_allclose(t.data, before)

    def test_lr_scale_restores_base_lr(self, fresh_model, embedding_model, rng):
        model = deployed(fresh_model)
        updater = TokenEmbeddingUpdater(model, TokenUpdateConfig(learning_rate=0.1))
        windows, labels = small_batch(embedding_model, rng)
        updater.update(windows, labels, lr_scale=0.5)
        assert updater._optimizer.lr == pytest.approx(0.1)

    def test_max_token_norm_enforced(self, fresh_model, embedding_model, rng):
        model = deployed(fresh_model)
        cfg = TokenUpdateConfig(learning_rate=5.0, inner_steps=5,
                                max_token_norm=1.5, grad_clip=100.0)
        updater = TokenEmbeddingUpdater(model, cfg)
        windows, labels = small_batch(embedding_model, rng)
        updater.update(windows, labels)
        for t in model.token_parameters():
            norms = np.linalg.norm(t.data, axis=-1)
            assert np.all(norms <= 1.5 + 1e-9)

    def test_inner_steps_move_further(self, fresh_model, embedding_model, rng):
        def total_movement(inner_steps):
            model = deployed(fresh_model)
            updater = TokenEmbeddingUpdater(model, TokenUpdateConfig(
                learning_rate=0.05, inner_steps=inner_steps))
            before = [t.data.copy() for t in model.token_parameters()]
            windows, labels = small_batch(embedding_model, rng)
            result = updater.update(windows, labels)
            return sum(result.node_distances.values())

        assert total_movement(4) > total_movement(1)

    def test_rebuild_optimizer_after_structure_change(self, fresh_model,
                                                      embedding_model, rng):
        model = deployed(fresh_model)
        updater = TokenEmbeddingUpdater(model)
        kg = model.kgs[0]
        reasoner = model.reasoners[0]
        victim = kg.nodes_at_level(2)[0]
        kg.prune_node(victim.node_id)
        kg.create_node(level=2, token_dim=embedding_model.token_dim,
                       n_tokens=2, rng=rng,
                       token_bank=embedding_model.token_table.vectors)
        reasoner.refresh_structure()
        updater.rebuild_optimizer()
        windows, labels = small_batch(embedding_model, rng)
        result = updater.update(windows, labels)  # must not crash
        assert np.isfinite(result.loss)
