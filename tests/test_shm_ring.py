"""Shared-memory ring transport tests: the byte ring itself, pickle-5
message framing, the sharded fleet's ring path (parity + counters), and
/dev/shm hygiene when workers die uncleanly.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.serving import (
    DEFAULT_RING_BYTES,
    RingBuffer,
    RingError,
    ShardedFleet,
    dumps_message,
    loads_message,
)
from test_serving_sharded import (
    INFRA,
    assert_rounds_identical,
    collect_rounds,
    make_single_fleet,
)


def shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name.lstrip('/')}")


class TestRingBuffer:
    def test_create_attach_round_trip(self):
        with RingBuffer.create(1 << 16) as ring:
            with RingBuffer.attach(ring.name) as other:
                assert ring.write(b"hello rings")
                assert bytes(other.read(11)) == b"hello rings"
            ring.unlink()
        assert not shm_exists(ring.name)

    def test_wraparound_many_cycles(self):
        """Fill/drain far past capacity: the monotonic counters wrap the
        data region while every message round-trips intact."""
        with RingBuffer.create(1 << 12) as ring:
            capacity = ring.capacity
            message = bytes(range(256)) * 3   # 768 bytes, not a divisor
            cycles = (capacity // len(message)) * 50
            for index in range(cycles):
                stamped = message + index.to_bytes(8, "little")
                assert ring.write(stamped)
                assert bytes(ring.read(len(stamped))) == stamped
            assert ring.used() == 0
            ring.unlink()

    def test_interleaved_writes_wrap_the_boundary(self):
        with RingBuffer.create(1 << 12) as ring:
            chunk = ring.capacity // 3 + 7    # forces a split write soon
            for index in range(30):
                data = bytes([index % 251]) * chunk
                assert ring.write(data)
                assert bytes(ring.read(chunk)) == data
            ring.unlink()

    def test_oversized_write_returns_false(self):
        with RingBuffer.create(1 << 12) as ring:
            assert not ring.write(b"\x00" * (ring.capacity + 1))
            # A full ring refuses further writes but never corrupts.
            assert ring.write(b"\x01" * ring.capacity)
            assert not ring.write(b"x")
            assert bytes(ring.read(ring.capacity)) == b"\x01" * ring.capacity
            assert ring.write(b"x")
            ring.unlink()

    def test_read_past_unread_is_ring_error(self):
        with RingBuffer.create(1 << 12) as ring:
            ring.write(b"abc")
            with pytest.raises(RingError, match="desynchronized"):
                ring.read(4)
            ring.unlink()

    def test_closed_ring_refuses_io(self):
        ring = RingBuffer.create(1 << 12)
        ring.close()
        with pytest.raises(RingError, match="closed"):
            ring.write(b"x")
        with pytest.raises(RingError, match="closed"):
            ring.read(1)
        ring.unlink()

    def test_unlink_is_owner_only_and_idempotent(self):
        ring = RingBuffer.create(1 << 12)
        peer = RingBuffer.attach(ring.name)
        peer.unlink()                      # non-owner: no-op
        assert shm_exists(ring.name)
        peer.close()
        ring.close()
        ring.unlink()
        ring.unlink()                      # second unlink: no-op
        assert not shm_exists(ring.name)


class TestMessageFraming:
    def test_numpy_out_of_band_round_trip(self):
        rng = np.random.default_rng(7)
        message = ("ok", {"scores": rng.normal(size=(4, 6)),
                          "meta": [1, "two"]})
        blob = dumps_message(message)
        kind, payload = loads_message(bytearray(blob))
        assert kind == "ok" and payload["meta"] == [1, "two"]
        np.testing.assert_array_equal(payload["scores"],
                                      message[1]["scores"])
        payload["scores"][0, 0] = -1.0     # decoded arrays are writable

    def test_ring_to_message_round_trip(self):
        message = {"windows": np.arange(24.0).reshape(2, 3, 4)}
        with RingBuffer.create(1 << 16) as ring:
            blob = dumps_message(message)
            assert ring.write(blob)
            decoded = loads_message(ring.read(len(blob)))
            np.testing.assert_array_equal(decoded["windows"],
                                          message["windows"])
            ring.unlink()

    @pytest.mark.parametrize("blob", [
        b"",                                   # shorter than the count
        b"\x00\x00\x00\x00",                   # zero segments
        b"\xff\xff\xff\xff",                   # absurd segment count
        dumps_message({"a": 1})[:-2],          # truncated payload
        dumps_message({"a": 1}) + b"xx",       # trailing bytes
    ])
    def test_malformed_blobs_raise_ring_error(self, blob):
        with pytest.raises(RingError):
            loads_message(blob)

    def test_undecodable_pickle_is_ring_error(self):
        blob = bytearray(dumps_message({"a": 1}))
        blob[-1] ^= 0xFF                       # corrupt the pickle tail
        with pytest.raises(RingError, match="undecodable"):
            loads_message(bytes(blob))


class TestShardedRingTransport:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_parity_over_the_ring_path(self, fresh_model, frame_generator,
                                       shards):
        """Sharded serving over shared-memory rings stays bit-identical
        to the single-process fleet at every shard count — and actually
        used the rings (shm transport, zero pipe fallbacks)."""
        single = make_single_fleet(fresh_model, frame_generator, streams=4)
        reference = collect_rounds(single, max_rounds=2)
        single = make_single_fleet(fresh_model, frame_generator, streams=4)
        with ShardedFleet.from_fleet(single, shards, infra=INFRA) as sharded:
            rounds = collect_rounds(sharded, max_rounds=2)
            stats = sharded.transport_stats()
        assert_rounds_identical(reference, rounds)
        assert stats["transport"] == "shm"
        assert stats["ring_bytes"] == DEFAULT_RING_BYTES
        assert stats["shm_messages"] > 0
        assert stats["pipe_fallbacks"] == 0

    def test_oversized_round_falls_back_to_the_pipe(self, fresh_model,
                                                    frame_generator):
        """A ring too small for a round's payload is a latency knob, not
        a correctness cliff: the oversized message rides the pipe and
        scores stay bit-identical.  (The kernel page-rounds a ring
        request up, so overflow it with a window batch bigger than any
        page-rounded minimum ring.)"""
        single = make_single_fleet(fresh_model, frame_generator, streams=3)
        frame_dim = single.slots[0].stream.batch(0).windows.shape[-1]
        batches = 2 + (1 << 16) // (4 * frame_dim * 8)  # > 64 KiB payload
        arrivals = {
            name: np.linspace(0.0, 1.0, batches * 4 * frame_dim)
            .reshape(batches, 4, frame_dim)
            for name in list(single.names)[:2]}
        expected = single.score_only(arrivals)
        single = make_single_fleet(fresh_model, frame_generator, streams=3)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA,
                                     ring_bytes=1024) as sharded:
            got = sharded.score_only(arrivals)
            stats = sharded.transport_stats()
        assert set(got) == set(expected)
        for name in got:
            np.testing.assert_array_equal(got[name], expected[name])
        assert stats["transport"] == "shm"
        assert stats["pipe_fallbacks"] > 0

    def test_ring_bytes_zero_is_pure_pipe(self, fresh_model,
                                          frame_generator):
        single = make_single_fleet(fresh_model, frame_generator, streams=3)
        reference = collect_rounds(single, max_rounds=2)
        single = make_single_fleet(fresh_model, frame_generator, streams=3)
        with ShardedFleet.from_fleet(single, 2, infra=INFRA,
                                     ring_bytes=0) as sharded:
            rounds = collect_rounds(sharded, max_rounds=2)
            stats = sharded.transport_stats()
        assert_rounds_identical(reference, rounds)
        assert stats["transport"] == "pipe"
        assert stats["shm_messages"] == 0

    def test_close_unlinks_every_segment(self, fresh_model,
                                         frame_generator):
        single = make_single_fleet(fresh_model, frame_generator, streams=3)
        sharded = ShardedFleet.from_fleet(single, 2, infra=INFRA)
        names = [ring.name
                 for ring in (*sharded._rings_out, *sharded._rings_in)]
        assert names and all(shm_exists(name) for name in names)
        sharded.close()
        assert not any(shm_exists(name) for name in names)

    def test_worker_crash_leaves_no_segments(self, fresh_model,
                                             frame_generator):
        """SIGKILL a worker mid-run (it can never close its side), then
        close(): the parent still unlinks every ring segment."""
        single = make_single_fleet(fresh_model, frame_generator, streams=4)
        sharded = ShardedFleet.from_fleet(single, 2, infra=INFRA)
        names = [ring.name
                 for ring in (*sharded._rings_out, *sharded._rings_in)]
        collect_rounds(sharded, max_rounds=1)
        victim = sharded._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        deadline = time.monotonic() + 10
        while victim.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not victim.is_alive()
        sharded.close()
        assert not any(shm_exists(name) for name in names)
