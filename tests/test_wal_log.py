"""Write-ahead log tests: framing, group commit, rotation, repair.

The load-bearing property is the torn-write sweep: truncating the log
mid-frame at *every byte offset* of the final record must recover the
longest valid prefix on open — never an error, never a lost earlier
record, never a phantom record.  Plus: seq continuity across reopen,
segment rotation and truncation, group-commit fsync accounting, and the
corruption-before-the-tail case that must NOT be silently repaired.
"""

import json
import struct
import zlib

import pytest

from repro.errors import DurabilityError, WalCorruptionError
from repro.metrics import MetricsRegistry
from repro.wal import FRAME_HEADER, WalConfig, WriteAheadLog


def append_n(wal, count, start=0, sync=False):
    """Append ``count`` small ingest-shaped records; returns their seqs."""
    return [wal.append({"kind": "ingest", "stream": f"s{start + i}",
                        "windows": "x" * 8}, sync=sync)
            for i in range(count)]


def replay_streams(wal_dir):
    with WriteAheadLog(wal_dir) as wal:
        return [record["stream"] for record in wal.replay()]


class TestFraming:
    def test_round_trip_and_seq_assignment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            seqs = append_n(wal, 5)
            assert seqs == [0, 1, 2, 3, 4]
            wal.flush()                 # replay reads the on-disk files
            records = list(wal.replay())
        assert [r["seq"] for r in records] == seqs
        assert [r["stream"] for r in records] == [f"s{i}" for i in range(5)]

    def test_seq_strictly_increases_across_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, 3)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.next_seq == 3
            assert append_n(wal, 2, start=3) == [3, 4]
            wal.flush()
            assert [r["seq"] for r in wal.replay()] == [0, 1, 2, 3, 4]

    def test_record_stamped_in_place(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            record = {"kind": "ingest", "stream": "a", "windows": ""}
            seq = wal.append(record)
            assert record["seq"] == seq

    def test_frame_bytes_on_disk(self, tmp_path):
        """The on-disk frame really is [u32 len][u32 crc32][payload]."""
        with WriteAheadLog(tmp_path) as wal:
            wal.append({"kind": "ingest", "stream": "a", "windows": ""})
            path = wal.segment_paths[-1]
        data = path.read_bytes()
        length, crc = FRAME_HEADER.unpack_from(data, 0)
        payload = data[FRAME_HEADER.size:FRAME_HEADER.size + length]
        assert len(data) == FRAME_HEADER.size + length
        assert zlib.crc32(payload) == crc
        assert json.loads(payload)["stream"] == "a"


class TestGroupCommit:
    def test_fsync_batch_bound(self, tmp_path):
        metrics = MetricsRegistry()
        with WriteAheadLog(tmp_path,
                           WalConfig(fsync_batch=4,
                                     fsync_interval_ms=10_000.0),
                           metrics=metrics) as wal:
            append_n(wal, 3)
            assert metrics.counter("wal.fsyncs").value == 0
            append_n(wal, 1, start=3)   # 4th pending append trips the batch
            assert metrics.counter("wal.fsyncs").value == 1

    def test_interval_zero_syncs_every_append(self, tmp_path):
        metrics = MetricsRegistry()
        with WriteAheadLog(tmp_path,
                           WalConfig(fsync_batch=1024,
                                     fsync_interval_ms=0.0),
                           metrics=metrics) as wal:
            append_n(wal, 3)
            assert metrics.counter("wal.fsyncs").value == 3

    def test_sync_append_and_flush(self, tmp_path):
        metrics = MetricsRegistry()
        with WriteAheadLog(tmp_path,
                           WalConfig(fsync_batch=1024,
                                     fsync_interval_ms=10_000.0),
                           metrics=metrics) as wal:
            append_n(wal, 2)
            assert metrics.counter("wal.fsyncs").value == 0
            append_n(wal, 1, start=2, sync=True)
            assert metrics.counter("wal.fsyncs").value == 1
            wal.flush()                 # nothing pending -> no extra fsync
            assert metrics.counter("wal.fsyncs").value == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalConfig(fsync_batch=0)
        with pytest.raises(ValueError):
            WalConfig(fsync_interval_ms=-1.0)
        with pytest.raises(ValueError):
            WalConfig(max_segment_bytes=512)


class TestRotationAndTruncation:
    def test_rotation_at_max_segment_bytes(self, tmp_path):
        with WriteAheadLog(tmp_path,
                           WalConfig(max_segment_bytes=1024)) as wal:
            append_n(wal, 40)           # ~80-byte frames -> several segments
            assert wal.segment_count > 1
            wal.flush()
            streams = [r["stream"] for r in wal.replay()]
        assert streams == [f"s{i}" for i in range(40)]
        # Reopen spans segments identically.
        assert replay_streams(tmp_path) == streams

    def test_truncate_below_deletes_closed_segments_only(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, 3)
            wal.rotate()
            append_n(wal, 3, start=3)
            wal.rotate()
            append_n(wal, 3, start=6)
            assert wal.segment_count == 3
            # seq 3 still needed: only the first segment (seqs 0-2) goes.
            assert wal.truncate_below(3) == 1
            assert wal.segment_count == 2
            # Everything closed is now deletable; the active segment stays.
            assert wal.truncate_below(10_000) == 1
            assert wal.segment_count == 1
            wal.flush()
            assert [r["seq"] for r in wal.replay()] == [6, 7, 8]

    def test_truncate_reclaims_empty_rotation_artifacts(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.rotate()
            wal.rotate()
            append_n(wal, 1)
            assert wal.truncate_below(0) == 2

    def test_closed_log_refuses_use(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        wal.close()                     # idempotent
        with pytest.raises(DurabilityError, match="closed"):
            wal.append({"kind": "ingest", "stream": "a", "windows": ""})
        with pytest.raises(DurabilityError, match="closed"):
            wal.flush()


class TestTornTailRepair:
    """A SIGKILL mid-append tears the final frame; open() must truncate
    back to the longest valid prefix, wherever the tear landed."""

    @staticmethod
    def write_log(tmp_path, records=4):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, records)
            path = wal.segment_paths[-1]
        return path

    def test_every_byte_offset_of_the_final_record(self, tmp_path):
        """The satellite sweep: for every truncation point inside the
        final frame — cutting the header, the payload, or leaving the
        frame out entirely — open() recovers exactly the first N-1
        records and reports the torn bytes."""
        path = self.write_log(tmp_path, records=4)
        data = path.read_bytes()
        offsets = []
        cursor = 0
        while cursor < len(data):
            offsets.append(cursor)
            length, = struct.unpack_from("<I", data, cursor)
            cursor += FRAME_HEADER.size + length
        last_start = offsets[-1]
        assert len(offsets) == 4 and cursor == len(data)

        for cut in range(last_start, len(data)):
            path.write_bytes(data[:cut])
            wal = WriteAheadLog(tmp_path)
            try:
                assert wal.repaired_bytes == cut - last_start
                records = list(wal.replay())
                assert [r["seq"] for r in records] == [0, 1, 2]
                assert wal.next_seq == 3
                assert path.stat().st_size == last_start
            finally:
                wal.close()
            path.write_bytes(data)      # restore for the next cut

    def test_crc_flip_in_final_frame_truncates_it(self, tmp_path):
        path = self.write_log(tmp_path, records=3)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF                # corrupt the last payload byte
        path.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path) as wal:
            assert wal.repaired_bytes > 0
            assert [r["seq"] for r in wal.replay()] == [0, 1]
            assert wal.next_seq == 2

    def test_repair_counts_in_metrics(self, tmp_path):
        path = self.write_log(tmp_path, records=2)
        path.write_bytes(path.read_bytes()[:-3])
        metrics = MetricsRegistry()
        with WriteAheadLog(tmp_path, metrics=metrics) as wal:
            assert wal.repaired_bytes == \
                metrics.counter("wal.torn_bytes_truncated").value > 0

    def test_appends_continue_after_repair(self, tmp_path):
        path = self.write_log(tmp_path, records=3)
        path.write_bytes(path.read_bytes()[:-5])
        with WriteAheadLog(tmp_path) as wal:
            assert wal.next_seq == 2
            append_n(wal, 1, start=9, sync=True)
            assert [r["seq"] for r in wal.replay()] == [0, 1, 2]
            assert [r["stream"] for r in wal.replay()][-1] == "s9"


class TestCorruptionBeforeTheTail:
    """A bad frame anywhere except the final segment's tail is damaged
    history, not a torn write — it must raise, never silently repair."""

    def test_corrupt_non_final_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, 3)
            wal.rotate()
            append_n(wal, 3, start=3)
            first = wal.segment_paths[0]
        data = bytearray(first.read_bytes())
        data[FRAME_HEADER.size] ^= 0xFF  # flip a byte of the first payload
        first.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="not the final"):
            WriteAheadLog(tmp_path)

    def test_truncated_non_final_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            append_n(wal, 3)
            wal.rotate()
            append_n(wal, 1, start=3)
            first = wal.segment_paths[0]
        first.write_bytes(first.read_bytes()[:-4])
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path)

    def test_valid_json_without_seq_is_corruption(self, tmp_path):
        path = tmp_path / "00000001.wal"
        payload = json.dumps(["not", "a", "record"]).encode()
        path.write_bytes(FRAME_HEADER.pack(len(payload),
                                           zlib.crc32(payload)) + payload)
        # The frame is the final segment's only frame, so open() treats a
        # CRC-valid-but-undecodable record as corruption, not a torn tail.
        with pytest.raises(WalCorruptionError, match="seq"):
            WriteAheadLog(tmp_path)

    def test_non_numeric_segment_name_rejected(self, tmp_path):
        (tmp_path / "bogus.wal").write_bytes(b"")
        with pytest.raises(DurabilityError, match="non-numeric"):
            WriteAheadLog(tmp_path)
