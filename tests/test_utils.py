"""Tests for deterministic RNG utilities and reporting helpers."""

import numpy as np
import pytest

from repro.eval import ascii_series
from repro.utils import derive_rng, seed_everything, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, "b") == stable_hash("a", 1, "b")

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_in_63_bit_range(self):
        for parts in [("x",), ("y", 2), (0,)]:
            value = stable_hash(*parts)
            assert 0 <= value < 2**63

    def test_int_str_distinction_is_not_required(self):
        # ints are stringified; "1" and 1 hash identically by design.
        assert stable_hash(1) == stable_hash("1")


class TestDeriveRng:
    def test_same_namespace_same_stream(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "x").random(5)
        np.testing.assert_allclose(a, b)

    def test_different_namespaces_decorrelated(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.allclose(a, b)

    def test_seed_changes_stream(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(8, "x").random(5)
        assert not np.allclose(a, b)

    def test_seed_everything_returns_generator(self):
        rng = seed_everything(3)
        assert isinstance(rng, np.random.Generator)
        first = np.random.random()
        seed_everything(3)
        assert np.random.random() == pytest.approx(first)


class TestAsciiSeries:
    def test_width_respected(self):
        for line in ascii_series([0.3, 0.7], width=20):
            bar = line.split(" ")[0]
            assert len(bar) == 20

    def test_values_rendered(self):
        lines = ascii_series([0.25], width=8)
        assert "0.250" in lines[0]

    def test_clipping_out_of_range(self):
        lines = ascii_series([-0.5, 1.5], width=10)
        assert lines[0].startswith("." * 10)
        assert lines[1].startswith("#" * 10)

    def test_custom_range(self):
        lines = ascii_series([5.0], width=10, low=0.0, high=10.0)
        assert lines[0].startswith("#" * 5 + "." * 5)
