"""Tests for the BPE tokenizer (training, round trips, persistence)."""

import pytest

from repro.embedding import BPETokenizer, build_domain_corpus


@pytest.fixture(scope="module")
def tokenizer():
    return BPETokenizer().train(build_domain_corpus(), num_merges=200)


class TestTraining:
    def test_learns_merges(self, tokenizer):
        assert len(tokenizer.merges) > 50
        assert tokenizer.vocab_size > 100

    def test_special_tokens_first(self, tokenizer):
        assert tokenizer.id_to_token[0] == BPETokenizer.PAD
        assert tokenizer.id_to_token[1] == BPETokenizer.UNK

    def test_deterministic_training(self):
        corpus = build_domain_corpus()
        a = BPETokenizer().train(corpus, num_merges=50)
        b = BPETokenizer().train(corpus, num_merges=50)
        assert a.merges == b.merges
        assert a.id_to_token == b.id_to_token

    def test_zero_merges_gives_char_level(self):
        tok = BPETokenizer().train(["hello world"], num_merges=0)
        assert tok.decode(tok.encode("hello")) == "hello"

    def test_negative_merges_raises(self):
        with pytest.raises(ValueError):
            BPETokenizer().train(["x"], num_merges=-1)

    def test_merges_capped_by_frequency(self):
        # A corpus where nothing repeats can't support many merges.
        tok = BPETokenizer().train(["ab", "cd", "ef"], num_merges=100)
        assert len(tok.merges) < 10


class TestEncodeDecode:
    @pytest.mark.parametrize("text", [
        "sneaky", "firearm", "pointing weapon", "smoke plume",
        "the camera shows a person running", "gun drawn",
    ])
    def test_roundtrip(self, tokenizer, text):
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_unknown_characters_map_to_unk(self, tokenizer):
        ids = tokenizer.encode("日本語")
        unk = tokenizer.token_to_id[BPETokenizer.UNK]
        assert all(i == unk for i in ids)

    def test_case_normalization(self, tokenizer):
        assert tokenizer.encode("FIREARM") == tokenizer.encode("firearm")

    def test_common_words_compress_below_char_level(self, tokenizer):
        # Frequent domain words should compress well under BPE.
        assert len(tokenizer.encode("firearm")) < len("firearm")
        assert len(tokenizer.encode("sneaky")) < len("sneaky")

    def test_decode_token_strips_eow(self, tokenizer):
        for token_id in range(2, min(tokenizer.vocab_size, 50)):
            piece = tokenizer.decode_token(token_id)
            assert "</w>" not in piece

    def test_decode_token_out_of_range(self, tokenizer):
        with pytest.raises(IndexError):
            tokenizer.decode_token(tokenizer.vocab_size)

    def test_decode_skips_specials(self, tokenizer):
        ids = [0, 1] + tokenizer.encode("sneaky")
        assert tokenizer.decode(ids) == "sneaky"

    def test_tokenize_returns_strings(self, tokenizer):
        tokens = tokenizer.tokenize("pointing weapon")
        assert all(isinstance(t, str) for t in tokens)
        assert len(tokens) >= 2  # at least one per word


class TestPersistence:
    def test_save_load_roundtrip(self, tokenizer, tmp_path):
        path = tmp_path / "bpe.json"
        tokenizer.save(path)
        loaded = BPETokenizer.load(path)
        assert loaded.merges == tokenizer.merges
        assert loaded.id_to_token == tokenizer.id_to_token
        text = "surveillance captured broken glass"
        assert loaded.encode(text) == tokenizer.encode(text)
