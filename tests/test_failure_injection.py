"""Failure-injection tests: the deployment must degrade gracefully.

An edge device cannot crash: these tests feed the adaptation stack
degenerate inputs — constant streams, all-anomalous streams, extreme frame
values, minimal KGs — and assert the system stays finite, valid, and
non-destructive.
"""

import numpy as np
import pytest

from repro.adaptation import (
    AdaptationConfig,
    AnomalyScoreMonitor,
    ContinuousAdaptationController,
    MonitorConfig,
)
from repro.kg import KGStructureError, ReasoningKG


class TestDegenerateStreams:
    def _controller(self, fresh_model, embedding_model, rng):
        model = fresh_model(window=4)
        anchors = rng.normal(size=(8, 4, embedding_model.frame_dim))
        controller = ContinuousAdaptationController(
            model, AdaptationConfig(
                monitor=MonitorConfig(window=12, lag=6)),
            normal_anchor_windows=anchors)
        return model, controller

    def test_constant_stream_never_adapts(self, fresh_model, embedding_model, rng):
        """Identical batches -> zero mean drift -> no updates, ever."""
        model, controller = self._controller(fresh_model, embedding_model, rng)
        batch = rng.normal(size=(6, 4, embedding_model.frame_dim))
        for _ in range(8):
            controller.process_batch(batch.copy())
        assert controller.update_count == 0

    def test_extreme_frame_values_stay_finite(self, fresh_model,
                                              embedding_model, rng):
        model, controller = self._controller(fresh_model, embedding_model, rng)
        huge = 1e6 * rng.normal(size=(6, 4, embedding_model.frame_dim))
        log = controller.process_batch(huge)
        assert np.all(np.isfinite(log.scores))
        assert np.all((log.scores >= 0) & (log.scores <= 1))

    def test_zero_frames_stay_finite(self, fresh_model, embedding_model, rng):
        model, controller = self._controller(fresh_model, embedding_model, rng)
        log = controller.process_batch(
            np.zeros((4, 4, embedding_model.frame_dim)))
        assert np.all(np.isfinite(log.scores))

    def test_single_window_batches(self, fresh_model, embedding_model, rng):
        model, controller = self._controller(fresh_model, embedding_model, rng)
        for _ in range(20):
            log = controller.process_batch(
                rng.normal(size=(1, 4, embedding_model.frame_dim)))
        assert len(controller.logs) == 20

    def test_adaptation_never_corrupts_kg(self, fresh_model, embedding_model,
                                          frame_generator, rng):
        """Whatever the stream does, the KG invariants must hold after."""
        model, controller = self._controller(fresh_model, embedding_model, rng)
        for step in range(10):
            cls = "Stealing" if step < 5 else "Explosion"
            windows = np.stack([
                np.stack([frame_generator.anomaly_frame(cls, rng)
                          for _ in range(4)]) for _ in range(8)])
            controller.process_batch(windows)
        for kg in model.kgs:
            kg.validate()
            assert kg.tokens_initialized()


class TestMonitorEdgeCases:
    def test_all_identical_scores(self):
        monitor = AnomalyScoreMonitor(MonitorConfig(window=8, lag=4, min_k=0))
        monitor.observe(np.full(20, 0.5))
        selection = monitor.select()
        assert selection.k == 0
        assert np.isfinite(selection.delta_m)

    def test_nan_free_with_tiny_window(self):
        monitor = AnomalyScoreMonitor(MonitorConfig(window=2, lag=1))
        monitor.observe([0.1])
        selection = monitor.select()
        assert np.isfinite(selection.window_mean)

    def test_scores_at_bounds(self):
        monitor = AnomalyScoreMonitor(
            MonitorConfig(window=4, lag=2, trigger_threshold=0.01, min_k=0))
        monitor.observe(np.array([1.0, 1.0, 1.0, 1.0]))
        monitor.observe(np.array([0.0, 0.0, 0.0, 0.0]))
        selection = monitor.select()
        assert selection.k == 2  # capped at max_k_fraction * 4


class TestMinimalKGs:
    def test_depth_one_single_node(self, embedding_model, rng):
        """The smallest legal KG still reasons end to end."""
        from repro.gnn import HierarchicalGNN, KGReasoner
        from repro.utils import derive_rng

        kg = ReasoningKG(mission="m", depth=1)
        kg.add_node("only concept", level=1)
        kg.attach_terminals()
        kg.initialize_tokens(embedding_model)
        gnn = HierarchicalGNN(depth=1, input_dim=embedding_model.joint_dim,
                              hidden_dim=4, rng=derive_rng(0, "tiny"))
        reasoner = KGReasoner(kg, embedding_model, gnn)
        out = reasoner(rng.normal(size=(2, embedding_model.frame_dim)))
        assert out.shape == (2, 4)
        assert np.all(np.isfinite(out.numpy()))

    def test_cannot_prune_last_node_of_level(self, embedding_model):
        kg = ReasoningKG(mission="m", depth=1)
        node_id = kg.add_node("only concept", level=1)
        kg.attach_terminals()
        # Direct prune works structurally but the structural adapter's
        # min-population guard is the deployment-side protection; here we
        # verify validate() still passes after prune+create cycles keep
        # the level populated.
        with pytest.raises(KGStructureError):
            kg.prune_node(kg.sensor_id)
