"""Tests for the hierarchical reasoning KG structure and its invariants."""

import numpy as np
import pytest

from repro.kg import KGStructureError, ReasoningKG, UnknownNodeError


def build_small_kg() -> ReasoningKG:
    kg = ReasoningKG(mission="Stealing", depth=2)
    a = kg.add_node("sneaky", level=1)
    b = kg.add_node("grabbing", level=1)
    c = kg.add_node("quick snatch", level=2)
    d = kg.add_node("pocketing object", level=2)
    kg.add_edge(a, c)
    kg.add_edge(b, c)
    kg.add_edge(b, d)
    kg.attach_terminals()
    return kg


class TestConstruction:
    def test_depth_validation(self):
        with pytest.raises(KGStructureError):
            ReasoningKG(mission="x", depth=0)

    def test_level_bounds(self):
        kg = ReasoningKG(mission="x", depth=2)
        with pytest.raises(KGStructureError):
            kg.add_node("too deep", level=3)
        with pytest.raises(KGStructureError):
            kg.add_node("too shallow", level=0)

    def test_duplicate_concept_rejected(self):
        kg = ReasoningKG(mission="x", depth=2)
        kg.add_node("sneaky", level=1)
        with pytest.raises(KGStructureError):
            kg.add_node("sneaky", level=2)

    def test_edge_must_connect_consecutive_levels(self):
        kg = ReasoningKG(mission="x", depth=3)
        a = kg.add_node("a", level=1)
        c = kg.add_node("c", level=3)
        with pytest.raises(KGStructureError):
            kg.add_edge(a, c)

    def test_unknown_node_raises(self):
        kg = ReasoningKG(mission="x", depth=1)
        with pytest.raises(UnknownNodeError):
            kg.node(99)


class TestTerminals:
    def test_sensor_connects_to_level1(self):
        kg = build_small_kg()
        successors = kg.successors(kg.sensor_id)
        level1_ids = [n.node_id for n in kg.nodes_at_level(1)]
        assert successors == sorted(level1_ids)

    def test_last_level_connects_to_embedding(self):
        kg = build_small_kg()
        preds = kg.predecessors(kg.embedding_id)
        last_ids = [n.node_id for n in kg.nodes_at_level(2) if n.is_concept]
        assert preds == sorted(last_ids)

    def test_double_attach_raises(self):
        kg = build_small_kg()
        with pytest.raises(KGStructureError):
            kg.attach_terminals()

    def test_terminal_flags(self):
        kg = build_small_kg()
        assert kg.node(kg.sensor_id).is_sensor
        assert kg.node(kg.embedding_id).is_embedding
        assert not kg.node(kg.sensor_id).is_concept

    def test_validate_passes(self):
        build_small_kg().validate()


class TestQueries:
    def test_edges_at_level(self):
        kg = build_small_kg()
        level2_edges = kg.edges_at_level(2)
        assert len(level2_edges) == 3
        for _, dst in level2_edges:
            assert kg.node(dst).level == 2

    def test_in_out_degree(self):
        kg = build_small_kg()
        c = next(n for n in kg.concept_nodes() if n.text == "quick snatch")
        assert kg.in_degree(c.node_id) == 2
        assert kg.out_degree(c.node_id) == 1  # to embedding node

    def test_has_concept(self):
        kg = build_small_kg()
        assert kg.has_concept("sneaky")
        assert not kg.has_concept("firearm")

    def test_summary_mentions_levels(self):
        text = build_small_kg().summary()
        assert "L0" in text and "L3" in text


class TestTokenInitialization:
    def test_initialize_tokens(self, embedding_model):
        kg = build_small_kg()
        assert not kg.tokens_initialized()
        kg.initialize_tokens(embedding_model)
        assert kg.tokens_initialized()
        for node in kg.concept_nodes():
            assert node.token_ids
            assert node.token_embeddings.shape == (
                len(node.token_ids), embedding_model.token_dim)

    def test_tokens_are_copies(self, embedding_model):
        """Mutating a node's tokens must not corrupt the frozen vocab table."""
        kg = build_small_kg()
        kg.initialize_tokens(embedding_model)
        node = kg.concept_nodes()[0]
        before = embedding_model.token_table.vectors.copy()
        node.token_embeddings += 100.0
        np.testing.assert_allclose(embedding_model.token_table.vectors, before)


class TestStructuralOps:
    def test_prune_removes_node_and_edges(self):
        kg = build_small_kg()
        target = next(n for n in kg.concept_nodes() if n.text == "quick snatch")
        n_edges = kg.num_edges
        kg.prune_node(target.node_id)
        assert not kg.has_concept("quick snatch")
        assert kg.num_edges == n_edges - 3  # two in + one out
        kg.validate()

    def test_prune_terminal_raises(self):
        kg = build_small_kg()
        with pytest.raises(KGStructureError):
            kg.prune_node(kg.sensor_id)

    def test_create_node_random(self, rng):
        kg = build_small_kg()
        node_id = kg.create_node(level=2, token_dim=8, n_tokens=2, rng=rng)
        node = kg.node(node_id)
        assert node.level == 2
        assert node.token_embeddings.shape == (2, 8)
        assert kg.in_degree(node_id) >= 1  # participates in reasoning
        kg.validate()

    def test_create_node_with_token_bank(self, rng):
        kg = build_small_kg()
        bank = rng.normal(size=(20, 8))
        node_id = kg.create_node(level=1, token_dim=8, n_tokens=3, rng=rng,
                                 token_bank=bank, bank_noise=0.0)
        node = kg.node(node_id)
        # Every token row must be a bank row (noise disabled).
        for row in node.token_embeddings:
            assert any(np.allclose(row, bank_row) for bank_row in bank)

    def test_create_node_bank_dim_mismatch(self, rng):
        kg = build_small_kg()
        with pytest.raises(ValueError):
            kg.create_node(level=1, token_dim=8, n_tokens=2, rng=rng,
                           token_bank=rng.normal(size=(10, 5)))

    def test_create_node_level_bounds(self, rng):
        kg = build_small_kg()
        with pytest.raises(KGStructureError):
            kg.create_node(level=0, token_dim=8, n_tokens=1, rng=rng)

    def test_prune_then_create_keeps_validity(self, rng):
        kg = build_small_kg()
        victim = kg.nodes_at_level(1)[0]
        kg.prune_node(victim.node_id)
        kg.create_node(level=1, token_dim=8, n_tokens=2, rng=rng)
        kg.validate()

    def test_validate_catches_duplicate_texts(self):
        kg = build_small_kg()
        # Bypass add_node validation to simulate corruption.
        node = kg.concept_nodes()[0]
        other = kg.concept_nodes()[1]
        other.text = node.text
        with pytest.raises(KGStructureError):
            kg.validate()
