"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adaptation import AnomalyScoreMonitor, MonitorConfig
from repro.embedding import BPETokenizer
from repro.eval import roc_auc
from repro.kg import ReasoningKG
from repro.nn import Tensor

# ----------------------------------------------------------------------
# Autodiff engine properties
# ----------------------------------------------------------------------
small_arrays = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1,
    max_size=16)


class TestTensorProperties:
    @given(small_arrays)
    def test_softmax_is_distribution(self, values):
        s = Tensor(np.array(values)).softmax().numpy()
        assert np.all(s >= 0)
        assert s.sum() == pytest.approx(1.0, abs=1e-9)

    @given(small_arrays, small_arrays)
    def test_addition_commutes(self, a, b):
        n = min(len(a), len(b))
        x, y = Tensor(np.array(a[:n])), Tensor(np.array(b[:n]))
        np.testing.assert_allclose((x + y).numpy(), (y + x).numpy())

    @given(small_arrays)
    def test_sum_gradient_is_ones(self, values):
        t = Tensor(np.array(values), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(len(values)))

    @given(small_arrays)
    def test_mul_gradient_product_rule(self, values):
        t = Tensor(np.array(values), requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * np.array(values), atol=1e-9)

    @given(small_arrays)
    def test_elu_continuous_and_bounded_below(self, values):
        out = Tensor(np.array(values)).elu().numpy()
        assert np.all(out > -1.0 - 1e-12)

    @given(small_arrays)
    def test_detach_shares_data(self, values):
        t = Tensor(np.array(values), requires_grad=True)
        d = t.detach()
        np.testing.assert_allclose(d.numpy(), t.numpy())
        assert not d.requires_grad


# ----------------------------------------------------------------------
# BPE round-trip property
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_tokenizer():
    corpus = ["abc abd bcd", "the cat sat on the mat", "anomaly detection",
              "edge device camera", "0 1 2 3 4 5 6 7 8 9",
              "efghijklmnopqrstuvwxyz"] * 3
    return BPETokenizer().train(corpus, num_merges=40)


words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1,
                max_size=12)
phrases = st.lists(words, min_size=1, max_size=5).map(" ".join)


class TestBPEProperties:
    @given(phrases)
    @settings(max_examples=60)
    def test_roundtrip_any_alnum_phrase(self, tiny_tokenizer, text):
        assert tiny_tokenizer.decode(tiny_tokenizer.encode(text)) == text

    @given(phrases)
    @settings(max_examples=30)
    def test_encode_ids_in_vocab(self, tiny_tokenizer, text):
        ids = tiny_tokenizer.encode(text)
        assert all(0 <= i < tiny_tokenizer.vocab_size for i in ids)


# ----------------------------------------------------------------------
# Monitor properties
# ----------------------------------------------------------------------
score_lists = st.lists(st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False), min_size=24, max_size=60)


class TestMonitorProperties:
    @given(score_lists)
    @settings(max_examples=50)
    def test_selection_partitions_window(self, scores):
        monitor = AnomalyScoreMonitor(MonitorConfig(window=12, lag=6, min_k=0))
        monitor.observe(np.array(scores))
        selection = monitor.select()
        n = monitor.current_window().size
        combined = sorted(np.concatenate([selection.anomalous_indices,
                                          selection.normal_indices]).tolist())
        assert combined == list(range(n))

    @given(score_lists)
    @settings(max_examples=50)
    def test_k_bounded_by_fraction(self, scores):
        cfg = MonitorConfig(window=12, lag=6, min_k=0, max_k_fraction=0.5)
        monitor = AnomalyScoreMonitor(cfg)
        monitor.observe(np.array(scores))
        selection = monitor.select()
        assert selection.k <= int(monitor.current_window().size * 0.5)

    @given(score_lists)
    @settings(max_examples=50)
    def test_selected_scores_dominate_rest(self, scores):
        monitor = AnomalyScoreMonitor(MonitorConfig(window=12, lag=6, min_k=2))
        monitor.observe(np.array(scores))
        selection = monitor.select()
        if selection.k and selection.normal_indices.size:
            window = monitor.current_window()
            assert window[selection.anomalous_indices].min() >= \
                window[selection.normal_indices].max() - 1e-12


# ----------------------------------------------------------------------
# ROC AUC properties
# ----------------------------------------------------------------------
class TestAucProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=4, max_size=40),
           st.data())
    @settings(max_examples=50)
    def test_auc_in_unit_interval(self, scores, data):
        labels = data.draw(st.lists(st.integers(0, 1), min_size=len(scores),
                                    max_size=len(scores)))
        labels = np.array(labels)
        if labels.min() == labels.max():
            return  # needs both classes
        auc = roc_auc(np.array(scores), labels)
        assert 0.0 <= auc <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=4, max_size=40),
           st.data())
    @settings(max_examples=50)
    def test_auc_complement_under_label_flip(self, scores, data):
        labels = data.draw(st.lists(st.integers(0, 1), min_size=len(scores),
                                    max_size=len(scores)))
        labels = np.array(labels)
        if labels.min() == labels.max():
            return
        scores = np.array(scores)
        assert roc_auc(scores, labels) == pytest.approx(
            1.0 - roc_auc(-scores, labels), abs=1e-9)


# ----------------------------------------------------------------------
# KG structural invariants under random operation sequences
# ----------------------------------------------------------------------
class TestKGInvariantProperties:
    @given(st.lists(st.sampled_from(["prune", "create"]), min_size=1,
                    max_size=12),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_op_sequences_preserve_invariants(self, ops, seed):
        rng = np.random.default_rng(seed)
        kg = ReasoningKG(mission="m", depth=2)
        ids = [kg.add_node(f"c{i}-1", level=1) for i in range(3)]
        ids += [kg.add_node(f"c{i}-2", level=2) for i in range(3)]
        for i in range(3):
            kg.add_edge(ids[i], ids[3 + i])
        kg.attach_terminals()

        for op in ops:
            concepts = kg.concept_nodes()
            if op == "prune" and concepts:
                victim = concepts[int(rng.integers(len(concepts)))]
                level_population = len(kg.nodes_at_level(victim.level))
                if level_population > 1:
                    kg.prune_node(victim.node_id)
            elif op == "create":
                level = int(rng.integers(1, 3))
                kg.create_node(level=level, token_dim=4, n_tokens=2, rng=rng)
            kg.validate()  # invariants hold after every operation
