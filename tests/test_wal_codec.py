"""WAL wire-codec tests: binary ingest bodies on disk, legacy base64
logs replaying unchanged, mixed-codec segments, and corruption typing.
"""

import json
import struct
import zlib

import numpy as np
import pytest

from repro.errors import WalCorruptionError
from repro.utils.binframe import BIN_MAGIC
from repro.utils.serialization import encode_array
from repro.wal import (
    WalConfig,
    WriteAheadLog,
    ingest_record,
    record_windows,
    skip_record,
)

FRAME = struct.Struct("<II")


def frame_bytes(payload: bytes) -> bytes:
    return FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@pytest.fixture()
def windows():
    return np.random.default_rng(9).normal(size=(3, 4, 6))


class TestBinaryRecords:
    def test_ingest_round_trip_is_bit_exact(self, tmp_path, windows):
        with WriteAheadLog(tmp_path) as log:
            log.append(ingest_record("cam-1", windows), sync=True)
            log.append(skip_record(0), sync=True)
        with WriteAheadLog(tmp_path) as log:
            records = list(log.replay())
        assert [r["kind"] for r in records] == ["ingest", "skip"]
        back = record_windows(records[0])
        assert back.dtype == np.float64
        assert back.tobytes() == windows.tobytes()

    def test_on_disk_frame_is_binary(self, tmp_path, windows):
        with WriteAheadLog(tmp_path) as log:
            log.append(ingest_record("cam-1", windows), sync=True)
            path = log.segment_paths[0]
        payload = path.read_bytes()[FRAME.size:]
        assert payload[:2] == BIN_MAGIC
        # and is substantially smaller than the base64-JSON encoding
        legacy = json.dumps({"kind": "ingest", "stream": "cam-1", "seq": 0,
                             "windows": encode_array(windows)})
        assert len(payload) < len(legacy)

    def test_records_without_arrays_stay_json(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append(skip_record(7), sync=True)
            path = log.segment_paths[0]
        payload = path.read_bytes()[FRAME.size:]
        assert payload[:1] == b"{"
        assert json.loads(payload)["kind"] == "skip"

    def test_nan_inf_windows_survive(self, tmp_path):
        ugly = np.array([[[np.nan, np.inf, -np.inf, -0.0]]])
        with WriteAheadLog(tmp_path) as log:
            log.append(ingest_record("cam-1", ugly), sync=True)
        with WriteAheadLog(tmp_path) as log:
            back = record_windows(next(iter(log.replay())))
        assert back.tobytes() == ugly.tobytes()


class TestCodecConfig:
    def test_json_codec_writes_legacy_base64(self, tmp_path, windows):
        with WriteAheadLog(tmp_path, WalConfig(codec="json")) as log:
            log.append(ingest_record("cam-1", windows), sync=True)
            path = log.segment_paths[0]
        payload = path.read_bytes()[FRAME.size:]
        record = json.loads(payload)
        assert isinstance(record["windows"], dict)
        with WriteAheadLog(tmp_path) as log:
            back = record_windows(next(iter(log.replay())))
        assert back.tobytes() == windows.tobytes()

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="codec"):
            WalConfig(codec="msgpack")


class TestCompatibility:
    def test_legacy_log_replays_and_appends_mixed(self, tmp_path, windows):
        """A log written by a pre-binary version (base64-in-JSON frames)
        replays unchanged, and this version keeps appending binary
        frames to the very same segment."""
        legacy = json.dumps({"kind": "ingest", "stream": "cam-1", "seq": 0,
                             "windows": encode_array(windows)}).encode()
        (tmp_path / "00000001.wal").write_bytes(frame_bytes(legacy))
        with WriteAheadLog(tmp_path) as log:
            assert log.next_seq == 1
            log.append(ingest_record("cam-2", windows * 2), sync=True)
        with WriteAheadLog(tmp_path) as log:
            records = list(log.replay())
        assert record_windows(records[0]).tobytes() == windows.tobytes()
        assert record_windows(records[1]).tobytes() == (windows * 2).tobytes()

    def test_record_windows_accepts_both_encodings(self, windows):
        assert record_windows(
            {"windows": windows}).tobytes() == windows.tobytes()
        assert record_windows(
            {"windows": encode_array(windows)}).tobytes() == windows.tobytes()


class TestCorruption:
    def test_crc_valid_garbage_binary_is_typed(self, tmp_path):
        """A frame that passes its CRC but holds a malformed binary body
        is version-skew corruption, not a torn tail: typed error."""
        garbage = BIN_MAGIC + b"\x00" * 30
        (tmp_path / "00000001.wal").write_bytes(frame_bytes(garbage))
        with pytest.raises(WalCorruptionError, match="binary record"):
            WriteAheadLog(tmp_path)

    def test_binary_body_without_seq_is_typed(self, tmp_path):
        from repro.utils.binframe import encode_payload
        payload = encode_payload({"kind": "ingest", "stream": "cam-1",
                                  "windows": np.zeros((1, 2, 2))})
        (tmp_path / "00000001.wal").write_bytes(frame_bytes(payload))
        with pytest.raises(WalCorruptionError, match="seq"):
            WriteAheadLog(tmp_path)

    def test_torn_binary_tail_is_repaired(self, tmp_path, windows):
        with WriteAheadLog(tmp_path) as log:
            log.append(ingest_record("cam-1", windows), sync=True)
            log.append(ingest_record("cam-2", windows + 1), sync=True)
            path = log.segment_paths[0]
        data = path.read_bytes()
        path.write_bytes(data[:-20])       # tear the final binary frame
        log = WriteAheadLog(tmp_path)
        assert log.repaired_bytes > 0
        records = list(log.replay())
        assert [r["stream"] for r in records] == ["cam-1"]
        assert record_windows(records[0]).tobytes() == windows.tobytes()
        log.close()
