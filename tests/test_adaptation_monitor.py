"""Tests for the anomaly-score monitor and the K = |delta_m| * N rule."""

import numpy as np
import pytest

from repro.adaptation import AnomalyScoreMonitor, MonitorConfig


def make_monitor(window=10, lag=5, **kwargs):
    return AnomalyScoreMonitor(MonitorConfig(window=window, lag=lag, **kwargs))


class TestObservation:
    def test_warmup(self):
        monitor = make_monitor()
        assert not monitor.warmed_up
        monitor.observe(np.zeros(15))
        assert monitor.warmed_up

    def test_current_window_is_most_recent(self):
        monitor = make_monitor(window=4, lag=2)
        monitor.observe([1, 2, 3, 4, 5, 6])
        np.testing.assert_allclose(monitor.current_window(), [3, 4, 5, 6])

    def test_reference_window_lags(self):
        monitor = make_monitor(window=4, lag=2)
        monitor.observe([1, 2, 3, 4, 5, 6])
        np.testing.assert_allclose(monitor.reference_window(), [1, 2, 3, 4])

    def test_reference_empty_before_lag(self):
        monitor = make_monitor(window=4, lag=3)
        monitor.observe([1, 2])
        assert monitor.reference_window().size == 0

    def test_scalar_observation(self):
        monitor = make_monitor()
        monitor.observe(0.5)
        assert monitor.current_window().size == 1

    def test_history_tracks_means(self):
        monitor = make_monitor(window=2, lag=1)
        monitor.observe([1.0, 3.0])
        assert monitor.history[-1] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AnomalyScoreMonitor(MonitorConfig(window=1))
        with pytest.raises(ValueError):
            AnomalyScoreMonitor(MonitorConfig(lag=0))

    def test_select_without_observations_raises(self):
        with pytest.raises(RuntimeError):
            make_monitor().select()


class TestKRule:
    def test_paper_formula(self):
        """K = round(|delta_m| * N) when the mean drops past the threshold."""
        monitor = make_monitor(window=10, lag=10, trigger_threshold=0.01, min_k=0)
        monitor.observe(np.full(10, 0.8))   # reference era
        monitor.observe(np.full(10, 0.5))   # current era: mean dropped 0.3
        selection = monitor.select()
        assert selection.delta_m == pytest.approx(-0.3)
        assert selection.k == 3  # |−0.3| * 10
        assert selection.triggered

    def test_no_trigger_on_stable_mean(self):
        monitor = make_monitor(window=10, lag=10, min_k=0)
        monitor.observe(np.full(20, 0.5))
        selection = monitor.select()
        assert selection.delta_m == pytest.approx(0.0)
        assert selection.k == 0
        assert not selection.triggered

    def test_no_trigger_on_rising_mean(self):
        monitor = make_monitor(window=10, lag=10, min_k=0)
        monitor.observe(np.full(10, 0.2))
        monitor.observe(np.full(10, 0.7))
        assert monitor.select().k == 0

    def test_threshold_suppresses_noise(self):
        monitor = make_monitor(window=10, lag=10, trigger_threshold=0.05, min_k=0)
        monitor.observe(np.full(10, 0.50))
        monitor.observe(np.full(10, 0.48))  # drop of 0.02 < threshold
        assert monitor.select().k == 0

    def test_min_k_maintenance_trickle(self):
        monitor = make_monitor(window=10, lag=10, min_k=2)
        monitor.observe(np.full(20, 0.5))
        assert monitor.select().k == 2

    def test_max_k_fraction_caps(self):
        monitor = make_monitor(window=10, lag=10, trigger_threshold=0.01,
                               max_k_fraction=0.3, min_k=0)
        monitor.observe(np.full(10, 0.9))
        monitor.observe(np.full(10, 0.1))  # drop 0.8 -> k would be 8
        assert monitor.select().k == 3

    def test_top_k_indices_are_highest_scores(self):
        monitor = make_monitor(window=5, lag=5, trigger_threshold=0.01, min_k=0)
        monitor.observe(np.full(5, 0.9))
        recent = np.array([0.1, 0.8, 0.2, 0.9, 0.3])
        monitor.observe(recent)
        selection = monitor.select()
        assert selection.k >= 2
        top = recent[selection.anomalous_indices]
        rest = recent[selection.normal_indices]
        assert top.min() >= rest.max()

    def test_indices_partition_window(self):
        monitor = make_monitor(window=6, lag=6, trigger_threshold=0.01, min_k=0)
        monitor.observe(np.full(6, 0.9))
        monitor.observe(np.array([0.5, 0.1, 0.6, 0.2, 0.7, 0.3]))
        selection = monitor.select()
        combined = np.concatenate([selection.anomalous_indices,
                                   selection.normal_indices])
        assert sorted(combined.tolist()) == list(range(6))
