"""Tests for the classical and MLP baselines."""

import numpy as np
import pytest

from repro.baselines import (
    KNNDetector,
    MahalanobisDetector,
    MLPClassifierBaseline,
    NearestCentroidDetector,
)
from repro.eval import roc_auc
from repro.utils import derive_rng


@pytest.fixture(scope="module")
def baseline_task(embedding_model, frame_generator):
    """A small separable mission task shared by all baseline tests."""
    rng = derive_rng(0, "baseline-task")
    window = 4

    def windows(kind, n):
        out = []
        for _ in range(n):
            frames = [frame_generator.normal_frame(rng) if kind == "normal"
                      else frame_generator.anomaly_frame(kind, rng)
                      for _ in range(window)]
            out.append(np.stack(frames))
        return np.stack(out)

    train = np.concatenate([windows("normal", 30), windows("Stealing", 10)])
    train_labels = np.concatenate([np.zeros(30, dtype=int), np.ones(10, dtype=int)])
    test = np.concatenate([windows("normal", 20), windows("Stealing", 10)])
    test_labels = np.concatenate([np.zeros(20, dtype=int), np.ones(10, dtype=int)])
    return train, train_labels, test, test_labels


ALL_DETECTORS = [
    lambda m: NearestCentroidDetector(m),
    lambda m: MahalanobisDetector(m),
    lambda m: KNNDetector(m, k=5),
    lambda m: MLPClassifierBaseline(m),
]


class TestInterfaceContract:
    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_unfitted_raises(self, factory, embedding_model, rng):
        detector = factory(embedding_model)
        with pytest.raises(RuntimeError):
            detector.anomaly_scores(
                rng.normal(size=(2, 4, embedding_model.frame_dim)))

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_score_shape(self, factory, embedding_model, baseline_task):
        train, labels, test, _ = baseline_task
        detector = factory(embedding_model)
        detector.fit(train, labels)
        scores = detector.anomaly_scores(test)
        assert scores.shape == (test.shape[0],)
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_rejects_2d_windows(self, factory, embedding_model, baseline_task):
        train, labels, _, _ = baseline_task
        detector = factory(embedding_model).fit(train, labels)
        with pytest.raises(ValueError):
            detector.anomaly_scores(np.zeros((4, embedding_model.frame_dim)))


class TestDetectionQuality:
    @pytest.mark.parametrize("factory", ALL_DETECTORS)
    def test_beats_chance_on_separable_task(self, factory, embedding_model,
                                            baseline_task):
        train, labels, test, test_labels = baseline_task
        detector = factory(embedding_model).fit(train, labels)
        auc = roc_auc(detector.anomaly_scores(test), test_labels)
        assert auc > 0.6, f"{type(detector).__name__} AUC {auc:.3f}"

    def test_one_class_detectors_ignore_anomaly_labels(self, embedding_model,
                                                       baseline_task):
        """Fitting with anomalies removed gives identical centroids."""
        train, labels, test, _ = baseline_task
        a = NearestCentroidDetector(embedding_model).fit(train, labels)
        normals_only = train[labels == 0]
        b = NearestCentroidDetector(embedding_model).fit(
            normals_only, np.zeros(normals_only.shape[0], dtype=int))
        np.testing.assert_allclose(a.anomaly_scores(test),
                                   b.anomaly_scores(test))

    def test_needs_normal_samples(self, embedding_model, baseline_task):
        train, labels, _, _ = baseline_task
        anomalies = train[labels == 1]
        with pytest.raises(ValueError):
            NearestCentroidDetector(embedding_model).fit(
                anomalies, np.ones(anomalies.shape[0], dtype=int))


class TestParameterValidation:
    def test_knn_k_positive(self, embedding_model):
        with pytest.raises(ValueError):
            KNNDetector(embedding_model, k=0)

    def test_mahalanobis_shrinkage_bounds(self, embedding_model):
        with pytest.raises(ValueError):
            MahalanobisDetector(embedding_model, shrinkage=1.5)

    def test_knn_k_capped_by_bank(self, embedding_model, baseline_task):
        train, labels, test, _ = baseline_task
        detector = KNNDetector(embedding_model, k=10_000).fit(train, labels)
        scores = detector.anomaly_scores(test[:2])
        assert np.all(np.isfinite(scores))

    def test_mlp_empty_training_raises(self, embedding_model):
        mlp = MLPClassifierBaseline(embedding_model)
        with pytest.raises(ValueError):
            mlp.fit(np.zeros((0, 4, embedding_model.frame_dim)),
                    np.zeros(0, dtype=int))
