"""Tests for the Deployment runtime (serve loop, checkpoint/resume)."""

import numpy as np
import pytest

from repro.adaptation import AdaptationConfig, MonitorConfig, TokenUpdateConfig
from repro.api import Deployment, Pipeline, ReproConfig


def deployment_config() -> ReproConfig:
    """Small stack with an adaptation loop that actually triggers."""
    cfg = ReproConfig()
    cfg.experiment.train_steps = 50
    cfg.experiment.eval_normal_windows = 12
    cfg.experiment.eval_anomaly_windows = 6
    cfg.adaptation = AdaptationConfig(
        monitor=MonitorConfig(window=24, lag=12, min_k=4,
                              trigger_threshold=0.005),
        update=TokenUpdateConfig(learning_rate=0.08, inner_steps=2),
        adaptation_rounds=2, min_trigger_k=1, min_confidence=0.0)
    cfg.stream.windows_per_step = 12
    cfg.stream.steps_before_shift = 2
    cfg.stream.steps_after_shift = 4
    return cfg


@pytest.fixture(scope="module")
def pipeline():
    return Pipeline.from_config(deployment_config())


class TestServing:
    def test_serve_yields_one_event_per_batch(self, pipeline):
        deployment = pipeline.deploy("Stealing")
        events = list(deployment.serve(pipeline.stream("Stealing", "Robbery")))
        assert len(events) == pipeline.config.stream.total_steps
        assert [e.step for e in events] == list(range(len(events)))
        assert events[0].active_class == "Stealing"
        assert events[-1].active_class == "Robbery"
        assert all(e.scores.shape == (12,) for e in events)
        assert deployment.step_count == len(events)

    def test_static_deployment_never_adapts(self, pipeline):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        windows, _ = pipeline.eval_windows("Stealing")
        before = deployment.scores(windows[:5])
        for _ in deployment.serve(pipeline.stream("Stealing", "Robbery")):
            pass
        np.testing.assert_allclose(deployment.scores(windows[:5]), before,
                                   atol=1e-12)
        assert deployment.update_count == 0
        assert deployment.controller is None

    def test_serve_accepts_raw_arrays(self, pipeline):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        windows, _ = pipeline.eval_windows("Stealing")
        events = list(deployment.serve([windows[:4], windows[4:8]]))
        assert len(events) == 2
        assert events[0].active_class is None


class TestStaticIngestValidation:
    """The static path must validate precomputed scores like the adaptive
    path does: a mis-sliced micro-batch result raises instead of being
    silently logged."""

    def test_valid_precomputed_scores_accepted(self, pipeline):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        windows, _ = pipeline.eval_windows("Stealing")
        scores = deployment.scores(windows[:4])
        log = deployment.ingest(windows[:4], scores=scores)
        np.testing.assert_array_equal(log.scores, scores)

    def test_wrong_length_scores_rejected(self, pipeline):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        windows, _ = pipeline.eval_windows("Stealing")
        scores = deployment.scores(windows[:4])
        with pytest.raises(ValueError, match="expected 3 precomputed"):
            deployment.ingest(windows[:3], scores=scores)

    def test_wrong_shape_scores_rejected(self, pipeline):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        windows, _ = pipeline.eval_windows("Stealing")
        with pytest.raises(ValueError, match="precomputed"):
            deployment.ingest(windows[:4],
                              scores=np.zeros((4, 2), dtype=np.float64))

    def test_bad_windows_shape_rejected(self, pipeline):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        with pytest.raises(ValueError, match=r"\(B, T, frame_dim\)"):
            deployment.ingest(np.zeros((4, 8)))

    def test_scores_coerced_to_float64(self, pipeline):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        windows, _ = pipeline.eval_windows("Stealing")
        log = deployment.ingest(
            windows[:4], scores=np.zeros(4, dtype=np.float32))
        assert log.scores.dtype == np.float64


class TestCheckpointResume:
    def test_save_load_preserves_scores(self, pipeline, tmp_path):
        deployment = pipeline.deploy("Stealing")
        for _ in deployment.serve(pipeline.stream("Stealing", "Robbery")):
            pass
        path = tmp_path / "deployment.json"
        deployment.save(path)
        loaded = Deployment.load(path, pipeline.embedding_model)
        windows, _ = pipeline.eval_windows("Robbery")
        np.testing.assert_allclose(loaded.scores(windows),
                                   deployment.scores(windows), atol=1e-12)
        assert loaded.mission == "Stealing"
        assert loaded.step_count == deployment.step_count
        assert loaded.update_count == deployment.update_count

    def test_resumed_adaptation_matches_uninterrupted(self, pipeline, tmp_path):
        """Interrupting a deployment mid-stream must not change its future."""
        stream = pipeline.stream("Stealing", "Robbery")
        batches = list(stream)
        split = 3

        straight = pipeline.deploy("Stealing")
        for batch in batches:
            straight.ingest(batch.windows)

        interrupted = pipeline.deploy("Stealing")
        for batch in batches[:split]:
            interrupted.ingest(batch.windows)
        path = tmp_path / "mid.json"
        interrupted.save(path)
        resumed = Deployment.load(path, pipeline.embedding_model)
        logs = [resumed.ingest(batch.windows) for batch in batches[split:]]

        assert straight.update_count > 0, "scenario must exercise adaptation"
        assert resumed.update_count == straight.update_count
        assert [log.step for log in logs] == list(range(split, len(batches)))
        windows, _ = pipeline.eval_windows("Robbery")
        np.testing.assert_allclose(resumed.scores(windows),
                                   straight.scores(windows), atol=1e-12)

    def test_adam_resume_matches_uninterrupted(self, tmp_path):
        """Adam moments must survive the checkpoint (not reset to zero)."""
        cfg = deployment_config()
        cfg.adaptation.update.optimizer = "adam"
        cfg.adaptation.update.learning_rate = 0.01
        pipe = Pipeline.from_config(cfg)
        batches = list(pipe.stream("Stealing", "Robbery"))
        split = 4

        straight = pipe.deploy("Stealing")
        for batch in batches:
            straight.ingest(batch.windows)
        assert straight.update_count > 0, "scenario must exercise adaptation"

        interrupted = pipe.deploy("Stealing")
        for batch in batches[:split]:
            interrupted.ingest(batch.windows)
        path = tmp_path / "adam.json"
        interrupted.save(path)
        resumed = Deployment.load(path, pipe.embedding_model)
        for batch in batches[split:]:
            resumed.ingest(batch.windows)

        windows, _ = pipe.eval_windows("Robbery")
        np.testing.assert_allclose(resumed.scores(windows),
                                   straight.scores(windows), atol=1e-12)

    def test_wrong_embedding_model_rejected(self, pipeline, tmp_path):
        from repro.embedding import build_default_embedding_model
        deployment = pipeline.deploy("Stealing", adaptive=False)
        path = tmp_path / "dep.json"
        deployment.save(path)
        other = build_default_embedding_model(seed=99)
        with pytest.raises(ValueError, match="embedding model mismatch"):
            Deployment.load(path, other)

    def test_unknown_version_rejected(self, pipeline, tmp_path):
        deployment = pipeline.deploy("Stealing", adaptive=False)
        payload = deployment.to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            Deployment.from_dict(payload, pipeline.embedding_model)


class TestModelInjection:
    def test_from_dict_without_model_section_needs_injection(
            self, fresh_model, embedding_model):
        deployment = Deployment(fresh_model(window=4), mission="Stealing",
                                adaptive=False)
        payload = deployment.to_dict(include_model=False)
        assert payload["model"] is None
        with pytest.raises(ValueError, match="include_model=False"):
            Deployment.from_dict(payload, embedding_model)
        restored = Deployment.from_dict(payload, embedding_model,
                                        model=deployment.model)
        assert restored.mission == "Stealing"
        assert restored.model is deployment.model
