"""Tests for ASCII KG rendering."""


from repro.kg import render_adjacency, render_levels


class TestRenderLevels:
    def test_all_nodes_appear(self, stealing_kg_template):
        text = render_levels(stealing_kg_template)
        for node in stealing_kg_template.concept_nodes():
            assert node.text in text

    def test_level_markers(self, stealing_kg_template):
        text = render_levels(stealing_kg_template)
        for level in range(stealing_kg_template.depth + 2):
            assert f"L{level}" in text

    def test_parents_shown(self, stealing_kg_template):
        text = render_levels(stealing_kg_template)
        assert "<- <sensor>" in text

    def test_long_parent_lists_collapsed(self, stealing_kg_template):
        text = render_levels(stealing_kg_template, max_width=30)
        assert "parents)" in text


class TestRenderAdjacency:
    def test_groups_by_level(self, stealing_kg_template):
        text = render_adjacency(stealing_kg_template)
        for level in range(stealing_kg_template.depth + 1):
            assert f"-- level {level} -> {level + 1} --" in text

    def test_every_edge_rendered(self, stealing_kg_template):
        kg = stealing_kg_template
        text = render_adjacency(kg)
        arrow_lines = [line for line in text.splitlines()
                       if "->" in line and "--" not in line]
        rendered_edges = sum(len(line.split("->")[1].split(","))
                             for line in arrow_lines)
        assert rendered_edges == kg.num_edges
