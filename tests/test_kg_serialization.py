"""Tests for KG persistence (the deployment artifact)."""

import numpy as np
import pytest

from repro.kg import KGStructureError, kg_from_dict, kg_to_dict, load_kg, save_kg


class TestRoundTrip:
    def test_structure_preserved(self, stealing_kg_template):
        kg = stealing_kg_template
        restored = kg_from_dict(kg_to_dict(kg))
        assert restored.mission == kg.mission
        assert restored.depth == kg.depth
        assert restored.num_nodes == kg.num_nodes
        assert restored.edges() == kg.edges()
        assert restored.sensor_id == kg.sensor_id
        assert restored.embedding_id == kg.embedding_id

    def test_tokens_preserved(self, stealing_kg_template):
        kg = stealing_kg_template
        restored = kg_from_dict(kg_to_dict(kg))
        for node in kg.concept_nodes():
            other = restored.node(node.node_id)
            assert other.token_ids == node.token_ids
            np.testing.assert_allclose(other.token_embeddings,
                                       node.token_embeddings)

    def test_file_roundtrip(self, stealing_kg_template, tmp_path):
        path = tmp_path / "kg.json"
        save_kg(stealing_kg_template, path)
        restored = load_kg(path)
        assert restored.num_nodes == stealing_kg_template.num_nodes

    def test_restored_kg_validates(self, stealing_kg_template):
        kg_from_dict(kg_to_dict(stealing_kg_template)).validate()

    def test_corrupted_edges_rejected(self, stealing_kg_template):
        payload = kg_to_dict(stealing_kg_template)
        # Introduce a level-skipping edge.
        levels = {n["id"]: n["level"] for n in payload["nodes"]}
        l1 = next(i for i, lv in levels.items() if lv == 1)
        l3 = next(i for i, lv in levels.items() if lv == 3)
        payload["edges"].append([l1, l3])
        with pytest.raises(KGStructureError):
            kg_from_dict(payload)

    def test_restored_arrays_are_writable(self, stealing_kg_template):
        restored = kg_from_dict(kg_to_dict(stealing_kg_template))
        node = restored.concept_nodes()[0]
        node.token_embeddings += 1.0  # must not raise (frombuffer is read-only)
