"""Tests for the fleet-serving benchmark harness."""

import json

import numpy as np
import pytest

from repro.serving import (BenchConfig, format_benchmark, run_benchmark,
                           run_engine_parity, run_shard_benchmark,
                           write_benchmark)
from repro.serving.bench import _mode_stats, _percentile, format_engine_parity


def tiny_config():
    return BenchConfig(streams=3, windows_per_step=2, rounds=2,
                       repeats=1, warmup=0)


class TestEmptyLatencyGuards:
    """np.percentile([]) raises a bare IndexError; the harness must name
    the benchmark phase instead."""

    def test_percentile_empty_names_phase(self):
        with pytest.raises(ValueError, match="'sequential'"):
            _percentile([], 50, phase="sequential")

    def test_mode_stats_empty_names_phase(self):
        with pytest.raises(ValueError, match="'4-shard'"):
            _mode_stats([], windows_per_round=8, phase="4-shard")

    def test_mode_stats_still_summarizes(self):
        stats = _mode_stats([0.1, 0.2], windows_per_round=8,
                            phase="batched")
        assert stats["rounds_timed"] == 2
        assert stats["p50_ms"] == pytest.approx(150.0)


class TestRunBenchmark:
    def test_result_shape_and_parity(self, trained_context):
        result = run_benchmark(trained_context.pipeline, tiny_config())
        assert result["benchmark"] == "fleet_serving"
        assert result["config"]["streams"] == 3
        assert result["config"]["windows_per_round"] == 6
        for mode in ("sequential", "batched"):
            stats = result[mode]
            assert stats["windows_per_sec"] > 0
            assert stats["p50_ms"] > 0
            assert stats["p95_ms"] >= stats["p50_ms"]
            assert stats["rounds_timed"] == 2
        assert result["speedup"] > 0
        # The load-bearing guarantee: coalescing never changes a score.
        assert result["parity"]["identical"] is True
        assert result["parity"]["max_abs_diff"] == 0.0
        # The promoted engine metrics ride along in the artifact.
        assert result["engine"]["backend"] == "inline"
        assert result["engine"]["coalesce"]["batches_run"] > 0

    def test_write_benchmark_json(self, trained_context, tmp_path):
        result = run_benchmark(trained_context.pipeline, tiny_config())
        path = write_benchmark(result, str(tmp_path / "BENCH_test.json"))
        payload = json.loads(open(path).read())
        assert payload["benchmark"] == "fleet_serving"
        assert payload["parity"]["identical"] is True
        assert np.isclose(payload["speedup"], result["speedup"])

    def test_format_benchmark_summary(self, trained_context):
        result = run_benchmark(trained_context.pipeline, tiny_config())
        text = format_benchmark(result)
        assert "windows/s" in text
        assert "speedup" in text
        assert "identical: True" in text


class TestRoundClamping:
    def test_rounds_clamped_to_stream_length(self, trained_context):
        config = tiny_config()
        config.rounds = 10_000  # far beyond the default 24-step streams
        result = run_benchmark(trained_context.pipeline, config)
        assert result["config"]["rounds"] == 24
        assert result["sequential"]["rounds_timed"] == 24


class TestShardBenchmark:
    def test_curve_shape_and_parity(self, trained_context):
        result = run_shard_benchmark(trained_context.pipeline, tiny_config(),
                                     shard_counts=(1, 2))
        assert result["benchmark"] == "sharded_fleet_serving"
        assert result["config"]["shard_counts"] == [1, 2]
        # Single-process baselines ride along for comparison.
        assert result["sequential"]["windows_per_sec"] > 0
        assert result["batched"]["windows_per_sec"] > 0
        for count in ("1", "2"):
            stats = result["shards"][count]
            assert stats["windows_per_sec"] > 0
            assert stats["speedup_vs_batched"] > 0
            # The acceptance property: sharded workers reproduce the
            # single-process batched scores bit for bit.
            assert stats["parity"]["identical"] is True
            assert stats["parity"]["max_abs_diff"] == 0.0
        assert result["parity"]["identical"] is True
        assert result["environment"]["cpu_count"] >= 1

    def test_format_includes_shard_lines(self, trained_context):
        result = run_shard_benchmark(trained_context.pipeline, tiny_config(),
                                     shard_counts=(1, 2))
        text = format_benchmark(result)
        assert "shard(s):" in text
        assert "vs batched" in text
        assert "cores:" in text


class TestEngineParityHarness:
    """The CI-facing backend x policy matrix (`repro bench
    --engine-parity`); the fixture-level matrix lives in
    test_runtime_engine.py."""

    def test_inline_matrix_bit_identical(self, trained_context):
        result = run_engine_parity(trained_context.pipeline, tiny_config(),
                                   backends=("inline",))
        assert result["benchmark"] == "engine_parity"
        combos = result["combinations"]
        assert set(combos) == {"inline:fair", "inline:greedy",
                               "inline:priority"}
        rounds = result["config"]["rounds"]
        for name, entry in combos.items():
            assert entry["identical"] is True, name
            assert entry["max_abs_diff"] == 0.0
            assert entry["responses_compared"] == 3 * rounds
            assert entry["metrics"]["rounds"] == entry["engine_rounds"]
        # Policies differ only in round composition.
        assert combos["inline:greedy"]["engine_rounds"] == 1
        assert combos["inline:fair"]["engine_rounds"] == rounds
        assert result["parity"]["identical"] is True

    def test_format_engine_parity(self, trained_context):
        result = run_engine_parity(trained_context.pipeline, tiny_config(),
                                   backends=("inline",))
        text = format_engine_parity(result)
        assert "engine parity matrix" in text
        assert "inline:priority" in text
        assert "parity (all combinations): True" in text
