"""Tests for GraphSpec compilation and the hierarchical GNN layer (Eq. 1-4)."""

import numpy as np
import pytest

from repro.gnn import GraphSpec, HierarchicalGNNLayer
from repro.kg import ReasoningKG
from repro.nn import Tensor


def build_kg() -> ReasoningKG:
    kg = ReasoningKG(mission="m", depth=2)
    a = kg.add_node("a", level=1)
    b = kg.add_node("b", level=1)
    c = kg.add_node("c", level=2)
    kg.add_edge(a, c)
    kg.add_edge(b, c)
    kg.attach_terminals()
    return kg


class TestGraphSpec:
    def test_requires_terminals(self):
        kg = ReasoningKG(mission="m", depth=1)
        kg.add_node("a", level=1)
        with pytest.raises(ValueError):
            GraphSpec(kg)

    def test_level_structure(self):
        spec = GraphSpec(build_kg())
        assert spec.num_levels == 4  # sensor, L1, L2, embedding
        assert spec.num_nodes == 5

    def test_mean_scale_is_reciprocal_in_degree(self):
        """Receiving nodes average their incoming messages (Eq. 3): the
        segment-sum scale is 1/in-degree on receivers, 0 elsewhere, and the
        keep mask is the receive mask's complement."""
        spec = GraphSpec(build_kg())
        for level in range(spec.num_levels):
            in_degree = np.bincount(spec.edge_targets[level],
                                    minlength=spec.num_nodes)
            scale = spec.mean_scale[level][:, 0]
            mask = spec.receive_mask[level][:, 0]
            for node in range(spec.num_nodes):
                if in_degree[node]:
                    assert mask[node] == 1.0
                    assert scale[node] == pytest.approx(1.0 / in_degree[node])
                else:
                    assert mask[node] == 0.0
                    assert scale[node] == 0.0
            np.testing.assert_allclose(spec.keep_mask[level][:, 0], 1.0 - mask)

    def test_segment_aggregation_matches_dense_matrix(self, rng):
        """The segment-sum path reproduces the dense mean-aggregation
        matrix formulation it replaced."""
        spec = GraphSpec(build_kg())
        for level in range(spec.num_levels):
            edges = spec.edge_targets[level].size
            if not edges:
                continue
            messages = rng.normal(size=(3, edges, 4))
            dense_agg = np.zeros((spec.num_nodes, edges))
            for e, t in enumerate(spec.edge_targets[level]):
                dense_agg[t, e] = spec.mean_scale[level][t, 0]
            expected = dense_agg @ messages
            summed = Tensor.segment_sum(Tensor(messages),
                                        spec.edge_targets[level],
                                        spec.num_nodes)
            actual = summed.numpy() * spec.mean_scale[level]
            np.testing.assert_allclose(actual, expected, atol=1e-12)

    def test_sensor_level_has_no_incoming(self):
        spec = GraphSpec(build_kg())
        assert len(spec.edge_sources[0]) == 0

    def test_level1_receives_from_sensor(self):
        kg = build_kg()
        spec = GraphSpec(kg)
        assert len(spec.edge_sources[1]) == 2  # sensor -> a, sensor -> b
        assert all(s == spec.sensor_row for s in spec.edge_sources[1])

    def test_row_of(self):
        kg = build_kg()
        spec = GraphSpec(kg)
        for node in kg.nodes():
            assert spec.node_ids[spec.row_of(node.node_id)] == node.node_id


class TestHierarchicalGNNLayer:
    def test_output_shape(self, rng):
        spec = GraphSpec(build_kg())
        layer = HierarchicalGNNLayer(6, 4, rng)
        out = layer(Tensor(rng.normal(size=(3, spec.num_nodes, 6))), spec, level=1)
        assert out.shape == (3, spec.num_nodes, 4)

    def test_rejects_wrong_node_count(self, rng):
        spec = GraphSpec(build_kg())
        layer = HierarchicalGNNLayer(6, 4, rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((1, 3, 6))), spec, level=1)

    def test_rejects_2d_input(self, rng):
        spec = GraphSpec(build_kg())
        layer = HierarchicalGNNLayer(6, 4, rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((spec.num_nodes, 6))), spec, level=1)

    def test_non_receiving_nodes_keep_dense_output(self, rng):
        """Eq. 3: nodes outside V(l) pass through the dense refinement only
        (before norm/activation, their value equals phi_l(X))."""
        kg = build_kg()
        spec = GraphSpec(kg)
        layer = HierarchicalGNNLayer(4, 4, rng)
        layer.eval()  # freeze batch-norm statistics usage path
        x = rng.normal(size=(2, spec.num_nodes, 4))

        # Compute the combined pre-norm output by stubbing norm+elu:
        refined = layer.dense(Tensor(x)).numpy()
        out_level2 = layer(Tensor(x), spec, level=2)
        # Level 2 receivers: only node 'c'. All other rows derive from
        # `refined` alone; verify by linearity of the subsequent norm:
        # rows with identical refined values must produce identical outputs.
        c_row = spec.row_of([n.node_id for n in kg.concept_nodes()
                             if n.text == "c"][0])
        mask = spec.receive_mask[2][:, 0]
        assert mask[c_row] == 1.0
        assert mask.sum() == 1.0

    def test_message_passing_mixes_source_and_target(self, rng):
        """Changing a level-1 node's embedding must affect the level-2
        receiver (through Eq. 2's product messages)."""
        kg = build_kg()
        spec = GraphSpec(kg)
        layer = HierarchicalGNNLayer(4, 4, rng)
        layer.eval()
        x = rng.normal(size=(1, spec.num_nodes, 4))
        base = layer(Tensor(x), spec, level=2).numpy()
        a_row = spec.row_of([n.node_id for n in kg.concept_nodes()
                             if n.text == "a"][0])
        c_row = spec.row_of([n.node_id for n in kg.concept_nodes()
                             if n.text == "c"][0])
        x2 = x.copy()
        x2[0, a_row] += 3.0
        out = layer(Tensor(x2), spec, level=2).numpy()
        assert not np.allclose(out[0, c_row], base[0, c_row])

    def test_gradients_flow_through_messages(self, rng):
        spec = GraphSpec(build_kg())
        layer = HierarchicalGNNLayer(4, 4, rng)
        x = Tensor(rng.normal(size=(2, spec.num_nodes, 4)), requires_grad=True)
        layer(x, spec, level=2).sum().backward()
        assert x.grad is not None
        assert np.any(x.grad != 0)

    def test_empty_edge_level_is_dense_norm_elu(self, rng):
        """Level 0 (sensor) has no incoming edges: layer reduces to
        dense + batchnorm + ELU on all nodes."""
        spec = GraphSpec(build_kg())
        layer = HierarchicalGNNLayer(4, 4, rng)
        x = Tensor(rng.normal(size=(2, spec.num_nodes, 4)))
        refined = layer.dense(x)
        expected = layer.norm(refined).elu().numpy()
        layer2_out = layer(x, spec, level=0).numpy()
        np.testing.assert_allclose(layer2_out, expected)
