"""Tests for deployment checkpointing (weights + BN stats + KGs in one file)."""

import json

import numpy as np
import pytest

from repro.gnn import (
    deployment_from_dict,
    deployment_to_dict,
    load_deployment,
    save_deployment,
)


class TestDeploymentRoundTrip:
    def test_scores_bit_identical(self, trained_context, tmp_path):
        """The loaded deployment must reproduce the trained model's scores
        exactly — weights, BN statistics, KG tokens, config."""
        ctx = trained_context
        model = ctx.train_model("Stealing")
        path = tmp_path / "deployment.json"
        save_deployment(model, path)
        loaded = load_deployment(path, ctx.embedding_model)
        windows, _ = ctx.eval_windows("Stealing")
        np.testing.assert_allclose(loaded.anomaly_scores(windows[:10]),
                                   model.anomaly_scores(windows[:10]),
                                   atol=1e-12)

    def test_adapted_kg_survives(self, trained_context, tmp_path):
        """Checkpointing after adaptation preserves the adapted tokens."""
        ctx = trained_context
        model = ctx.train_model("Stealing")
        node = model.kgs[0].concept_nodes()[0]
        node.token_embeddings = node.token_embeddings + 0.5  # simulate drift
        path = tmp_path / "adapted.json"
        save_deployment(model, path)
        loaded = load_deployment(path, ctx.embedding_model)
        np.testing.assert_allclose(
            loaded.kgs[0].node(node.node_id).token_embeddings,
            node.token_embeddings)

    def test_config_preserved(self, trained_context, tmp_path):
        ctx = trained_context
        model = ctx.train_model("Stealing")
        payload = deployment_to_dict(model)
        loaded = deployment_from_dict(payload, ctx.embedding_model)
        assert loaded.config == model.config

    def test_unknown_version_rejected(self, trained_context):
        ctx = trained_context
        payload = deployment_to_dict(ctx.train_model("Stealing"))
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            deployment_from_dict(payload, ctx.embedding_model)

    def test_artifact_is_plain_json(self, trained_context, tmp_path):
        ctx = trained_context
        path = tmp_path / "artifact.json"
        save_deployment(ctx.train_model("Stealing"), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert "weights" in payload and "kgs" in payload

    def test_loaded_model_is_eval_mode(self, trained_context, tmp_path):
        ctx = trained_context
        path = tmp_path / "deployment.json"
        save_deployment(ctx.train_model("Stealing"), path)
        loaded = load_deployment(path, ctx.embedding_model)
        assert not loaded.temporal.training

    def test_loaded_model_is_adaptable(self, trained_context, tmp_path):
        """A reloaded deployment must support continuous adaptation."""
        from repro.adaptation import TokenEmbeddingUpdater
        ctx = trained_context
        path = tmp_path / "deployment.json"
        save_deployment(ctx.train_model("Stealing"), path)
        loaded = load_deployment(path, ctx.embedding_model)
        loaded.freeze_for_deployment()
        updater = TokenEmbeddingUpdater(loaded)
        windows, labels = ctx.eval_windows("Stealing")
        result = updater.update(windows[:8], labels[:8])
        assert np.isfinite(result.loss)
