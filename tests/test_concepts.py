"""Tests for the concept ontology and its vector space."""

import numpy as np
import pytest

from repro.concepts import (
    ANOMALY_CLASSES,
    CLASS_CLUSTERS,
    NORMAL_ACTIVITIES,
    ConceptOntology,
    ConceptSpace,
    build_default_ontology,
)


class TestOntologyContents:
    def test_thirteen_ucf_crime_classes(self):
        assert len(ANOMALY_CLASSES) == 13
        assert "Stealing" in ANOMALY_CLASSES
        assert "Explosion" in ANOMALY_CLASSES
        assert "RoadAccidents" in ANOMALY_CLASSES

    def test_every_class_in_exactly_one_cluster(self):
        clustered = [c for members in CLASS_CLUSTERS.values() for c in members]
        assert sorted(clustered) == sorted(ANOMALY_CLASSES)

    def test_every_class_has_three_depths(self, ontology):
        for name in ANOMALY_CLASSES:
            for depth in (1, 2, 3):
                assert ontology.concepts_for_class(name, depth=depth), \
                    f"{name} missing depth-{depth} concepts"

    def test_normal_concepts_present(self, ontology):
        normals = ontology.normal_concepts()
        assert len(normals) >= len(NORMAL_ACTIVITIES)
        assert all(c.is_normal for c in normals)

    def test_vocabulary_sorted_and_unique(self, ontology):
        vocab = ontology.vocabulary()
        assert vocab == sorted(vocab)
        assert len(vocab) == len(set(vocab))

    def test_unknown_class_raises(self, ontology):
        with pytest.raises(KeyError):
            ontology.concepts_for_class("Jaywalking")

    def test_related_symmetry(self, ontology):
        for concept in ontology.all_concepts():
            for neighbour in ontology.related(concept.text):
                assert concept.text in ontology.related(neighbour)

    def test_contains_and_get(self, ontology):
        assert "sneaky" in ontology
        assert ontology.get("sneaky").depth == 1
        assert "Stealing" in ontology.get("sneaky").classes

    def test_max_depth(self, ontology):
        assert ontology.max_depth("Robbery") == 3


class TestShiftStrength:
    def test_weak_shift_same_cluster(self):
        assert ConceptOntology.shift_strength("Stealing", "Robbery") == "weak"
        assert ConceptOntology.shift_strength("Robbery", "Stealing") == "weak"

    def test_strong_shift_cross_cluster(self):
        assert ConceptOntology.shift_strength("Stealing", "Explosion") == "strong"

    def test_no_shift(self):
        assert ConceptOntology.shift_strength("Arson", "Arson") == "none"

    def test_cluster_of_unknown_raises(self):
        with pytest.raises(KeyError):
            ConceptOntology.cluster_of("NotAClass")


class TestConceptSpace:
    @pytest.fixture(scope="class")
    def space(self):
        return ConceptSpace(build_default_ontology(), dim=64, seed=7)

    def test_vectors_unit_norm(self, space):
        for text in ["sneaky", "firearm", "walking"]:
            assert np.linalg.norm(space.concept_vector(text)) == pytest.approx(1.0)

    def test_deterministic(self):
        ontology = build_default_ontology()
        a = ConceptSpace(ontology, seed=7)
        b = ConceptSpace(ontology, seed=7)
        np.testing.assert_allclose(a.concept_vector("sneaky"),
                                   b.concept_vector("sneaky"))

    def test_seed_changes_vectors(self):
        ontology = build_default_ontology()
        a = ConceptSpace(ontology, seed=7)
        b = ConceptSpace(ontology, seed=8)
        assert not np.allclose(a.concept_vector("sneaky"),
                               b.concept_vector("sneaky"))

    def test_weak_pairs_more_similar_than_strong(self, space):
        weak = space.class_similarity("Stealing", "Robbery")
        strong = space.class_similarity("Stealing", "Explosion")
        assert weak > strong + 0.2

    def test_all_weak_pairs_beat_all_strong_pairs_on_average(self, space):
        weak_sims, strong_sims = [], []
        for i, a in enumerate(ANOMALY_CLASSES):
            for b in ANOMALY_CLASSES[i + 1:]:
                sim = space.class_similarity(a, b)
                if ConceptOntology.shift_strength(a, b) == "weak":
                    weak_sims.append(sim)
                else:
                    strong_sims.append(sim)
        assert np.mean(weak_sims) > np.mean(strong_sims) + 0.2

    def test_concepts_cluster_near_their_class(self, space):
        anchor = space.class_anchor("Explosion")
        own = space.concept_vector("blast") @ anchor
        other = space.concept_vector("sneaky") @ anchor
        assert own > other

    def test_normal_concepts_far_from_anomaly_anchors(self, space):
        walking = space.concept_vector("walking")
        sims = [abs(walking @ space.class_anchor(c)) for c in ANOMALY_CLASSES]
        assert np.mean(sims) < 0.4

    def test_nearest_concepts_self_retrieval(self, space):
        hits = space.nearest_concepts(space.concept_vector("firearm"), k=3)
        assert hits[0][0] == "firearm"

    def test_nearest_concepts_metrics(self, space):
        vec = space.concept_vector("blast")
        for metric in ("euclidean", "cosine", "dot"):
            hits = space.nearest_concepts(vec, k=5, metric=metric)
            assert len(hits) == 5
            assert hits[0][0] == "blast"

    def test_nearest_concepts_bad_metric(self, space):
        with pytest.raises(ValueError):
            space.nearest_concepts(np.zeros(64), metric="manhattan")

    def test_matrix_shape(self, space):
        mat = space.matrix(["sneaky", "blast"])
        assert mat.shape == (2, 64)
