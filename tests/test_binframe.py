"""Fuzz-grade tests for the binary frame body codec.

The codec sits under both the gateway wire protocol and the WAL, so a
malformed body must always surface as :class:`BinaryFormatError` —
never a struct/json/numpy exception, and never a silently wrong array.
"""

import json

import numpy as np
import pytest

from repro.utils.binframe import (
    BIN_HEADER,
    BIN_MAGIC,
    BinaryFormatError,
    decode_body,
    decode_payload,
    encode_payload,
    is_binary,
    parse_header,
    split_payload,
)


def round_trip(payload, **kwargs):
    decoded, header = decode_payload(encode_payload(payload, **kwargs))
    return decoded, header


class TestRoundTrip:
    def test_meta_and_arrays(self):
        rng = np.random.default_rng(3)
        payload = {"op": "ingest", "id": 7, "stream": "cam-1",
                   "windows": rng.normal(size=(2, 4, 6)),
                   "scores": rng.normal(size=(5,))}
        decoded, header = round_trip(payload, version=2, op=3, flags=1)
        assert header.version == 2 and header.op == 3 and header.flags == 1
        assert header.narrays == 2
        assert decoded["op"] == "ingest" and decoded["id"] == 7
        np.testing.assert_array_equal(decoded["windows"],
                                      payload["windows"])
        np.testing.assert_array_equal(decoded["scores"], payload["scores"])
        assert decoded["windows"].dtype == np.float64

    def test_no_arrays(self):
        decoded, header = round_trip({"op": "stats", "id": None})
        assert header.narrays == 0 and header.payload_len == 0
        assert decoded == {"op": "stats", "id": None}

    def test_zero_dim_and_empty_arrays(self):
        payload = {"a": np.array(4.25), "b": np.empty((0, 3))}
        decoded, _ = round_trip(payload)
        # ascontiguousarray promotes 0-d to (1,) — values still exact.
        assert decoded["a"].shape == (1,) and decoded["a"][0] == 4.25
        assert decoded["b"].shape == (0, 3)

    def test_nan_inf_preserved_bit_for_bit(self):
        ugly = np.array([np.nan, np.inf, -np.inf, -0.0, 5e-324,
                         np.nextafter(1.0, 2.0)])
        decoded, _ = round_trip({"x": ugly})
        assert decoded["x"].tobytes() == ugly.tobytes()

    def test_non_float64_input_is_coerced(self):
        decoded, _ = round_trip({"x": np.arange(6, dtype=np.int32)})
        assert decoded["x"].dtype == np.float64
        np.testing.assert_array_equal(decoded["x"], np.arange(6.0))

    def test_decoded_arrays_are_writable(self):
        decoded, _ = round_trip({"x": np.ones((2, 2))})
        decoded["x"][0, 0] = -1.0
        assert decoded["x"][0, 0] == -1.0

    def test_split_payload_partition(self):
        meta, arrays = split_payload({"a": 1, "b": np.zeros(2), "c": [1]})
        assert meta == {"a": 1, "c": [1]}
        assert set(arrays) == {"b"}


class TestHeaderFuzz:
    def test_is_binary(self):
        body = encode_payload({"op": "stats"})
        assert is_binary(body)
        assert not is_binary(b"\x00\x00\x01\x00")
        assert not is_binary(b"{")

    def test_short_header(self):
        with pytest.raises(BinaryFormatError, match="16 bytes"):
            parse_header(BIN_MAGIC + b"\x00" * 5)

    @pytest.mark.parametrize("cut", [0, 1, 8, 15])
    def test_truncated_body_at_every_boundary(self, cut):
        body = encode_payload({"op": "stats", "x": np.ones(3)})
        with pytest.raises(BinaryFormatError):
            decode_payload(body[:cut])

    def test_bad_magic(self):
        body = bytearray(encode_payload({"op": "stats"}))
        body[0] ^= 0xFF
        with pytest.raises(BinaryFormatError, match="magic"):
            decode_payload(bytes(body))

    def test_zero_meta_length(self):
        header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, 0, 0, 0)
        with pytest.raises(BinaryFormatError, match="zero-length meta"):
            parse_header(header)

    def test_lengths_exceeding_cap(self):
        header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, 1, 64,
                                 0xFFFF_FFF0)
        with pytest.raises(BinaryFormatError, match="exceeds"):
            parse_header(header, max_bytes=1 << 20)

    def test_write_side_cap(self):
        with pytest.raises(BinaryFormatError, match="exceeds"):
            encode_payload({"op": "ingest", "w": np.zeros((64, 64))},
                           max_bytes=1024)

    def test_header_field_ranges(self):
        with pytest.raises(BinaryFormatError, match="out of range"):
            encode_payload({"op": "stats"}, version=256)
        with pytest.raises(BinaryFormatError, match="out of range"):
            encode_payload({"op": "stats"}, op=-1)

    def test_unserializable_meta(self):
        with pytest.raises(BinaryFormatError, match="JSON"):
            encode_payload({"op": object()})


class TestBodyFuzz:
    def _forged(self, meta: dict, payload: bytes = b"") -> bytes:
        """A body whose header is consistent but whose meta lies."""
        meta_bytes = json.dumps(meta).encode()
        narrays = len(meta.get("_arrays", []))
        header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, narrays,
                                 len(meta_bytes), len(payload))
        return header + meta_bytes + payload

    def test_body_length_mismatch(self):
        body = encode_payload({"op": "stats"})
        header = parse_header(body[:BIN_HEADER.size])
        with pytest.raises(BinaryFormatError, match="promised"):
            decode_body(header, body[BIN_HEADER.size:] + b"x")

    def test_malformed_meta_json(self):
        garbage = b"{nope"
        header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, 0, len(garbage), 0)
        with pytest.raises(BinaryFormatError, match="malformed"):
            decode_payload(header + garbage)

    def test_non_object_meta(self):
        blob = b"[1,2]"
        header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, 0, len(blob), 0)
        with pytest.raises(BinaryFormatError, match="JSON object"):
            decode_payload(header + blob)

    def test_missing_arrays_table(self):
        with pytest.raises(BinaryFormatError, match="_arrays"):
            decode_payload(self._forged({"op": "stats"}))

    def test_table_count_disagrees_with_header(self):
        meta_bytes = json.dumps({"op": "x", "_arrays": []}).encode()
        header = BIN_HEADER.pack(BIN_MAGIC, 2, 1, 0, 3, len(meta_bytes), 0)
        with pytest.raises(BinaryFormatError, match="promised 3"):
            decode_payload(header + meta_bytes)

    @pytest.mark.parametrize("entry", [
        "windows",                       # not a list
        ["windows"],                     # missing shape
        [3, [2]],                        # non-string field
        ["w", "shape"],                  # non-list shape
        ["w", [2, -1]],                  # negative dim
        ["w", [2, True]],                # bool dim
        ["w", [2, 2.0]],                 # float dim
    ])
    def test_malformed_table_entries(self, entry):
        body = self._forged({"op": "x", "_arrays": [entry]}, b"\x00" * 32)
        with pytest.raises(BinaryFormatError):
            decode_payload(body)

    def test_shape_claims_more_bytes_than_payload(self):
        body = self._forged({"op": "x", "_arrays": [["w", [1000, 1000]]]},
                            b"\x00" * 64)
        with pytest.raises(BinaryFormatError, match="remain"):
            decode_payload(body)

    def test_huge_shape_cannot_allocate(self):
        # prod(shape) overflows any real payload: must error, not OOM.
        body = self._forged(
            {"op": "x", "_arrays": [["w", [1 << 40, 1 << 40]]]},
            b"\x00" * 8)
        with pytest.raises(BinaryFormatError):
            decode_payload(body)

    def test_trailing_unclaimed_bytes(self):
        body = self._forged({"op": "x", "_arrays": [["w", [2]]]},
                            b"\x00" * 24)
        with pytest.raises(BinaryFormatError, match="trailing"):
            decode_payload(body)

    def test_random_mutations_never_escape_format_error(self):
        rng = np.random.default_rng(11)
        pristine = encode_payload(
            {"op": "ingest", "id": 1, "w": np.ones((3, 4))}, version=2,
            op=1)
        for _ in range(300):
            blob = bytearray(pristine)
            for _ in range(rng.integers(1, 4)):
                blob[rng.integers(0, len(blob))] = rng.integers(0, 256)
            try:
                decoded, _ = decode_payload(bytes(blob))
            except BinaryFormatError:
                continue
            assert isinstance(decoded, dict)
