"""The ``repro lint`` CLI: exit codes, JSON schema, and the self-check
that the shipped tree is invariant-clean."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parent.parent

CLEAN = "x = 1\n"
VIOLATION = 'raise ValueError("seeded")\n'


def _pkg(tmp_path, text):
    """A file whose derived module name lands inside repro.wal."""
    root = tmp_path / "repro"
    wal = root / "wal"
    wal.mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (wal / "__init__.py").write_text("")
    target = wal / "fixture.py"
    target.write_text(text)
    return target


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    target = _pkg(tmp_path, CLEAN)
    assert main(["lint", str(target)]) == 0
    assert capsys.readouterr().out == ""


def test_exit_one_on_findings(tmp_path, capsys):
    target = _pkg(tmp_path, VIOLATION)
    assert main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "typed-raise" in out
    assert f"{target}:1:" in out


def test_exit_two_on_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--format", "yaml"])
    assert excinfo.value.code == 2


def test_missing_path_errors(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "no/such/path"])
    assert "no such file" in str(excinfo.value)


def test_json_schema(tmp_path, capsys):
    target = _pkg(tmp_path, VIOLATION)
    assert main(["lint", str(target), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["total"] == 1
    assert report["counts"] == {"typed-raise": 1}
    (finding,) = report["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message"}
    assert finding["rule"] == "typed-raise"
    assert finding["line"] == 1


def test_json_on_clean_tree(tmp_path, capsys):
    target = _pkg(tmp_path, CLEAN)
    assert main(["lint", str(target), "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"version": 1, "findings": [], "counts": {},
                      "total": 0}


def test_rule_filter_limits_rules(tmp_path, capsys):
    target = _pkg(tmp_path, VIOLATION)
    assert main(["lint", str(target), "--rule", "wire-consts"]) == 0
    assert main(["lint", str(target), "--rule", "wire-consts",
                 "--rule", "typed-raise"]) == 1


def test_suppressed_violation_passes(tmp_path):
    target = _pkg(tmp_path,
                  'raise ValueError("ok")  # repro: allow[typed-raise]\n')
    assert main(["lint", str(target)]) == 0


def test_self_check_src_is_clean(capsys):
    """The acceptance gate: `repro lint src/` reports zero findings.

    Reverting any real fix from this PR (a typed raise, the WAL close
    lock, the gateway executor route, a layer suppression) makes this
    test — and the CI invariants job — fail.
    """
    assert main(["lint", str(REPO / "src"), "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["total"] == 0


def test_self_check_tests_are_clean():
    """The CI invariants job lints tests/ too; fixtures in string
    literals must not trip the live rules."""
    assert main(["lint", str(REPO / "tests")]) == 0
