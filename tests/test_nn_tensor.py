"""Autodiff engine tests: every op checked against numerical gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, positive=False, atol=1e-5):
    """Compare autodiff gradient of sum(op(x)) to finite differences."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    if positive:
        x = np.abs(x) + 0.5
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    expected = numerical_grad(lambda v: float(op(Tensor(v)).sum().numpy()), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda t: t + 3.0, (3, 4))

    def test_mul(self):
        check_gradient(lambda t: t * t, (3, 4))

    def test_sub(self):
        check_gradient(lambda t: 5.0 - t, (4,))

    def test_div(self):
        check_gradient(lambda t: 1.0 / t, (3, 3), positive=True)

    def test_pow(self):
        check_gradient(lambda t: t ** 3, (2, 5))

    def test_exp(self):
        check_gradient(lambda t: t.exp(), (3, 4))

    def test_log(self):
        check_gradient(lambda t: t.log(), (3, 4), positive=True)

    def test_sqrt(self):
        check_gradient(lambda t: t.sqrt(), (3, 4), positive=True)

    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), (3, 4))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), (3, 4))

    def test_relu(self):
        check_gradient(lambda t: t.relu(), (5, 5), seed=3)

    def test_elu(self):
        check_gradient(lambda t: t.elu(), (5, 5), seed=3)

    def test_elu_alpha(self):
        check_gradient(lambda t: t.elu(alpha=0.5), (4, 4))

    def test_abs(self):
        check_gradient(lambda t: t.abs(), (4, 4), positive=True)

    def test_clip(self):
        check_gradient(lambda t: t.clip(-0.5, 0.5), (6,), seed=2)

    def test_neg(self):
        check_gradient(lambda t: -t, (3,))


class TestMatmulGradients:
    def test_matmul_2d(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 5)) @ b.T, atol=1e-10)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 5)), atol=1e-10)

    def test_matmul_batched(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad,
                                   np.ones((2, 3, 5)) @ b.transpose(0, 2, 1),
                                   atol=1e-10)

    def test_matmul_broadcast_2d_vs_3d(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(3, 4))           # broadcast over batch
        b = rng.normal(size=(5, 4, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        out = ta @ tb
        assert out.shape == (5, 3, 2)
        out.sum().backward()
        assert ta.grad.shape == a.shape
        assert tb.grad.shape == b.shape
        expected_a = sum(np.ones((3, 2)) @ b[i].T for i in range(5))
        np.testing.assert_allclose(ta.grad, expected_a, atol=1e-10)

    def test_matvec(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(3, 4))
        v = rng.normal(size=4)
        ta = Tensor(a, requires_grad=True)
        tv = Tensor(v, requires_grad=True)
        (ta @ tv).sum().backward()
        np.testing.assert_allclose(tv.grad, a.sum(axis=0), atol=1e-10)
        np.testing.assert_allclose(ta.grad, np.outer(np.ones(3), v), atol=1e-10)


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=0), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda t: t.sum(axis=1, keepdims=True), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: t.mean(axis=-1), (3, 4))

    def test_var(self):
        check_gradient(lambda t: t.var(axis=0), (5, 3), atol=1e-4)

    def test_max(self):
        # Use distinct values so the max is differentiable.
        x = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(t.grad, expected)

    def test_mean_value(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.mean().item() == pytest.approx(2.5)

    def test_norm(self):
        check_gradient(lambda t: t.norm(axis=-1), (3, 4), atol=1e-4)


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * np.arange(6)).sum(), (2, 3))

    def test_transpose(self):
        check_gradient(lambda t: t.transpose(1, 0) @ Tensor(np.ones((2, 2))), (2, 3))

    def test_swapaxes(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = t.swapaxes(0, 2)
        assert out.shape == (4, 3, 2)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3, 4)))

    def test_getitem_rows(self):
        x = np.arange(12.0).reshape(4, 3)
        t = Tensor(x, requires_grad=True)
        idx = np.array([0, 2, 2])
        t[idx].sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 1
        expected[2] = 2  # row 2 picked twice -> gradient accumulates
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_tuple_index(self):
        x = np.arange(24.0).reshape(2, 4, 3)
        t = Tensor(x, requires_grad=True)
        idx = (slice(None), np.array([1, 3]))
        out = t[idx]
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        expected = np.zeros_like(x)
        expected[:, [1, 3], :] = 1
        np.testing.assert_allclose(t.grad, expected)

    def test_concat(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * np.arange(5)).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile([0, 1, 2], (2, 1)))
        np.testing.assert_allclose(b.grad, np.tile([3, 4], (2, 1)))

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out[0] * 2.0 + out[1] * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones(3))
        np.testing.assert_allclose(b.grad, 3 * np.ones(3))


class TestComposites:
    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        s = t.softmax(axis=-1).numpy()
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_gradient(self):
        check_gradient(lambda t: (t.softmax(axis=-1) * np.arange(4)).sum(),
                       (3, 4), atol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        a = Tensor(x).log_softmax(axis=-1).numpy()
        b = np.log(Tensor(x).softmax(axis=-1).numpy())
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_softmax_stable_for_large_values(self):
        t = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        s = t.softmax(axis=-1).numpy()
        assert np.all(np.isfinite(s))
        np.testing.assert_allclose(s[0, :2], [0.5, 0.5], atol=1e-9)


class TestBroadcasting:
    def test_add_broadcast_gradient(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_mul_broadcast_scalar_like(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.array(2.0), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == ()
        assert float(b.grad) == pytest.approx(6.0)

    def test_broadcast_keepdims_axis(self):
        a = Tensor(np.ones((2, 1, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 4, 3)))
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, 4 * np.ones((2, 1, 3)))


class TestTapeMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = t * 3.0 + t * 4.0
        out.backward()
        assert t.grad[0] == pytest.approx(7.0)

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (t.detach() * t).sum()
        out.backward()
        assert t.grad[0] == pytest.approx(2.0)  # only the live branch

    def test_no_grad_disables_tape(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_backward_deep_chain_iterative(self):
        # Topological sort is iterative: must survive graphs deeper than
        # Python's recursion limit.
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(5000):
            out = out + 1.0
        out.backward()
        assert t.grad[0] == pytest.approx(1.0)

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_scalar_exponent_only(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))


class TestSegmentSum:
    def test_forward_bins_rows(self):
        values = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        out = Tensor.segment_sum(values, np.array([1, 1, 0]), 3)
        np.testing.assert_array_equal(
            out.numpy(), [[5.0, 6.0], [4.0, 6.0], [0.0, 0.0]])

    def test_forward_batched(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(4, 5, 3))
        ids = np.array([0, 2, 2, 1, 0])
        out = Tensor.segment_sum(Tensor(values), ids, 3).numpy()
        expected = np.zeros((4, 3, 3))
        for e, t in enumerate(ids):
            expected[:, t, :] += values[:, e, :]
        np.testing.assert_allclose(out, expected)

    def test_backward_is_gather(self):
        values = Tensor(np.random.default_rng(1).normal(size=(2, 4, 3)),
                        requires_grad=True)
        ids = np.array([1, 0, 1, 2])
        out = Tensor.segment_sum(values, ids, 3)
        upstream = np.random.default_rng(2).normal(size=out.shape)
        out.backward(upstream)
        np.testing.assert_allclose(values.grad, upstream[:, ids, :])

    def test_gradcheck(self):
        from repro.nn.gradcheck import check_gradients
        values = Tensor(np.random.default_rng(3).normal(size=(2, 6, 4)),
                        requires_grad=True)
        ids = np.array([0, 1, 1, 3, 3, 3])

        def loss():
            return (Tensor.segment_sum(values, ids, 4) ** 2).sum()

        check_gradients(loss, [("values", values)], sample=None)

    def test_empty_segments(self):
        out = Tensor.segment_sum(Tensor(np.zeros((2, 0, 3))),
                                 np.array([], dtype=np.int64), 4)
        np.testing.assert_array_equal(out.numpy(), np.zeros((2, 4, 3)))

    def test_id_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Tensor.segment_sum(Tensor(np.zeros((2, 2))), np.array([0, 5]), 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Tensor.segment_sum(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]), 3)
        with pytest.raises(ValueError):
            Tensor.segment_sum(Tensor(np.zeros(3)), np.array([0, 1, 2]), 3)


class TestRowStableGemm:
    def test_pad_gemm_rows_pads_small(self):
        from repro.nn.tensor import MIN_STABLE_GEMM_ROWS, pad_gemm_rows
        padded, rows = pad_gemm_rows(np.ones((3, 5)))
        assert rows == 3
        assert padded.shape == (MIN_STABLE_GEMM_ROWS, 5)
        np.testing.assert_array_equal(padded[3:], 0.0)

    def test_pad_gemm_rows_passthrough(self):
        from repro.nn.tensor import MIN_STABLE_GEMM_ROWS, pad_gemm_rows
        big = np.ones((MIN_STABLE_GEMM_ROWS, 2))
        padded, rows = pad_gemm_rows(big)
        assert padded is big and rows == MIN_STABLE_GEMM_ROWS
