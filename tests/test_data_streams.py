"""Tests for the trend-shift deployment stream."""

import numpy as np
import pytest

from repro.data import TrendShiftConfig, TrendShiftStream


@pytest.fixture()
def stream(frame_generator):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        initial_class="Stealing", shifted_class="Robbery",
        steps_before_shift=3, steps_after_shift=4,
        windows_per_step=10, anomaly_fraction=0.3, window=4, seed=11))


class TestStreamStructure:
    def test_length(self, stream):
        assert len(stream) == 7

    def test_shift_timing(self, stream):
        batches = list(stream)
        for batch in batches[:3]:
            assert batch.active_class == "Stealing"
            assert not batch.is_post_shift
        for batch in batches[3:]:
            assert batch.active_class == "Robbery"
            assert batch.is_post_shift

    def test_batch_composition(self, stream, embedding_model):
        batch = stream.batch(0)
        assert batch.windows.shape == (10, 4, embedding_model.frame_dim)
        assert batch.labels.sum() == 3  # 30% of 10

    def test_batches_shuffled(self, stream):
        """Anomalous windows must not all sit at the end (monitor realism)."""
        positions = [np.flatnonzero(stream.batch(s).labels) for s in range(5)]
        assert any(p[0] < 5 for p in positions if len(p))

    def test_out_of_range_step(self, stream):
        with pytest.raises(IndexError):
            stream.batch(7)

    def test_deterministic(self, frame_generator):
        cfg = TrendShiftConfig(steps_before_shift=2, steps_after_shift=2,
                               windows_per_step=6, window=4, seed=3)
        a = TrendShiftStream(frame_generator, cfg).batch(1)
        b = TrendShiftStream(frame_generator, cfg).batch(1)
        np.testing.assert_allclose(a.windows, b.windows)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_steps_differ(self, stream):
        a, b = stream.batch(0), stream.batch(1)
        assert not np.allclose(a.windows, b.windows)


class TestShiftStrengthMetadata:
    def test_weak(self):
        cfg = TrendShiftConfig(initial_class="Stealing", shifted_class="Robbery")
        assert cfg.shift_strength == "weak"

    def test_strong(self):
        cfg = TrendShiftConfig(initial_class="Stealing", shifted_class="Explosion")
        assert cfg.shift_strength == "strong"

    def test_total_steps(self):
        cfg = TrendShiftConfig(steps_before_shift=5, steps_after_shift=7)
        assert cfg.total_steps == 12
