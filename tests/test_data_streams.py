"""Tests for the trend-shift deployment stream."""

import hashlib

import numpy as np
import pytest

from repro.data import TrendShiftConfig, TrendShiftStream
from repro.utils.rng import derive_rng


def _digest(array) -> str:
    data = np.ascontiguousarray(array, dtype=np.float64)
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


@pytest.fixture()
def stream(frame_generator):
    return TrendShiftStream(frame_generator, TrendShiftConfig(
        initial_class="Stealing", shifted_class="Robbery",
        steps_before_shift=3, steps_after_shift=4,
        windows_per_step=10, anomaly_fraction=0.3, window=4, seed=11))


class TestStreamStructure:
    def test_length(self, stream):
        assert len(stream) == 7

    def test_shift_timing(self, stream):
        batches = list(stream)
        for batch in batches[:3]:
            assert batch.active_class == "Stealing"
            assert not batch.is_post_shift
        for batch in batches[3:]:
            assert batch.active_class == "Robbery"
            assert batch.is_post_shift

    def test_batch_composition(self, stream, embedding_model):
        batch = stream.batch(0)
        assert batch.windows.shape == (10, 4, embedding_model.frame_dim)
        assert batch.labels.sum() == 3  # 30% of 10

    def test_batches_shuffled(self, stream):
        """Anomalous windows must not all sit at the end (monitor realism)."""
        positions = [np.flatnonzero(stream.batch(s).labels) for s in range(5)]
        assert any(p[0] < 5 for p in positions if len(p))

    def test_out_of_range_step(self, stream):
        with pytest.raises(IndexError):
            stream.batch(7)

    def test_deterministic(self, frame_generator):
        cfg = TrendShiftConfig(steps_before_shift=2, steps_after_shift=2,
                               windows_per_step=6, window=4, seed=3)
        a = TrendShiftStream(frame_generator, cfg).batch(1)
        b = TrendShiftStream(frame_generator, cfg).batch(1)
        np.testing.assert_allclose(a.windows, b.windows)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_steps_differ(self, stream):
        a, b = stream.batch(0), stream.batch(1)
        assert not np.allclose(a.windows, b.windows)


class TestBulkGenerationBitIdentity:
    """The vectorized stream path must emit bit-identical windows.

    ``TrendShiftStream.batch`` generates all frames per batch in bulk;
    these tests lock it to the original per-frame loop two ways: directly
    against sequential single-frame generator calls (any seed), and
    against golden digests captured from the pre-vectorization
    implementation on the default seeds (so both paths drifting together
    still fails).
    """

    def test_normal_frames_match_sequential_calls(self, frame_generator):
        bulk = frame_generator.normal_frames(7, derive_rng(123, "bulk"))
        rng = derive_rng(123, "bulk")
        sequential = np.stack([frame_generator.normal_frame(rng)
                               for _ in range(7)])
        np.testing.assert_array_equal(bulk, sequential)

    def test_anomaly_frames_match_sequential_calls(self, frame_generator):
        bulk = frame_generator.anomaly_frames("Robbery", 5,
                                              derive_rng(9, "bulk"))
        rng = derive_rng(9, "bulk")
        sequential = np.stack([frame_generator.anomaly_frame("Robbery", rng)
                               for _ in range(5)])
        np.testing.assert_array_equal(bulk, sequential)

    def test_zero_frames(self, frame_generator):
        rng = derive_rng(1, "empty")
        assert frame_generator.normal_frames(0, rng).shape == (0, 192)
        # A zero-count call must not consume any RNG state.
        untouched = derive_rng(1, "empty")
        np.testing.assert_array_equal(rng.normal(size=4),
                                      untouched.normal(size=4))

    def test_unknown_class_rejected(self, frame_generator):
        with pytest.raises(KeyError, match="unknown anomaly class"):
            frame_generator.anomaly_frames("Jaywalking", 2, derive_rng(1, "x"))

    def test_batch_matches_per_frame_loop(self, frame_generator):
        """Windows equal the original implementation's nested loops."""
        cfg = TrendShiftConfig(windows_per_step=6, window=4,
                               anomaly_fraction=0.5, seed=21)
        stream = TrendShiftStream(frame_generator, cfg)
        batch = stream.batch(1)

        rng = derive_rng(cfg.seed, "stream", 1)
        windows, labels = [], []
        for _ in range(3):  # normals first, then anomalies, then shuffle
            windows.append(np.stack([frame_generator.normal_frame(rng)
                                     for _ in range(cfg.window)]))
            labels.append(0)
        for _ in range(3):
            windows.append(np.stack(
                [frame_generator.anomaly_frame(batch.active_class, rng)
                 for _ in range(cfg.window)]))
            labels.append(1)
        order = rng.permutation(len(windows))
        np.testing.assert_array_equal(batch.windows, np.stack(windows)[order])
        np.testing.assert_array_equal(
            batch.labels, np.array(labels, dtype=np.int64)[order])

    # Digests of batch windows/labels emitted by the pre-vectorization
    # per-frame implementation (seed-7 embedding model; stream contents
    # do not depend on the generator's own seed).
    GOLDEN = {
        (7, 24, 8): ("53fcdd441befe7f5", "cd127645bb5ace79",
                     "dfb5063ac896a137"),
        (11, 3, 4): ("92eabf324cec2682", "17550ce418055ff4",
                     "beac02c8b56db05f"),
        (100, 2, 8): ("bca4603ab25849ce", "fc62429c3e69001d",
                      "fc5f5702f6a78119"),
    }

    @pytest.mark.parametrize("config", [
        TrendShiftConfig(),
        TrendShiftConfig(windows_per_step=3, window=4, steps_before_shift=2,
                         steps_after_shift=2, seed=11),
        TrendShiftConfig(initial_class="Stealing", shifted_class="Explosion",
                         seed=100, windows_per_step=2),
    ], ids=["default", "small", "strong-shift"])
    def test_golden_values_default_seeds(self, frame_generator, config):
        stream = TrendShiftStream(frame_generator, config)
        first = stream.batch(0)
        last = stream.batch(config.total_steps - 1)
        key = (config.seed, config.windows_per_step, config.window)
        assert (_digest(first.windows), _digest(first.labels),
                _digest(last.windows)) == self.GOLDEN[key]


class TestShiftStrengthMetadata:
    def test_weak(self):
        cfg = TrendShiftConfig(initial_class="Stealing", shifted_class="Robbery")
        assert cfg.shift_strength == "weak"

    def test_strong(self):
        cfg = TrendShiftConfig(initial_class="Stealing", shifted_class="Explosion")
        assert cfg.shift_strength == "strong"

    def test_total_steps(self):
        cfg = TrendShiftConfig(steps_before_shift=5, steps_after_shift=7)
        assert cfg.total_steps == 12
