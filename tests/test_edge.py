"""Tests for the edge/cloud cost models (Table I substrate)."""

import pytest

from repro.edge import (
    GPT4_KG_GENERATION_FLOPS,
    CloudBaseline,
    EdgeDeviceModel,
    EfficiencyComparison,
    count_adaptation_step,
    count_gnn_forward,
    count_model_forward,
    count_temporal_forward,
)


class TestFlopCounting:
    def test_all_components_positive(self, fresh_model):
        counts = count_model_forward(fresh_model(window=4))
        assert counts.image_encoder > 0
        assert counts.gnn > 0
        assert counts.temporal > 0
        assert counts.decision > 0
        assert counts.total == pytest.approx(
            counts.image_encoder + counts.gnn + counts.temporal + counts.decision)

    def test_gnn_flops_scale_with_nodes(self, fresh_model, rng):
        model = fresh_model()
        base = count_gnn_forward(model)
        kg = model.kgs[0]
        kg.create_node(level=2, token_dim=model.embedding_model.token_dim,
                       n_tokens=2, rng=rng)
        model.reasoners[0].refresh_structure()
        assert count_gnn_forward(model) > base

    def test_temporal_flops_scale_with_window(self, fresh_model):
        small = count_temporal_forward(fresh_model(window=4))
        large = count_temporal_forward(fresh_model(window=8))
        assert large > small

    def test_adaptation_step_scaling(self, fresh_model):
        model = fresh_model(window=4)
        one = count_adaptation_step(model, batch_windows=10, inner_steps=1, rounds=1)
        more_rounds = count_adaptation_step(model, 10, 1, 4)
        more_inner = count_adaptation_step(model, 10, 4, 1)
        assert more_rounds == pytest.approx(4 * one)
        assert more_inner > one

    def test_edge_adaptation_in_paper_regime(self, fresh_model):
        """The paper reports ~1e9 FLOPs/day for edge adaptation; our counted
        cost must land within a couple of orders of magnitude."""
        model = fresh_model(window=8)
        flops = count_adaptation_step(model, batch_windows=30,
                                      inner_steps=3, rounds=6)
        assert 1e7 < flops < 1e11


class TestDeviceModel:
    def test_storage_includes_model_and_kg(self, fresh_model):
        device = EdgeDeviceModel()
        model = fresh_model()
        assert device.model_bytes(model) == model.num_parameters() * 8
        assert device.kg_bytes(model.kgs[0]) > 0
        assert device.storage_gb(model) > 0

    def test_energy_linear_in_flops(self):
        device = EdgeDeviceModel(joules_per_flop=1e-10)
        assert device.adaptation_energy_joules(1e10) == pytest.approx(1.0)

    def test_latency(self):
        device = EdgeDeviceModel()
        assert device.inference_latency_seconds(1e10, 1e10) == pytest.approx(1.0)


class TestCloudBaseline:
    def test_paper_constants(self):
        cloud = CloudBaseline()
        assert cloud.updates_per_month == 4
        assert cloud.gpt4_flops_per_update == GPT4_KG_GENERATION_FLOPS
        assert cloud.monthly_flops == pytest.approx(4e15)
        assert cloud.monthly_update_minutes == pytest.approx(4.0)
        assert cloud.monthly_bandwidth_gb == pytest.approx(2.0)

    def test_scalability_string(self):
        assert "Cloud" in CloudBaseline().scalability()


class TestEfficiencyComparison:
    @pytest.fixture()
    def comparison(self, fresh_model):
        return EfficiencyComparison(model=fresh_model(window=8),
                                    auc_baseline=0.93, auc_proposed=0.91)

    def test_row_count_matches_paper_table(self, comparison):
        rows = comparison.rows()
        # Paper Table I: 6 initial setup + 11 monthly + 3 operational.
        assert len(rows) == 20

    def test_proposed_has_zero_cloud_costs(self, comparison):
        rows = {r.metric: r for r in comparison.rows()}
        assert rows["KG Update Frequency (per month)"].proposed == "0"
        assert rows["Total GPT-4 Computational Cost (FLOPs/month)"].proposed == "0"
        assert rows["Memory Usage for GPT-4 during Updates (GB)"].proposed == "0"
        assert rows["Network Bandwidth Usage for KG Updates (GB/month)"].proposed == "Zero"

    def test_baseline_has_no_edge_costs(self, comparison):
        rows = {r.metric: r for r in comparison.rows()}
        assert rows["Edge Device Computational Cost per Adaptation (FLOPs/day)"].baseline == "N/A"

    def test_human_intervention_asymmetry(self, comparison):
        monthly = [r for r in comparison.rows()
                   if r.section == "Monthly Updates" and r.metric == "Human Intervention"]
        assert monthly[0].baseline == "Yes"
        assert monthly[0].proposed == "No"

    def test_auc_rows_use_measured_values(self, comparison):
        rows = {r.metric: r for r in comparison.rows()}
        assert rows["Average AUC score"].baseline == "0.93"
        assert rows["Average AUC score"].proposed == "0.91"

    def test_monthly_flops_consistency(self, comparison):
        assert comparison.edge_flops_per_month == pytest.approx(
            30 * comparison.edge_flops_per_day)

    def test_format_table_renders(self, comparison):
        text = comparison.format_table()
        assert "Initial Setup" in text
        assert "Average AUC score" in text
        assert "Proposed (Edge)" in text
