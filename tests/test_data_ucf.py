"""Tests for the SyntheticUCFCrime dataset schema."""

import numpy as np
import pytest

from repro.concepts import ANOMALY_CLASSES
from repro.data import SyntheticUCFCrime


@pytest.fixture(scope="module")
def small_dataset(frame_generator):
    return SyntheticUCFCrime(frame_generator, scale=0.05,
                             frames_per_video=24, seed=5)


class TestSchema:
    def test_full_scale_matches_paper_split(self, frame_generator):
        """At scale=1.0 the split sizes match UCF-Crime exactly (within the
        per-class rounding of the anomalous sets)."""
        ds = SyntheticUCFCrime(frame_generator, scale=1.0, seed=5)
        assert len(ds.train.normal) == 800
        assert len(ds.test.normal) == 150
        # 810 / 13 classes = 62 per class -> 806; 140 / 13 = 10 -> 130.
        assert len(ds.train.anomalous) == (810 // 13) * 13
        assert len(ds.test.anomalous) == (140 // 13) * 13

    def test_all_thirteen_classes_represented(self, small_dataset):
        kinds = {k.kind for k in small_dataset.train.anomalous}
        assert kinds == set(ANOMALY_CLASSES)

    def test_scale_bounds(self, frame_generator):
        with pytest.raises(ValueError):
            SyntheticUCFCrime(frame_generator, scale=0.0)
        with pytest.raises(ValueError):
            SyntheticUCFCrime(frame_generator, scale=1.5)

    def test_num_videos_property(self, small_dataset):
        split = small_dataset.train
        assert split.num_videos == len(split.normal) + len(split.anomalous)


class TestMaterialization:
    def test_videos_lazy_and_cached(self, small_dataset):
        small_dataset.clear_cache()
        key = small_dataset.train.normal[0]
        video1 = small_dataset.video(key)
        video2 = small_dataset.video(key)
        assert video1 is video2  # cached

    def test_videos_deterministic_across_instances(self, frame_generator):
        a = SyntheticUCFCrime(frame_generator, scale=0.05, frames_per_video=16, seed=9)
        b = SyntheticUCFCrime(frame_generator, scale=0.05, frames_per_video=16, seed=9)
        key = a.train.normal[0]
        np.testing.assert_allclose(a.video(key).frames, b.video(key).frames)

    def test_seed_changes_videos(self, frame_generator):
        a = SyntheticUCFCrime(frame_generator, scale=0.05, frames_per_video=16, seed=9)
        b = SyntheticUCFCrime(frame_generator, scale=0.05, frames_per_video=16, seed=10)
        key = a.train.normal[0]
        assert not np.allclose(a.video(key).frames, b.video(key).frames)

    def test_class_videos_filter(self, small_dataset):
        videos = small_dataset.class_videos("test", "Robbery")
        assert videos
        assert all(v.anomaly_class == "Robbery" for v in videos)

    def test_class_videos_unknown_class(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.class_videos("test", "Nope")

    def test_split_name_validation(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.normal_videos("validation")


class TestMissionWindows:
    def test_binary_labels(self, small_dataset):
        windows, labels = small_dataset.mission_windows(
            "train", "Stealing", window=8, stride=4,
            normal_videos=3, anomaly_videos=2)
        assert windows.ndim == 3
        assert set(np.unique(labels)) <= {0, 1}

    def test_anomalous_untrimmed_videos_contribute_normal_windows(self, small_dataset):
        """UCF-Crime anomalous videos are untrimmed: windows outside the
        anomaly segment count as normal."""
        windows, labels = small_dataset.mission_windows(
            "train", "Stealing", window=8, stride=1,
            normal_videos=0, anomaly_videos=2)
        assert (labels == 0).any()
        assert (labels == 1).any()

    def test_limits_respected(self, small_dataset, frame_generator):
        few, _ = small_dataset.mission_windows(
            "train", "Arson", window=8, stride=8, normal_videos=1,
            anomaly_videos=1)
        more, _ = small_dataset.mission_windows(
            "train", "Arson", window=8, stride=8, normal_videos=2,
            anomaly_videos=1)
        assert more.shape[0] > few.shape[0]
