"""Tests for the alternative change detectors (Page-Hinkley, CUSUM)."""

import numpy as np
import pytest

from repro.adaptation import CUSUM, ChangeDetectorMonitor, PageHinkley


def stable_then_drop(n_stable=60, n_after=60, before=0.5, after=0.2,
                     noise=0.02, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate([
        before + noise * rng.standard_normal(n_stable),
        after + noise * rng.standard_normal(n_after),
    ])


class TestPageHinkley:
    def test_detects_mean_drop(self):
        detector = PageHinkley(delta=0.005, threshold=0.5)
        fired_at = [i for i, s in enumerate(stable_then_drop())
                    if detector.update(float(s))]
        assert fired_at, "mean drop not detected"
        assert fired_at[0] >= 60  # not before the change

    def test_quiet_on_stable_stream(self):
        detector = PageHinkley(delta=0.005, threshold=0.5)
        rng = np.random.default_rng(1)
        stream = 0.5 + 0.02 * rng.standard_normal(400)
        assert not any(detector.update(float(s)) for s in stream)

    def test_burn_in_suppresses_early_alarms(self):
        detector = PageHinkley(delta=0.0, threshold=0.01, burn_in=50)
        stream = stable_then_drop(n_stable=10, n_after=10)
        assert not any(detector.update(float(s)) for s in stream[:20])

    def test_resets_after_detection(self):
        detector = PageHinkley(delta=0.005, threshold=0.3)
        for s in stable_then_drop():
            detector.update(float(s))
        # After a reset, the internal cumulative state starts over.
        assert detector._count < 120

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)


class TestCUSUM:
    def test_detects_shift(self):
        detector = CUSUM(k=0.5, h=5.0, burn_in=40)
        fired = [i for i, s in enumerate(stable_then_drop(noise=0.03, seed=2))
                 if detector.update(float(s))]
        assert fired
        assert fired[0] >= 60

    def test_quiet_on_stable_stream(self):
        detector = CUSUM(k=0.5, h=6.0)
        rng = np.random.default_rng(3)
        stream = 0.5 + 0.02 * rng.standard_normal(400)
        assert not any(detector.update(float(s)) for s in stream)

    def test_two_sided_detects_rise(self):
        detector = CUSUM(k=0.25, h=4.0)
        rng = np.random.default_rng(4)
        stream = np.concatenate([
            0.2 + 0.03 * rng.standard_normal(60),
            0.6 + 0.03 * rng.standard_normal(60),
        ])
        assert any(detector.update(float(s)) for s in stream)

    def test_h_validation(self):
        with pytest.raises(ValueError):
            CUSUM(h=0.0)


class TestChangeDetectorMonitor:
    def test_drives_topk_labeling(self):
        monitor = ChangeDetectorMonitor(
            detector=PageHinkley(delta=0.005, threshold=0.3), window=40, k=5)
        stream = stable_then_drop()
        fired = any(monitor.observe(stream[i:i + 10])
                    for i in range(0, stream.size, 10))
        assert fired
        assert monitor.detections >= 1
        top = monitor.top_k_indices()
        assert top.size == 5
        assert np.all(np.diff(top) > 0)  # sorted, unique

    def test_window_retention(self):
        monitor = ChangeDetectorMonitor(detector=CUSUM(), window=10, k=3)
        monitor.observe(np.zeros(25))
        assert len(monitor._scores) == 10

    def test_k_capped_by_window(self):
        monitor = ChangeDetectorMonitor(detector=CUSUM(), window=10, k=50)
        monitor.observe(np.linspace(0, 1, 8))
        assert monitor.top_k_indices().size == 8
