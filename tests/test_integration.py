"""End-to-end integration tests over the full pipeline.

These exercise the complete paper workflow at small scale:
KG generation -> training -> deployment -> continuous adaptation ->
interpretable retrieval -> serialization round trip.
"""

import numpy as np
import pytest

from repro.adaptation import (
    AdaptationConfig,
    ContinuousAdaptationController,
    InterpretableKGRetrieval,
    MonitorConfig,
)
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.eval import roc_auc
from repro.kg import kg_from_dict, kg_to_dict


@pytest.mark.slow
class TestFullPipeline:
    def test_train_deploy_adapt_cycle(self, trained_context):
        ctx = trained_context
        model = ctx.train_model("Stealing")

        # 1. Deployment-quality detection on the mission class.
        windows, labels = ctx.eval_windows("Stealing")
        assert roc_auc(model.anomaly_scores(windows), labels) > 0.75

        # 2. Continuous adaptation through a trend shift.
        controller = ContinuousAdaptationController(
            model,
            AdaptationConfig(monitor=MonitorConfig(window=36, lag=18)),
            normal_anchor_windows=ctx.normal_anchors("Stealing"))
        stream = TrendShiftStream(ctx.generator, TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=3, steps_after_shift=8, windows_per_step=12,
            window=ctx.config.window, seed=11))
        for batch in stream:
            controller.process_batch(batch.windows)
        assert controller.update_count > 0

        # 3. The adapted model still produces calibrated scores.
        scores = model.anomaly_scores(windows)
        assert np.all((scores >= 0) & (scores <= 1))

        # 4. Interpretable retrieval on the adapted KG works for all nodes.
        retrieval = InterpretableKGRetrieval(ctx.embedding_model.token_table)
        results = retrieval.retrieve_kg(model.kgs[0])
        assert all(r.top_words() for r in results)

        # 5. The adapted KG serializes and reloads with invariants intact.
        restored = kg_from_dict(kg_to_dict(model.kgs[0]))
        restored.validate()
        node = model.kgs[0].concept_nodes()[0]
        np.testing.assert_allclose(
            restored.node(node.node_id).token_embeddings,
            node.token_embeddings)

    def test_adaptation_beats_static_on_shift(self, trained_context):
        """The paper's headline claim at miniature scale: after a weak trend
        shift, the adaptive model's AUC on the new anomaly meets or beats the
        static model's."""
        ctx = trained_context
        adaptive = ctx.train_model("Stealing")
        static = ctx.train_model("Stealing")
        eval_w, eval_l = ctx.eval_windows("Robbery")

        controller = ContinuousAdaptationController(
            adaptive,
            AdaptationConfig(monitor=MonitorConfig(window=36, lag=18)),
            normal_anchor_windows=ctx.normal_anchors("Stealing"))
        stream = TrendShiftStream(ctx.generator, TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=3, steps_after_shift=10, windows_per_step=12,
            window=ctx.config.window, seed=11))
        for batch in stream:
            controller.process_batch(batch.windows)

        auc_adaptive = roc_auc(adaptive.anomaly_scores(eval_w), eval_l)
        auc_static = roc_auc(static.anomaly_scores(eval_w), eval_l)
        # Allow a small tolerance: at this scale a tie is acceptable, a
        # regression is not.
        assert auc_adaptive >= auc_static - 0.05

    def test_deployment_artifact_roundtrip(self, trained_context, tmp_path):
        """Ship the KG to 'the edge' via a file and keep detecting."""
        from repro.gnn import MissionGNNConfig, MissionGNNModel
        from repro.kg import load_kg, save_kg

        ctx = trained_context
        model = ctx.train_model("Stealing")
        path = tmp_path / "deployed_kg.json"
        save_kg(model.kgs[0], path)
        kg = load_kg(path)
        edge_model = MissionGNNModel([kg], ctx.embedding_model,
                                     MissionGNNConfig(
                                         temporal_window=ctx.config.window,
                                         seed=ctx.config.seed))
        edge_model.load_state_dict(model.state_dict())
        # A real deployment ships normalization statistics with the weights.
        for src, dst in zip(model.reasoners[0].gnn.layers,
                            edge_model.reasoners[0].gnn.layers):
            dst.norm.running_mean = src.norm.running_mean.copy()
            dst.norm.running_var = src.norm.running_var.copy()
        edge_model.eval()
        windows, labels = ctx.eval_windows("Stealing")
        np.testing.assert_allclose(edge_model.anomaly_scores(windows),
                                   model.anomaly_scores(windows), atol=1e-9)
