"""Tests for the multi-mission (multi-KG) evaluation harness."""

import numpy as np
import pytest

from repro.eval.multimission import MultiMissionExperiment, MultiMissionResult


class TestValidation:
    def test_needs_two_missions(self, trained_context):
        with pytest.raises(ValueError):
            MultiMissionExperiment(trained_context, ["Stealing"])

    def test_missions_must_be_distinct(self, trained_context):
        with pytest.raises(ValueError):
            MultiMissionExperiment(trained_context, ["Stealing", "Stealing"])


class TestTrainingData:
    def test_labels_are_type_indexed(self, trained_context):
        experiment = MultiMissionExperiment(
            trained_context, ["Stealing", "Explosion"])
        windows, labels = experiment.training_data()
        assert windows.shape[0] == labels.shape[0]
        assert set(np.unique(labels)) <= {0, 1, 2}
        assert (labels == 1).any() and (labels == 2).any()

    def test_model_has_one_kg_per_mission(self, trained_context):
        experiment = MultiMissionExperiment(
            trained_context, ["Stealing", "Explosion", "Arrest"])
        model = experiment.build_model()
        assert len(model.kgs) == 3
        assert model.decision.num_anomaly_types == 3
        assert {kg.mission for kg in model.kgs} == {"Stealing", "Explosion",
                                                    "Arrest"}


@pytest.mark.slow
class TestMultiMissionRun:
    @pytest.fixture(scope="class")
    def result(self, trained_context) -> MultiMissionResult:
        experiment = MultiMissionExperiment(
            trained_context, ["Stealing", "Explosion"], train_steps=250)
        return experiment.run()

    def test_detects_both_classes(self, result):
        assert set(result.auc_per_class) == {"Stealing", "Explosion"}
        for mission, auc in result.auc_per_class.items():
            assert auc > 0.7, f"{mission} detection failed ({auc:.3f})"

    def test_type_classification_beats_chance(self, result):
        assert result.type_accuracy > 0.6  # chance = 0.5 for two types

    def test_confusion_matrix_shape(self, result):
        assert result.type_confusion.shape == (2, 2)
        assert result.type_confusion.sum() == 24  # 12 windows per class

    def test_summary_renders(self, result):
        text = result.summary()
        assert "Stealing" in text and "Explosion" in text
        assert "type accuracy" in text
