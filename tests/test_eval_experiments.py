"""Tests for the experiment harnesses (context caching, determinism, shapes).

The heavy full-scale runs live in benchmarks/; here we verify the harness
machinery itself with the shared small trained context.
"""

import numpy as np
import pytest

from repro.data import TrendShiftConfig
from repro.eval import (
    EfficiencyExperiment,
    RetrievalDriftExperiment,
    TrendShiftExperiment,
    ascii_series,
    format_retrieval_drift,
    format_trend_shift,
)


class TestExperimentContext:
    def test_kg_cache_returns_fresh_copies(self, trained_context):
        a = trained_context.generate_kg("Stealing")
        b = trained_context.generate_kg("Stealing")
        assert a is not b
        node = a.concept_nodes()[0]
        node.token_embeddings += 1.0
        other = b.node(node.node_id)
        assert not np.allclose(node.token_embeddings, other.token_embeddings)

    def test_trained_model_reload_is_deterministic(self, trained_context, rng):
        windows, _ = trained_context.eval_windows("Stealing")
        a = trained_context.train_model("Stealing")
        b = trained_context.train_model("Stealing")
        assert a is not b
        np.testing.assert_allclose(a.anomaly_scores(windows[:5]),
                                   b.anomaly_scores(windows[:5]))

    def test_trained_model_separates_mission_class(self, trained_context):
        from repro.eval import roc_auc
        model = trained_context.train_model("Stealing")
        windows, labels = trained_context.eval_windows("Stealing")
        assert roc_auc(model.anomaly_scores(windows), labels) > 0.75

    def test_eval_windows_deterministic(self, trained_context):
        a, la = trained_context.eval_windows("Robbery")
        b, lb = trained_context.eval_windows("Robbery")
        np.testing.assert_allclose(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_eval_windows_balanced(self, trained_context):
        cfg = trained_context.config
        windows, labels = trained_context.eval_windows("Arson")
        assert (labels == 0).sum() == cfg.eval_normal_windows
        assert (labels == 1).sum() == cfg.eval_anomaly_windows

    def test_normal_anchors_are_normal(self, trained_context):
        anchors = trained_context.normal_anchors("Stealing", count=10)
        assert anchors.ndim == 3
        assert anchors.shape[0] <= 10


class TestTrendShiftHarness:
    @pytest.fixture(scope="class")
    def result(self, trained_context):
        experiment = TrendShiftExperiment(trained_context, TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=2, steps_after_shift=4, windows_per_step=12,
            window=trained_context.config.window, seed=11))
        return experiment.run()

    def test_result_shape(self, result):
        assert len(result.steps) == 6
        assert len(result.auc_adaptive) == 6
        assert len(result.auc_static) == 6
        assert result.shift_step == 2
        assert result.shift_strength == "weak"

    def test_static_pre_shift_auc_reasonable(self, result):
        pre = [a for s, a in zip(result.steps, result.auc_static) if s < 2]
        assert min(pre) > 0.6

    def test_category_means_bucketing(self, result):
        means = result.category_means(categories=2)
        assert len(means["adaptive"]) == 2
        assert len(means["static"]) == 2

    def test_static_trace_constant(self, result):
        """Without adaptation the model never changes, so its AUC on a fixed
        eval set is constant within each phase."""
        post = [a for s, a in zip(result.steps, result.auc_static) if s >= 2]
        assert max(post) - min(post) < 1e-9

    def test_formatting(self, result):
        text = format_trend_shift(result, categories=2)
        assert "Stealing -> Robbery" in text
        assert "weak" in text


class TestRetrievalDriftHarness:
    def test_drift_runs_and_records(self, trained_context):
        experiment = RetrievalDriftExperiment(
            trained_context,
            stream_config=TrendShiftConfig(
                initial_class="Stealing", shifted_class="Robbery",
                steps_before_shift=2, steps_after_shift=3, windows_per_step=12,
                window=trained_context.config.window, seed=11))
        result = experiment.run()
        assert result.tracked_node_text
        assert len(result.trajectory.iterations) >= 2
        assert 0 in result.retrieved_words
        text = format_retrieval_drift(result)
        assert result.tracked_node_text in text


class TestEfficiencyHarness:
    def test_measures_both_strategies(self, trained_context):
        experiment = EfficiencyExperiment(
            trained_context, class_a="Stealing", class_b="Stealing",
            alternations=2, steps_per_phase=2)
        result = experiment.run()
        assert 0.0 <= result.auc_baseline <= 1.0
        assert 0.0 <= result.auc_proposed <= 1.0
        assert len(result.phase_aucs_baseline) == 2
        assert len(result.phase_aucs_proposed) == 2
        assert result.kg_regenerations_baseline == 2


class TestReportingHelpers:
    def test_ascii_series(self):
        lines = ascii_series([0.0, 0.5, 1.0], width=10)
        assert lines[0].startswith("." * 10)
        assert lines[2].startswith("#" * 10)
