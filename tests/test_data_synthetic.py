"""Tests for synthetic frame/video generation."""

import numpy as np
import pytest

from repro.data import make_windows


class TestFrameGenerator:
    def test_anomaly_frame_shape(self, frame_generator, embedding_model, rng):
        frame = frame_generator.anomaly_frame("Robbery", rng)
        assert frame.shape == (embedding_model.frame_dim,)

    def test_normal_frame_shape(self, frame_generator, embedding_model, rng):
        frame = frame_generator.normal_frame(rng)
        assert frame.shape == (embedding_model.frame_dim,)

    def test_unknown_class_raises(self, frame_generator, rng):
        with pytest.raises(KeyError):
            frame_generator.anomaly_frame("NotAClass", rng)

    def test_class_frames_align_with_class_text(self, frame_generator,
                                                 embedding_model, rng):
        """Rendered Robbery frames must embed closer to robbery concepts
        than to normal activities — the foundation of the whole evaluation."""
        same, other = [], []
        for _ in range(20):
            frame = frame_generator.anomaly_frame("Robbery", rng)
            same.append(embedding_model.alignment(frame, "firearm"))
            other.append(embedding_model.alignment(frame, "walking"))
        assert np.mean(same) > np.mean(other) + 0.04

    def test_weak_pair_frames_closer_than_strong(self, frame_generator,
                                                 embedding_model, rng):
        """Stealing frames look more like Robbery than like Explosion."""
        weak, strong = [], []
        robbery_anchor = embedding_model.concept_space.class_anchor("Robbery")
        explosion_anchor = embedding_model.concept_space.class_anchor("Explosion")
        for _ in range(20):
            encoded = embedding_model.encode_image(
                frame_generator.anomaly_frame("Stealing", rng))
            encoded /= np.linalg.norm(encoded)
            weak.append(encoded @ robbery_anchor)
            strong.append(encoded @ explosion_anchor)
        assert np.mean(weak) > np.mean(strong) + 0.04

    def test_frames_are_stochastic(self, frame_generator, rng):
        a = frame_generator.anomaly_frame("Arson", rng)
        b = frame_generator.anomaly_frame("Arson", rng)
        assert not np.allclose(a, b)


class TestVideos:
    def test_normal_video_all_zero_labels(self, frame_generator, rng):
        video = frame_generator.normal_video(20, rng)
        assert video.num_frames == 20
        assert not video.is_anomalous
        assert video.labels.sum() == 0

    def test_anomalous_video_has_contiguous_segment(self, frame_generator, rng):
        video = frame_generator.anomalous_video("Explosion", 30, rng)
        assert video.is_anomalous
        start, stop = video.segment
        assert 0 <= start < stop <= 30
        np.testing.assert_array_equal(video.labels[start:stop], 1)
        assert video.labels.sum() == stop - start  # nothing outside segment

    def test_segment_length_bounds(self, frame_generator, rng):
        for _ in range(10):
            video = frame_generator.anomalous_video(
                "Abuse", 40, rng, min_segment=0.2, max_segment=0.6)
            seg_len = video.segment[1] - video.segment[0]
            assert 0.15 * 40 <= seg_len <= 0.65 * 40


class TestMakeWindows:
    def test_window_count_and_shape(self, frame_generator, embedding_model, rng):
        video = frame_generator.normal_video(20, rng)
        windows, labels = make_windows(video, window=8, stride=1)
        assert windows.shape == (13, 8, embedding_model.frame_dim)
        assert labels.shape == (13,)

    def test_stride(self, frame_generator, rng):
        video = frame_generator.normal_video(20, rng)
        windows, _ = make_windows(video, window=8, stride=4)
        assert windows.shape[0] == 4

    def test_labels_follow_last_frame(self, frame_generator, rng):
        video = frame_generator.anomalous_video("Vandalism", 30, rng)
        windows, labels = make_windows(video, window=4, stride=1)
        start, stop = video.segment
        for i, label in enumerate(labels):
            last_frame_index = i + 3
            assert label == video.labels[last_frame_index]

    def test_too_short_video_raises(self, frame_generator, rng):
        video = frame_generator.normal_video(4, rng)
        with pytest.raises(ValueError):
            make_windows(video, window=8)

    def test_window_must_be_positive(self, frame_generator, rng):
        video = frame_generator.normal_video(4, rng)
        with pytest.raises(ValueError):
            make_windows(video, window=0)
