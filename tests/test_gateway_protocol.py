"""Tests for the gateway wire format: framing, validation, error typing."""

import asyncio
import socket
import struct
import threading

import pytest

from repro.gateway.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    RequestError,
    decode_body,
    encode_frame,
    error_frame,
    ok_frame,
    read_frame,
    recv_frame,
    request_frame,
    send_frame,
    validate_request,
)


def run(coro):
    return asyncio.run(coro)


async def reader_for(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_encode_decode_round_trip(self):
        payload = {"op": "ingest", "id": 7, "windows": [[[0.5, 1.0]]]}
        frame = encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == payload

    def test_async_read_round_trip(self):
        async def main():
            payload = request_frame("stats", 3)
            reader = await reader_for(encode_frame(payload))
            assert await read_frame(reader) == payload
            assert await read_frame(reader) is None  # clean EOF

        run(main())

    def test_async_read_multiple_frames(self):
        async def main():
            frames = [request_frame("attach", i, stream=f"cam-{i}")
                      for i in range(3)]
            reader = await reader_for(
                b"".join(encode_frame(f) for f in frames))
            got = [await read_frame(reader) for _ in range(3)]
            assert got == frames

        run(main())

    def test_truncated_header_raises(self):
        async def main():
            reader = await reader_for(b"\x00\x00")
            with pytest.raises(FrameError, match="truncated frame header"):
                await read_frame(reader)

        run(main())

    def test_truncated_body_raises(self):
        async def main():
            frame = encode_frame({"op": "stats"})
            reader = await reader_for(frame[:-3])
            with pytest.raises(FrameError, match="truncated frame body"):
                await read_frame(reader)

        run(main())

    def test_oversized_frame_rejected(self):
        async def main():
            reader = await reader_for(struct.pack(">I", 1 << 30) + b"x")
            with pytest.raises(FrameError, match="exceeds"):
                await read_frame(reader)

        run(main())

    def test_zero_length_frame_rejected(self):
        async def main():
            reader = await reader_for(struct.pack(">I", 0))
            with pytest.raises(FrameError, match="zero-length"):
                await read_frame(reader)

        run(main())

    def test_malformed_json_raises(self):
        body = b"not json at all"
        with pytest.raises(FrameError, match="malformed JSON"):
            decode_body(body)

    def test_non_object_body_raises(self):
        with pytest.raises(FrameError, match="must be a JSON object"):
            decode_body(b"[1, 2, 3]")

    def test_encode_refuses_oversized_body(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_sync_socket_round_trip(self):
        server, client = socket.socketpair()
        try:
            payload = ok_frame(4, scores=[0.25, 0.5])
            sender = threading.Thread(
                target=send_frame, args=(server, payload))
            sender.start()
            assert recv_frame(client) == payload
            sender.join()
            server.close()
            assert recv_frame(client) is None  # clean EOF
        finally:
            client.close()

    def test_sync_truncated_raises(self):
        server, client = socket.socketpair()
        try:
            frame = encode_frame({"op": "stats"})
            server.sendall(frame[:-2])
            server.close()
            with pytest.raises(FrameError, match="closed mid-frame"):
                recv_frame(client)
        finally:
            client.close()


class TestValidation:
    def test_valid_request(self):
        payload = request_frame("ingest", 5, stream="cam-0")
        assert payload["v"] == PROTOCOL_VERSION
        assert validate_request(payload) == "ingest"

    def test_version_mismatch(self):
        with pytest.raises(RequestError) as err:
            validate_request({"v": 99, "op": "stats", "id": 1})
        assert err.value.code == "version_mismatch"

    def test_missing_op(self):
        with pytest.raises(RequestError) as err:
            validate_request({"v": PROTOCOL_VERSION, "id": 1})
        assert err.value.code == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(RequestError) as err:
            validate_request({"v": PROTOCOL_VERSION, "op": "explode",
                              "id": 1})
        assert err.value.code == "unknown_op"

    def test_bad_id_type(self):
        with pytest.raises(RequestError) as err:
            validate_request({"v": PROTOCOL_VERSION, "op": "stats",
                              "id": [1]})
        assert err.value.code == "bad_request"

    def test_error_frame_shape(self):
        frame = error_frame(9, "backpressure", "queue full")
        assert frame["ok"] is False
        assert frame["id"] == 9
        assert frame["error"]["code"] == "backpressure"

    def test_error_frame_rejects_unknown_code(self):
        with pytest.raises(AssertionError):
            error_frame(1, "made_up_code", "nope")
