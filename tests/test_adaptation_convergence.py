"""Tests for per-node convergence tracking (paper Fig. 4 distance check)."""

from repro.adaptation import ConvergenceConfig, NodeConvergenceTracker


def cfg(**kwargs):
    defaults = dict(patience=2, tolerance=0.0, min_updates=1,
                    max_flags_per_step=10, min_distance=0.0)
    defaults.update(kwargs)
    return ConvergenceConfig(**defaults)


KEY = (0, 1)
OTHER = (0, 2)


class TestDivergenceDetection:
    def test_decreasing_distance_never_flags(self):
        tracker = NodeConvergenceTracker(cfg())
        for d in [1.0, 0.9, 0.8, 0.7]:
            assert tracker.observe({KEY: d}) == []
        assert tracker.is_converging(KEY)

    def test_sustained_increase_flags(self):
        tracker = NodeConvergenceTracker(cfg(patience=2))
        assert tracker.observe({KEY: 0.1}) == []
        assert tracker.observe({KEY: 0.2}) == []   # streak 1
        assert tracker.observe({KEY: 0.3}) == [KEY]  # streak 2 = patience

    def test_single_blip_resets_streak(self):
        tracker = NodeConvergenceTracker(cfg(patience=2))
        tracker.observe({KEY: 0.1})
        tracker.observe({KEY: 0.2})   # streak 1
        tracker.observe({KEY: 0.15})  # reset
        assert tracker.observe({KEY: 0.2}) == []  # streak 1 again

    def test_tolerance_ignores_small_increases(self):
        tracker = NodeConvergenceTracker(cfg(patience=1, tolerance=0.5))
        tracker.observe({KEY: 0.10})
        assert tracker.observe({KEY: 0.12}) == []  # +20% < 50% tolerance
        assert tracker.observe({KEY: 0.30}) == [KEY]

    def test_min_distance_floor(self):
        """Microscopic distances are numerical noise, never divergence."""
        tracker = NodeConvergenceTracker(cfg(patience=1, min_distance=0.05))
        tracker.observe({KEY: 0.001})
        assert tracker.observe({KEY: 0.002}) == []
        assert tracker.observe({KEY: 0.004}) == []

    def test_min_updates_grace_period(self):
        tracker = NodeConvergenceTracker(cfg(patience=1, min_updates=5))
        for d in [0.1, 0.2, 0.3, 0.4]:
            assert tracker.observe({KEY: d}) == []
        assert tracker.observe({KEY: 0.5}) == [KEY]  # 5th update

    def test_max_flags_per_step_rate_limit(self):
        tracker = NodeConvergenceTracker(cfg(patience=1, max_flags_per_step=1))
        tracker.observe({KEY: 0.1, OTHER: 0.1})
        flagged = tracker.observe({KEY: 0.2, OTHER: 0.3})
        assert len(flagged) == 1


class TestStateManagement:
    def test_forget_resets_node(self):
        tracker = NodeConvergenceTracker(cfg(patience=1))
        tracker.observe({KEY: 0.1})
        tracker.forget(KEY)
        # After forgetting, the next observation has no previous distance.
        assert tracker.observe({KEY: 0.5}) == []

    def test_disappeared_nodes_cleaned_up(self):
        tracker = NodeConvergenceTracker(cfg())
        tracker.observe({KEY: 0.1, OTHER: 0.1})
        tracker.observe({KEY: 0.2})  # OTHER pruned between steps
        assert OTHER not in tracker._last_distance

    def test_distance_history_recorded(self):
        tracker = NodeConvergenceTracker(cfg())
        tracker.observe({KEY: 0.1})
        tracker.observe({KEY: 0.2})
        assert tracker.distance_history[KEY] == [0.1, 0.2]
