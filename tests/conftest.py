"""Shared fixtures.

Heavy objects (BPE training, ridge fit, model training) are session-scoped;
tests must treat them as read-only.  Tests that mutate models build their
own instances from the cheap factories below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.concepts import build_default_ontology
from repro.data import FrameGenerator
from repro.embedding import build_default_embedding_model
from repro.eval import ExperimentConfig, ExperimentContext
from repro.gnn import MissionGNNConfig, MissionGNNModel
from repro.kg import KGGenerationConfig, KGGenerator
from repro.llm import SyntheticLLM


@pytest.fixture(scope="session")
def ontology():
    return build_default_ontology()


@pytest.fixture(scope="session")
def embedding_model():
    return build_default_embedding_model(seed=7)


@pytest.fixture(scope="session")
def frame_generator(embedding_model):
    return FrameGenerator(embedding_model, seed=5)


@pytest.fixture(scope="session")
def stealing_kg_template(ontology, embedding_model):
    """A generated Stealing KG with tokens; treat as read-only."""
    oracle = SyntheticLLM(ontology, seed=3)
    kg, report = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Stealing")
    kg.initialize_tokens(embedding_model)
    return kg


@pytest.fixture()
def fresh_kg(ontology, embedding_model):
    """Factory for a mutable mission KG."""
    def make(mission: str = "Stealing", depth: int = 3, seed: int = 3):
        oracle = SyntheticLLM(ontology, seed=seed)
        kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=depth)).generate(mission)
        kg.initialize_tokens(embedding_model)
        return kg
    return make


@pytest.fixture()
def fresh_model(fresh_kg, embedding_model):
    """Factory for an untrained MissionGNN model over a fresh KG."""
    def make(mission: str = "Stealing", window: int = 4, seed: int = 7):
        kg = fresh_kg(mission)
        return MissionGNNModel([kg], embedding_model,
                               MissionGNNConfig(temporal_window=window, seed=seed))
    return make


@pytest.fixture(scope="session")
def trained_context():
    """A small but genuinely trained experiment context (shared, read-only)."""
    ctx = ExperimentContext(ExperimentConfig(
        train_steps=300, train_batch=32, dataset_scale=0.15,
        frames_per_video=40, eval_normal_windows=24, eval_anomaly_windows=12))
    ctx.train_model("Stealing")  # warm the cache
    return ctx


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
