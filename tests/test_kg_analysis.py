"""Tests for KG statistics and adaptation diffing."""

import numpy as np
import pytest

from repro.kg import diff_kgs, kg_from_dict, kg_statistics, kg_to_dict, to_networkx


class TestStatistics:
    def test_basic_counts(self, stealing_kg_template):
        stats = kg_statistics(stealing_kg_template)
        assert stats["num_nodes"] == stealing_kg_template.num_nodes
        assert stats["num_edges"] == stealing_kg_template.num_edges
        assert stats["depth"] == 3

    def test_level_widths_cover_all_levels(self, stealing_kg_template):
        stats = kg_statistics(stealing_kg_template)
        assert set(stats["level_widths"]) == set(range(5))
        assert stats["level_widths"][0] == 1  # sensor
        assert stats["level_widths"][4] == 1  # embedding node

    def test_generated_kg_fully_on_path(self, stealing_kg_template):
        """Generation guarantees every concept node participates in
        sensor->embedding reasoning."""
        stats = kg_statistics(stealing_kg_template)
        assert stats["is_dag"]
        assert stats["num_reasoning_paths"] >= 1

    def test_mean_fan_in_positive(self, stealing_kg_template):
        assert kg_statistics(stealing_kg_template)["mean_fan_in"] >= 1.0

    def test_to_networkx_preserves_structure(self, stealing_kg_template):
        graph = to_networkx(stealing_kg_template)
        assert graph.number_of_nodes() == stealing_kg_template.num_nodes
        assert graph.number_of_edges() == stealing_kg_template.num_edges
        node = stealing_kg_template.concept_nodes()[0]
        assert graph.nodes[node.node_id]["text"] == node.text


class TestDiff:
    def _snapshot(self, kg):
        return kg_from_dict(kg_to_dict(kg))

    def test_no_change_empty_diff(self, fresh_kg):
        kg = fresh_kg()
        diff = diff_kgs(self._snapshot(kg), self._snapshot(kg))
        assert not diff.pruned and not diff.created
        assert diff.edges_added == 0 and diff.edges_removed == 0
        assert diff.mean_drift == pytest.approx(0.0)

    def test_token_drift_measured(self, fresh_kg):
        kg = fresh_kg()
        before = self._snapshot(kg)
        node = kg.concept_nodes()[0]
        node.token_embeddings = node.token_embeddings + 1.0
        diff = diff_kgs(before, self._snapshot(kg))
        moved = [d for d in diff.drifts if d.node_id == node.node_id]
        assert len(moved) == 1
        expected = np.sqrt(node.token_embeddings.size)
        assert moved[0].l2_distance == pytest.approx(expected)

    def test_prune_create_reflected(self, fresh_kg, rng):
        kg = fresh_kg()
        before = self._snapshot(kg)
        victim = kg.nodes_at_level(2)[0]
        kg.prune_node(victim.node_id)
        kg.create_node(level=2, token_dim=8, n_tokens=2, rng=rng)
        diff = diff_kgs(before, self._snapshot(kg))
        assert victim.text in diff.pruned
        assert len(diff.created) == 1
        assert diff.edges_removed > 0

    def test_max_drift_identifies_most_moved(self, fresh_kg):
        kg = fresh_kg()
        before = self._snapshot(kg)
        nodes = kg.concept_nodes()
        nodes[0].token_embeddings = nodes[0].token_embeddings + 0.1
        nodes[1].token_embeddings = nodes[1].token_embeddings + 5.0
        diff = diff_kgs(before, self._snapshot(kg))
        assert diff.max_drift.node_id == nodes[1].node_id

    def test_summary_renders(self, fresh_kg):
        kg = fresh_kg()
        diff = diff_kgs(self._snapshot(kg), self._snapshot(kg))
        assert "pruned nodes" in diff.summary()
