"""Tests for the cloud-side decision-model trainer."""

import numpy as np
import pytest

from repro.gnn import DecisionModelTrainer, TrainingConfig


def toy_task(fresh_model, frame_generator, rng, n_per_class=12, window=4):
    """A tiny separable task: Stealing windows vs normal windows."""
    model = fresh_model(window=window)
    windows, labels = [], []
    for _ in range(n_per_class):
        windows.append(np.stack([frame_generator.normal_frame(rng)
                                 for _ in range(window)]))
        labels.append(0)
        windows.append(np.stack([frame_generator.anomaly_frame("Stealing", rng)
                                 for _ in range(window)]))
        labels.append(1)
    return model, np.stack(windows), np.array(labels, dtype=np.int64)


class TestTrainer:
    def test_loss_decreases(self, fresh_model, frame_generator, rng):
        model, windows, labels = toy_task(fresh_model, frame_generator, rng)
        trainer = DecisionModelTrainer(model, TrainingConfig(
            steps=40, batch_size=12, learning_rate=5e-3))
        result = trainer.train(windows, labels)
        first = np.mean(result.losses[:5])
        last = np.mean(result.losses[-5:])
        assert last < first

    def test_training_separates_classes(self, fresh_model, frame_generator, rng):
        from repro.eval import roc_auc
        model, windows, labels = toy_task(fresh_model, frame_generator, rng,
                                          n_per_class=16)
        DecisionModelTrainer(model, TrainingConfig(
            steps=80, batch_size=16, learning_rate=5e-3)).train(windows, labels)
        scores = model.anomaly_scores(windows)
        assert roc_auc(scores, labels) > 0.8

    def test_model_left_in_eval_mode(self, fresh_model, frame_generator, rng):
        model, windows, labels = toy_task(fresh_model, frame_generator, rng)
        DecisionModelTrainer(model, TrainingConfig(steps=2)).train(windows, labels)
        assert not model.temporal.training

    def test_result_bookkeeping(self, fresh_model, frame_generator, rng):
        model, windows, labels = toy_task(fresh_model, frame_generator, rng)
        result = DecisionModelTrainer(model, TrainingConfig(steps=5)).train(
            windows, labels)
        assert result.steps == 5
        assert len(result.losses) == 5
        assert result.final_loss == result.losses[-1]

    def test_validation_errors(self, fresh_model, frame_generator, rng):
        model, windows, labels = toy_task(fresh_model, frame_generator, rng)
        trainer = DecisionModelTrainer(model, TrainingConfig(steps=1))
        with pytest.raises(ValueError):
            trainer.train(windows, labels[:-1])
        with pytest.raises(ValueError):
            trainer.train(windows[:0], labels[:0])
        with pytest.raises(ValueError):
            trainer.train(windows, labels + 5)

    def test_balanced_batches_oversample_minority(self, fresh_model,
                                                  frame_generator, rng):
        """With 1 anomaly among many normals, balanced batches still train
        without error (replacement sampling covers the shortfall)."""
        model, windows, labels = toy_task(fresh_model, frame_generator, rng,
                                          n_per_class=8)
        labels = labels.copy()
        labels[labels == 1] = 0
        labels[0] = 1  # single anomaly
        result = DecisionModelTrainer(model, TrainingConfig(
            steps=3, batch_size=8)).train(windows, labels)
        assert len(result.losses) == 3
