"""Tests for the Pipeline facade, the model registry, and BN buffer state."""

import numpy as np
import pytest

from repro.api import ModelRegistry, Pipeline, ReproConfig
from repro.eval import ExperimentConfig, ExperimentContext


def small_config(**experiment_overrides) -> ReproConfig:
    cfg = ReproConfig()
    cfg.experiment.train_steps = 50
    cfg.experiment.eval_normal_windows = 16
    cfg.experiment.eval_anomaly_windows = 8
    for key, value in experiment_overrides.items():
        setattr(cfg.experiment, key, value)
    return cfg


@pytest.fixture(scope="module")
def pipeline():
    return Pipeline.from_config(small_config())


class TestFromConfig:
    def test_accepts_dict_and_overrides(self):
        pipe = Pipeline.from_config(
            {"experiment": {"train_steps": 9}},
            overrides=["adaptation.monitor.window=24"])
        assert pipe.config.experiment.train_steps == 9
        assert pipe.config.adaptation.monitor.window == 24

    def test_accepts_config_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        small_config(seed=13).save(path)
        pipe = Pipeline.from_config(path)
        assert pipe.config.experiment.seed == 13

    def test_copies_config_object(self):
        cfg = small_config()
        pipe = Pipeline.from_config(cfg, overrides=["experiment.seed=99"])
        assert pipe.config.experiment.seed == 99
        assert cfg.experiment.seed == 7  # caller's object untouched


class TestRegistryCaching:
    def test_second_train_is_a_cache_hit(self, pipeline):
        pipeline.train("Stealing")
        trained_before = pipeline.trained_count
        pipeline.train("Stealing")
        assert pipeline.trained_count == trained_before
        assert pipeline.registry.hits >= 2

    def test_cached_model_is_fresh_and_deterministic(self, pipeline):
        a = pipeline.train("Stealing")
        b = pipeline.train("Stealing")
        assert a is not b
        windows, _ = pipeline.eval_windows("Stealing")
        np.testing.assert_allclose(a.anomaly_scores(windows[:5]),
                                   b.anomaly_scores(windows[:5]))

    def test_config_change_changes_fingerprint(self):
        a = Pipeline.from_config(small_config())
        b = Pipeline.from_config(small_config(train_steps=51))
        assert a._fingerprint() != b._fingerprint()

    def test_disk_registry_survives_new_pipeline(self, tmp_path):
        cfg = small_config(train_steps=30)
        cfg.registry_dir = str(tmp_path / "models")
        first = Pipeline.from_config(cfg)
        model = first.train("Stealing")
        assert first.trained_count == 1

        second = Pipeline.from_config(cfg)
        reloaded = second.train("Stealing")
        assert second.trained_count == 0  # registry hit: no retraining
        windows, _ = second.eval_windows("Stealing")
        np.testing.assert_allclose(model.anomaly_scores(windows[:5]),
                                   reloaded.anomaly_scores(windows[:5]),
                                   atol=1e-12)

    def test_registry_clear_and_keys(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        cfg = small_config(train_steps=20)
        pipe = Pipeline.from_config(cfg, registry=registry)
        pipe.train("Robbery")
        assert len(registry.keys()) == 1
        assert registry.contains("Robbery", pipe._fingerprint())
        registry.clear()
        assert registry.keys() == []


class TestContextShim:
    def test_context_view_shares_the_pipeline(self, pipeline):
        context = pipeline.context
        assert context.pipeline is pipeline
        assert context.config is pipeline.config.experiment
        assert context.embedding_model is pipeline.embedding_model

    def test_legacy_constructor_matches_pipeline(self):
        exp = ExperimentConfig(train_steps=40, eval_normal_windows=12,
                               eval_anomaly_windows=6)
        context = ExperimentContext(exp)
        cfg = ReproConfig(experiment=exp)
        pipe = Pipeline.from_config(cfg)
        windows, _ = context.eval_windows("Stealing")
        np.testing.assert_allclose(
            context.train_model("Stealing").anomaly_scores(windows[:4]),
            pipe.train("Stealing").anomaly_scores(windows[:4]))


class TestBatchNormBuffers:
    def test_state_dict_carries_running_stats(self, pipeline):
        model = pipeline.train("Stealing")
        state = model.state_dict()
        bn_keys = [k for k in state if k.endswith("running_mean")]
        assert bn_keys, "state_dict must include BN running statistics"
        layer = model.reasoners[0].gnn.layers[0]
        assert np.any(layer.norm.running_mean != 0.0)

    def test_bn_stats_survive_state_dict_round_trip(self, pipeline):
        model = pipeline.train("Stealing")
        fresh = pipeline.train("Stealing")
        for layer in fresh.reasoners[0].gnn.layers:
            layer.norm.running_mean = np.zeros_like(layer.norm.running_mean)
            layer.norm.running_var = np.ones_like(layer.norm.running_var)
        fresh.load_state_dict(model.state_dict())
        for src, dst in zip(model.reasoners[0].gnn.layers,
                            fresh.reasoners[0].gnn.layers):
            np.testing.assert_allclose(dst.norm.running_mean,
                                       src.norm.running_mean)
            np.testing.assert_allclose(dst.norm.running_var,
                                       src.norm.running_var)
        windows, _ = pipeline.eval_windows("Stealing")
        np.testing.assert_allclose(fresh.anomaly_scores(windows[:5]),
                                   model.anomaly_scores(windows[:5]),
                                   atol=1e-12)

    def test_parameter_only_state_dict_still_loads(self, pipeline):
        """Legacy checkpoints without buffer entries keep current stats."""
        model = pipeline.train("Stealing")
        params_only = {name: p.data.copy()
                       for name, p in model.named_parameters()}
        target = pipeline.train("Stealing")
        before = target.reasoners[0].gnn.layers[0].norm.running_mean.copy()
        target.load_state_dict(params_only)
        np.testing.assert_allclose(
            target.reasoners[0].gnn.layers[0].norm.running_mean, before)
