"""Tests for the SyntheticLLM oracle (GPT-4 substitute)."""

import pytest

from repro.llm import EdgeProposal, SyntheticLLM


@pytest.fixture()
def oracle(ontology):
    return SyntheticLLM(ontology, seed=3)


class TestInitialNodes:
    def test_returns_depth1_concepts(self, oracle, ontology):
        nodes = oracle.generate_initial_nodes("Stealing", count=4)
        depth1 = {c.text for c in ontology.concepts_for_class("Stealing", depth=1)}
        assert nodes
        assert set(nodes) <= depth1

    def test_count_respected(self, oracle):
        assert len(oracle.generate_initial_nodes("Robbery", count=3)) == 3

    def test_count_capped_by_pool(self, oracle, ontology):
        pool = len(ontology.concepts_for_class("Arson", depth=1))
        nodes = oracle.generate_initial_nodes("Arson", count=100)
        assert len(nodes) == pool

    def test_unknown_mission_raises(self, oracle):
        with pytest.raises(KeyError):
            oracle.generate_initial_nodes("NotAClass")

    def test_prompt_logged(self, oracle):
        oracle.generate_initial_nodes("Stealing")
        assert any("Stealing" in p for p in oracle.prompt_log)


class TestNextNodes:
    def test_respects_forbidden_mostly(self, ontology):
        # With error_rate=0 the oracle never proposes forbidden concepts.
        oracle = SyntheticLLM(ontology, seed=1, error_rate=0.0)
        forbidden = {"sneaky", "grabbing"}
        proposals = oracle.generate_next_nodes(
            "Stealing", ["concealment"], level=1, forbidden=forbidden)
        assert not set(proposals) & forbidden

    def test_error_injection_produces_duplicates(self, ontology):
        oracle = SyntheticLLM(ontology, seed=1, error_rate=1.0)
        forbidden = {"sneaky"}
        found_dup = False
        for level in range(1, 3):
            proposals = oracle.generate_next_nodes(
                "Stealing", ["concealment"], level=level, forbidden=forbidden)
            if set(proposals) & forbidden:
                found_dup = True
        assert found_dup

    def test_deterministic_given_seed(self, ontology):
        def run():
            oracle = SyntheticLLM(ontology, seed=5)
            return oracle.generate_next_nodes("Robbery", ["firearm"], level=1)
        assert run() == run()


class TestEdges:
    def test_every_target_connected(self, oracle):
        sources = ["sneaky", "grabbing"]
        targets = ["quick snatch", "pocketing object"]
        edges = oracle.generate_edges("Stealing", 1, sources, targets)
        connected = {e.target for e in edges}
        assert set(targets) <= connected

    def test_edges_use_given_sources_without_errors(self, ontology):
        oracle = SyntheticLLM(ontology, seed=2, error_rate=0.0)
        sources = ["sneaky"]
        edges = oracle.generate_edges("Stealing", 1, sources, ["quick snatch"])
        assert all(e.source == "sneaky" for e in edges)

    def test_invalid_edge_injection(self, ontology):
        oracle = SyntheticLLM(ontology, seed=2, error_rate=1.0)
        edges = oracle.generate_edges(
            "Stealing", 2, ["pocketing object"], ["palming item"],
            older_concepts=["sneaky"])
        assert any(e.source == "sneaky" for e in edges)

    def test_no_sources_raises(self, oracle):
        with pytest.raises(ValueError):
            oracle.generate_edges("Stealing", 1, [], ["x"])


class TestCorrections:
    def test_correct_duplicate_avoids_forbidden(self, ontology):
        oracle = SyntheticLLM(ontology, seed=4, correction_error_rate=0.0)
        forbidden = {"sneaky", "grabbing"}
        fix = oracle.correct_duplicate("Stealing", "sneaky", forbidden)
        assert fix is not None
        assert fix not in forbidden

    def test_correct_duplicate_exhausted_pool(self, ontology):
        oracle = SyntheticLLM(ontology, seed=4, correction_error_rate=0.0)
        everything = {c.text for c in ontology.concepts_for_class("Stealing")}
        assert oracle.correct_duplicate("Stealing", "sneaky", everything) is None

    def test_correction_can_introduce_new_errors(self, ontology):
        oracle = SyntheticLLM(ontology, seed=4, correction_error_rate=1.0)
        forbidden = {"sneaky"}
        fix = oracle.correct_duplicate("Stealing", "grabbing", forbidden)
        assert fix in forbidden  # the paper's "LLM may err during correction"

    def test_correct_edge_rewires_to_valid_source(self, ontology):
        oracle = SyntheticLLM(ontology, seed=4, correction_error_rate=0.0)
        fix = oracle.correct_edge(1, "quick snatch", ["sneaky", "grabbing"])
        assert isinstance(fix, EdgeProposal)
        assert fix.source in {"sneaky", "grabbing"}
        assert fix.target == "quick snatch"

    def test_correct_edge_no_sources(self, oracle):
        assert oracle.correct_edge(1, "x", []) is None
