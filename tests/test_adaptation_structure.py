"""Tests for structural KG adaptation (node pruning + creation)."""

import numpy as np

from repro.adaptation import StructuralAdapter
from repro.utils import derive_rng


def make_adapter(model, **kwargs):
    return StructuralAdapter(
        model.reasoners, token_dim=model.embedding_model.token_dim,
        rng=derive_rng(0, "structural-test"),
        token_bank=model.embedding_model.token_table.vectors, **kwargs)


class TestReplaceNode:
    def test_prune_and_create_same_level(self, fresh_model):
        model = fresh_model()
        model.freeze_for_deployment()
        adapter = make_adapter(model)
        kg = model.kgs[0]
        victim = kg.nodes_at_level(2)[0]
        n_nodes = kg.num_nodes
        event = adapter.replace_node(0, victim.node_id, step=3)
        assert event is not None
        assert event.level == 2
        assert event.pruned_text == victim.text
        assert event.step == 3
        assert kg.num_nodes == n_nodes  # one out, one in
        kg.validate()

    def test_new_node_participates_in_reasoning(self, fresh_model):
        model = fresh_model()
        model.freeze_for_deployment()
        adapter = make_adapter(model)
        kg = model.kgs[0]
        victim = kg.nodes_at_level(2)[0]
        event = adapter.replace_node(0, victim.node_id)
        assert kg.in_degree(event.created_node_id) >= 1

    def test_reasoner_spec_refreshed(self, fresh_model, embedding_model, rng):
        model = fresh_model()
        model.freeze_for_deployment()
        adapter = make_adapter(model)
        kg = model.kgs[0]
        victim = kg.nodes_at_level(1)[-1]
        adapter.replace_node(0, victim.node_id)
        # Forward pass must work against the new structure.
        out = model.reasoners[0](rng.normal(size=(2, embedding_model.frame_dim)))
        assert out.shape == (2, 8)

    def test_min_population_guard(self, fresh_model):
        """Pruning must never empty a level: reasoning needs a path."""
        model = fresh_model()
        model.freeze_for_deployment()
        adapter = make_adapter(model, min_nodes_per_level=100)
        kg = model.kgs[0]
        victim = kg.nodes_at_level(1)[0]
        assert adapter.replace_node(0, victim.node_id) is None
        assert kg.has_concept(victim.text)

    def test_events_accumulate(self, fresh_model):
        model = fresh_model()
        model.freeze_for_deployment()
        adapter = make_adapter(model)
        kg = model.kgs[0]
        for level in (1, 2):
            victim = kg.nodes_at_level(level)[0]
            adapter.replace_node(0, victim.node_id)
        assert len(adapter.events) == 2

    def test_new_tokens_from_bank_distribution(self, fresh_model):
        """Replacement embeddings come from the vocabulary manifold."""
        model = fresh_model()
        model.freeze_for_deployment()
        adapter = make_adapter(model)
        kg = model.kgs[0]
        victim = kg.nodes_at_level(2)[0]
        event = adapter.replace_node(0, victim.node_id)
        new_node = kg.node(event.created_node_id)
        norms = np.linalg.norm(new_node.token_embeddings, axis=1)
        # Bank rows are unit norm; noise 0.1 keeps norms near 1.
        assert np.all((norms > 0.5) & (norms < 2.0))
