"""Tests for interpretable KG retrieval (paper Section III-E)."""

import numpy as np
import pytest

from repro.adaptation import DriftTrajectory, InterpretableKGRetrieval


class TestRetrieval:
    def test_unmodified_node_retrieves_own_tokens(self, stealing_kg_template,
                                                  embedding_model):
        """Fresh KG tokens are vocab rows: retrieval must return the node's
        own subword pieces as the nearest tokens."""
        retrieval = InterpretableKGRetrieval(embedding_model.token_table)
        node = stealing_kg_template.concept_nodes()[0]
        result = retrieval.retrieve_node(stealing_kg_template, node.node_id)
        expected = [embedding_model.tokenizer.decode_token(i)
                    for i in node.token_ids]
        assert result.top_words(per_token=1) == expected

    def test_retrieve_kg_covers_all_concepts(self, stealing_kg_template,
                                             embedding_model):
        retrieval = InterpretableKGRetrieval(embedding_model.token_table)
        results = retrieval.retrieve_kg(stealing_kg_template)
        assert len(results) == len(stealing_kg_template.concept_nodes())

    def test_top_k_respected(self, stealing_kg_template, embedding_model):
        retrieval = InterpretableKGRetrieval(embedding_model.token_table, top_k=5)
        node = stealing_kg_template.concept_nodes()[0]
        result = retrieval.retrieve_node(stealing_kg_template, node.node_id)
        assert all(len(hits) == 5 for hits in result.tokens)

    def test_all_three_metrics(self, stealing_kg_template, embedding_model):
        node = stealing_kg_template.concept_nodes()[0]
        for metric in ("euclidean", "cosine", "dot"):
            retrieval = InterpretableKGRetrieval(embedding_model.token_table,
                                                 metric=metric)
            result = retrieval.retrieve_node(stealing_kg_template, node.node_id)
            assert result.tokens

    def test_unknown_metric_raises(self, embedding_model):
        with pytest.raises(ValueError):
            InterpretableKGRetrieval(embedding_model.token_table, metric="L3")

    def test_node_without_tokens_raises(self, stealing_kg_template,
                                        embedding_model):
        retrieval = InterpretableKGRetrieval(embedding_model.token_table)
        with pytest.raises(ValueError):
            retrieval.retrieve_node(stealing_kg_template,
                                    stealing_kg_template.sensor_id)

    def test_perturbed_tokens_change_retrieval(self, fresh_kg, embedding_model,
                                               rng):
        """Moving a node's tokens onto another word's embedding makes
        retrieval return that word's pieces — the Fig. 6 mechanism."""
        kg = fresh_kg("Stealing")
        retrieval = InterpretableKGRetrieval(embedding_model.token_table)
        node = kg.concept_nodes()[0]
        target_ids = embedding_model.tokenizer.encode("firearm")
        node.token_embeddings = embedding_model.token_table.lookup(target_ids)
        node.token_ids = list(target_ids)
        result = retrieval.retrieve_node(kg, node.node_id)
        expected = [embedding_model.tokenizer.decode_token(i) for i in target_ids]
        assert result.top_words(per_token=1) == expected


class TestDriftTrajectory:
    def test_relative_position_bounds(self, rng):
        traj = DriftTrajectory(initial_word="a", target_word="b")
        initial = rng.normal(size=8)
        target = rng.normal(size=8)
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0]:
            point = (1 - alpha) * initial + alpha * target
            traj.record(int(alpha * 100), point, initial, target)
        positions = traj.relative_position()
        assert positions[0] == pytest.approx(0.0, abs=1e-9)
        assert positions[-1] == pytest.approx(1.0, abs=1e-9)
        assert np.all(np.diff(positions) > 0)  # monotone along the segment

    def test_records_accumulate(self, rng):
        traj = DriftTrajectory(initial_word="a", target_word="b")
        v = rng.normal(size=4)
        traj.record(0, v, v, v + 1.0)
        traj.record(10, v, v, v + 1.0)
        assert traj.iterations == [0, 10]
        assert len(traj.distance_to_initial) == 2
