"""Table I generator: baseline (cloud KG updates) vs proposed (edge adaptation).

Reconstructs every row of the paper's Table I.  Cloud-side constants come
from the paper (GPT-4 costs are not ours to measure); edge-side numbers are
*measured* from our actual model shapes via :mod:`repro.edge.flops`, and
the operational AUC rows take the measured values from
:class:`repro.eval.experiments.EfficiencyExperiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gnn.pipeline import MissionGNNModel
from .cloud import CloudBaseline
from .device import EdgeDeviceModel
from .flops import GPT4_KG_GENERATION_FLOPS, count_adaptation_step

__all__ = ["TableRow", "EfficiencyComparison"]


@dataclass(frozen=True)
class TableRow:
    """One row of Table I."""

    section: str
    metric: str
    baseline: str
    proposed: str


@dataclass
class EfficiencyComparison:
    """Builds the full Table I.

    Parameters mirror the paper's measurement scenario: the trend
    alternates 4x/month (baseline: 4 cloud KG updates), the edge device
    runs one adaptation loop per day.
    """

    model: MissionGNNModel
    auc_baseline: float
    auc_proposed: float
    cloud: CloudBaseline = field(default_factory=CloudBaseline)
    device: EdgeDeviceModel = field(default_factory=EdgeDeviceModel)
    adaptations_per_day: int = 1
    adaptation_batch_windows: int = 30
    adaptation_inner_steps: int = 3
    adaptation_rounds: int = 6
    days_per_month: int = 30

    # ------------------------------------------------------------------
    @property
    def edge_flops_per_day(self) -> float:
        return self.adaptations_per_day * count_adaptation_step(
            self.model, self.adaptation_batch_windows,
            self.adaptation_inner_steps, self.adaptation_rounds)

    @property
    def edge_flops_per_month(self) -> float:
        return self.edge_flops_per_day * self.days_per_month

    @property
    def edge_energy_per_update_joules(self) -> float:
        return self.device.adaptation_energy_joules(
            self.edge_flops_per_day / max(self.adaptations_per_day, 1))

    def kg_memory_gb(self) -> float:
        return sum(self.device.kg_bytes(kg) for kg in self.model.kgs) / 1e9

    # ------------------------------------------------------------------
    def rows(self) -> list[TableRow]:
        """All Table I rows in the paper's order."""
        cloud = self.cloud

        def sci(x: float) -> str:
            return f"{x:.2e}"

        initial = [
            TableRow("Initial Setup", "Human Intervention", "Yes", "Yes"),
            TableRow("Initial Setup", "Initial KG Generation Time (minutes)",
                     f"{cloud.minutes_per_update:g}", f"{cloud.minutes_per_update:g}"),
            TableRow("Initial Setup", "Initial KG Generation Computational Cost (FLOPs)",
                     sci(GPT4_KG_GENERATION_FLOPS), sci(GPT4_KG_GENERATION_FLOPS)),
            TableRow("Initial Setup", "Memory Usage for KG (GB)",
                     "0.5", "0.5"),
            TableRow("Initial Setup",
                     "Memory Usage for GPT-4 during Initial KG Generation (GB)",
                     f"{cloud.gpt4_memory_gb:g}", f"{cloud.gpt4_memory_gb:g}"),
            TableRow("Initial Setup", "Edge Device Storage Requirements (GB)",
                     "1", "1"),
        ]
        monthly = [
            TableRow("Monthly Updates", "Human Intervention", "Yes", "No"),
            TableRow("Monthly Updates", "KG Update Frequency (per month)",
                     str(cloud.updates_per_month), "0"),
            TableRow("Monthly Updates", "KG Update Time per Update (minutes)",
                     f"{cloud.minutes_per_update:g}", "0"),
            TableRow("Monthly Updates", "Total KG Update Time (minutes/month)",
                     f"{cloud.monthly_update_minutes:g}", "0"),
            TableRow("Monthly Updates", "GPT-4 Computational Cost per KG Update (FLOPs/update)",
                     sci(cloud.gpt4_flops_per_update), "0"),
            TableRow("Monthly Updates", "Total GPT-4 Computational Cost (FLOPs/month)",
                     sci(cloud.monthly_flops), "0"),
            TableRow("Monthly Updates", "Edge Device Computational Cost per Adaptation (FLOPs/day)",
                     "N/A", sci(self.edge_flops_per_day)),
            TableRow("Monthly Updates", "Total Edge Device Computational Cost (FLOPs/month)",
                     "N/A", sci(self.edge_flops_per_month)),
            TableRow("Monthly Updates", "Memory Usage for GPT-4 during Updates (GB)",
                     f"{cloud.gpt4_memory_gb:g}", "0"),
            TableRow("Monthly Updates", "Network Bandwidth Usage for KG Updates (GB/month)",
                     f"High (Approx. {cloud.monthly_bandwidth_gb:g} GB)", "Zero"),
            TableRow("Monthly Updates", "Edge Device Energy Consumption per Update (Joules)",
                     "N/A",
                     f"Minimal (Approx. {self.edge_energy_per_update_joules:.1f} J)"),
        ]
        operational = [
            TableRow("Operational Performance", "Average AUC score",
                     f"{self.auc_baseline:.2f}", f"{self.auc_proposed:.2f}"),
            TableRow("Operational Performance", "Latency for KG Update",
                     "High (Cloud-dependent)", "Low (Real-time)"),
            TableRow("Operational Performance", "Scalability (Number of Edge Devices Supported)",
                     self.cloud.scalability(), "High (Independent)"),
        ]
        return initial + monthly + operational

    def format_table(self) -> str:
        """Human-readable Table I."""
        rows = self.rows()
        metric_width = max(len(r.metric) for r in rows)
        base_width = max(len(r.baseline) for r in rows)
        lines = [
            f"{'Metric':<{metric_width}}  {'Baseline (Cloud)':<{base_width}}  Proposed (Edge)",
            "-" * (metric_width + base_width + 20),
        ]
        section = None
        for row in rows:
            if row.section != section:
                section = row.section
                lines.append(f"[{section}]")
            lines.append(f"{row.metric:<{metric_width}}  "
                         f"{row.baseline:<{base_width}}  {row.proposed}")
        return "\n".join(lines)
