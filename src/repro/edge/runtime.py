"""Edge deployment runtime: a metered wrapper around the adaptation loop.

``EdgeDeploymentSimulator`` runs the continuous-adaptation controller over
an arrival stream while accounting for every FLOP the device spends —
inference scoring, adaptation forward/backward passes — and converting
them to energy and latency through the :class:`EdgeDeviceModel`.  Its
report is the measured counterpart of Table I's per-day edge numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..adaptation.controller import (
    AdaptationConfig,
    AdaptationStepLog,
    ContinuousAdaptationController,
)
from ..gnn.pipeline import MissionGNNModel
from .device import EdgeDeviceModel
from .flops import count_model_forward

__all__ = ["StepMeter", "DeploymentReport", "EdgeDeploymentSimulator"]


@dataclass
class StepMeter:
    """Resource accounting for one processed batch."""

    step: int
    windows: int
    inference_flops: float
    adaptation_flops: float
    energy_joules: float
    latency_seconds: float
    adapted: bool

    @property
    def total_flops(self) -> float:
        return self.inference_flops + self.adaptation_flops


@dataclass
class DeploymentReport:
    """Aggregate resource usage over a deployment run."""

    steps: list[StepMeter] = field(default_factory=list)

    @property
    def total_flops(self) -> float:
        return sum(m.total_flops for m in self.steps)

    @property
    def total_energy_joules(self) -> float:
        return sum(m.energy_joules for m in self.steps)

    @property
    def total_windows(self) -> int:
        return sum(m.windows for m in self.steps)

    @property
    def adaptation_steps(self) -> int:
        return sum(1 for m in self.steps if m.adapted)

    @property
    def adaptation_flops(self) -> float:
        return sum(m.adaptation_flops for m in self.steps)

    @property
    def inference_flops(self) -> float:
        return sum(m.inference_flops for m in self.steps)

    def flops_per_day(self, steps_per_day: int) -> float:
        """Extrapolate the run's mean per-step cost to a daily figure."""
        if not self.steps:
            return 0.0
        return self.total_flops / len(self.steps) * steps_per_day

    def summary(self) -> str:
        lines = [
            f"steps processed:        {len(self.steps)}",
            f"windows scored:         {self.total_windows}",
            f"adaptation phases:      {self.adaptation_steps}",
            f"inference FLOPs:        {self.inference_flops:.3e}",
            f"adaptation FLOPs:       {self.adaptation_flops:.3e}",
            f"total energy:           {self.total_energy_joules:.3f} J",
        ]
        return "\n".join(lines)


class EdgeDeploymentSimulator:
    """Runs a deployment while metering device resources.

    Wraps a :class:`ContinuousAdaptationController`; every
    :meth:`process_batch` both advances the adaptation loop and records a
    :class:`StepMeter`.  Adaptation cost is derived from the controller's
    actual update count delta (so backtracked/retried rounds are billed
    too) times the measured per-iteration cost.
    """

    def __init__(self, model: MissionGNNModel,
                 config: AdaptationConfig | None = None,
                 device: EdgeDeviceModel | None = None,
                 normal_anchor_windows: np.ndarray | None = None,
                 device_flops_per_second: float = 1e10):
        self.model = model
        self.controller = ContinuousAdaptationController(
            model, config, normal_anchor_windows=normal_anchor_windows)
        self.device = device or EdgeDeviceModel()
        self.device_flops_per_second = device_flops_per_second
        self.report = DeploymentReport()
        self._forward_flops = count_model_forward(model).total
        self._structural_seen = self.controller.total_pruned

    # ------------------------------------------------------------------
    def _adaptation_flops(self, updates: int) -> float:
        """Cost of ``updates`` token-update calls.

        Each update call runs ``inner_steps`` forward+backward iterations
        on a batch of roughly (K + normals) windows; backward ~ 2x forward.
        """
        cfg = self.controller.config
        batch = cfg.normals_per_update * 2  # typical K + anchors
        per_update = batch * self._forward_flops * 3.0 * max(
            cfg.update.inner_steps, 1)
        return updates * per_update

    def process_batch(self, windows: np.ndarray) -> tuple[AdaptationStepLog, StepMeter]:
        """Score (and possibly adapt on) one arrival batch, metered."""
        updates_before = self.controller.update_count
        log = self.controller.process_batch(windows)
        updates_done = self.controller.update_count - updates_before

        # This step's inference ran on the pre-adaptation structure (the
        # controller scores before it adapts), so it is billed at the
        # cached per-forward cost; the cache is refreshed below once any
        # structural change lands.
        inference = windows.shape[0] * self._forward_flops
        adaptation = self._adaptation_flops(updates_done)
        total = inference + adaptation
        meter = StepMeter(
            step=log.step,
            windows=int(windows.shape[0]),
            inference_flops=inference,
            adaptation_flops=adaptation,
            energy_joules=self.device.adaptation_energy_joules(total),
            latency_seconds=self.device.inference_latency_seconds(
                total, self.device_flops_per_second),
            adapted=updates_done > 0)
        self.report.steps.append(meter)
        if self.controller.total_pruned != self._structural_seen:
            # Structural adaptation pruned/created KG nodes, changing the
            # true per-forward cost (edge counts shifted); a cached figure
            # from __init__ would mis-bill every subsequent window.
            self._forward_flops = count_model_forward(self.model).total
            self._structural_seen = self.controller.total_pruned
        return log, meter

    def run(self, stream) -> DeploymentReport:
        """Drive an iterable of batches (each with a ``windows`` attribute
        or a raw array) to completion."""
        for batch in stream:
            windows = getattr(batch, "windows", batch)
            self.process_batch(windows)
        return self.report
