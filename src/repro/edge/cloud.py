"""Cloud-baseline cost model (Table I's left column).

The baseline maintains the deployment by regenerating the mission KG with
GPT-4 in the cloud whenever the anomaly trend changes, then pushing the new
KG to every edge device.  Costs follow the paper's own constants:
1e15 FLOPs and 200 GB of accelerator memory per GPT-4 KG generation,
~0.5 GB of network transfer per KG push, one minute of wall-clock per
generation, and mandatory human intervention per update.
"""

from __future__ import annotations

from dataclasses import dataclass

from .flops import GPT4_KG_GENERATION_FLOPS

__all__ = ["CloudBaseline"]


@dataclass
class CloudBaseline:
    """Monthly cost model for cloud-based KG maintenance."""

    updates_per_month: int = 4
    gpt4_flops_per_update: float = GPT4_KG_GENERATION_FLOPS
    gpt4_memory_gb: float = 200.0
    minutes_per_update: float = 1.0
    bandwidth_gb_per_update: float = 0.5
    requires_human: bool = True

    # -- monthly aggregates ------------------------------------------------
    @property
    def monthly_flops(self) -> float:
        return self.updates_per_month * self.gpt4_flops_per_update

    @property
    def monthly_update_minutes(self) -> float:
        return self.updates_per_month * self.minutes_per_update

    @property
    def monthly_bandwidth_gb(self) -> float:
        return self.updates_per_month * self.bandwidth_gb_per_update

    def scalability(self) -> str:
        """Scaling is bounded by cloud capacity and the human in the loop."""
        return "Limited by Cloud Resources"
