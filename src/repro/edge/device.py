"""Edge-device resource model: storage, memory, energy.

Models a Jetson-class edge box (the deployment target implied by the
paper's "resource-constrained environments").  Energy uses a
joules-per-FLOP efficiency typical of embedded GPUs (~10 GFLOPs/W
effective), which lands adaptation energy in the paper's "~5 J per update"
regime for ~1e9-FLOP updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gnn.pipeline import MissionGNNModel
from ..kg.graph import ReasoningKG

__all__ = ["EdgeDeviceModel"]

_BYTES_PER_PARAM = 8  # we store float64; a real deployment would use fp16/32


@dataclass
class EdgeDeviceModel:
    """Analytical resource model for the edge deployment.

    Parameters
    ----------
    joules_per_flop:
        Energy efficiency of the device (default 1e-10 J/FLOP = 10 GFLOPs/W
        effective throughput, embedded-GPU class).
    storage_overhead:
        Multiplier covering runtime, OS images, codecs beyond raw weights.
    """

    joules_per_flop: float = 1e-10
    storage_overhead: float = 2.0

    # ------------------------------------------------------------------
    def model_bytes(self, model: MissionGNNModel) -> int:
        """Bytes to store the decision model's parameters."""
        return model.num_parameters() * _BYTES_PER_PARAM

    def kg_bytes(self, kg: ReasoningKG) -> int:
        """Bytes to store a KG: structure plus token embeddings."""
        total = 64 * kg.num_nodes + 16 * kg.num_edges  # structure estimate
        for node in kg.concept_nodes():
            if node.token_embeddings is not None:
                total += node.token_embeddings.size * _BYTES_PER_PARAM
        return total

    def storage_gb(self, model: MissionGNNModel) -> float:
        """Edge storage requirement in GB (model + KGs + overhead)."""
        raw = self.model_bytes(model) + sum(self.kg_bytes(kg) for kg in model.kgs)
        return raw * self.storage_overhead / 1e9

    # ------------------------------------------------------------------
    def adaptation_energy_joules(self, flops: float) -> float:
        """Energy for an adaptation phase of the given FLOP cost."""
        return flops * self.joules_per_flop

    def inference_latency_seconds(self, flops: float,
                                  device_flops_per_second: float = 1e10) -> float:
        """Latency estimate at the device's sustained throughput."""
        return flops / device_flops_per_second
