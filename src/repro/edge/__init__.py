"""Edge/cloud cost modeling for Table I."""

from .cloud import CloudBaseline
from .comparison import EfficiencyComparison, TableRow
from .device import EdgeDeviceModel
from .runtime import DeploymentReport, EdgeDeploymentSimulator, StepMeter
from .flops import (
    GPT4_KG_GENERATION_FLOPS,
    FlopCounts,
    count_adaptation_step,
    count_gnn_forward,
    count_model_forward,
    count_temporal_forward,
)

__all__ = [
    "EdgeDeviceModel",
    "CloudBaseline",
    "EfficiencyComparison",
    "TableRow",
    "FlopCounts",
    "count_gnn_forward",
    "count_temporal_forward",
    "count_model_forward",
    "count_adaptation_step",
    "GPT4_KG_GENERATION_FLOPS",
    "EdgeDeploymentSimulator",
    "DeploymentReport",
    "StepMeter",
]
