"""FLOP accounting for the deployed models.

Table I reports computational costs; the paper uses round constants for the
GPT-4 side (1e15 FLOPs per KG generation) and ~1e9 FLOPs/day for edge
adaptation.  We count the *actual* FLOPs of our model shapes so the edge
numbers are measured rather than assumed, and keep the paper's constants
for the cloud side (GPT-4 is not ours to measure).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gnn.layers import GraphSpec
from ..gnn.pipeline import MissionGNNModel

__all__ = ["FlopCounts", "count_gnn_forward", "count_temporal_forward",
           "count_model_forward", "count_adaptation_step",
           "GPT4_KG_GENERATION_FLOPS"]

#: Paper constant: one GPT-4 mission-KG generation costs ~1e15 FLOPs.
GPT4_KG_GENERATION_FLOPS = 1e15


@dataclass(frozen=True)
class FlopCounts:
    """FLOPs broken down by pipeline stage (per frame window)."""

    image_encoder: float
    gnn: float
    temporal: float
    decision: float

    @property
    def total(self) -> float:
        return self.image_encoder + self.gnn + self.temporal + self.decision


def _dense_flops(batch: int, in_dim: int, out_dim: int) -> float:
    return 2.0 * batch * in_dim * out_dim


def count_gnn_forward(model: MissionGNNModel, kg_index: int = 0) -> float:
    """FLOPs for one frame through one KG's hierarchical GNN."""
    reasoner = model.reasoners[kg_index]
    spec: GraphSpec = reasoner.spec
    gnn = reasoner.gnn
    v = spec.num_nodes
    flops = 0.0
    for level, layer in enumerate(gnn.layers):
        flops += _dense_flops(v, layer.in_dim, layer.out_dim)  # Eq. 1
        n_edges = len(spec.edge_sources[level])
        flops += n_edges * layer.out_dim            # Eq. 2 products
        flops += 2.0 * n_edges * layer.out_dim      # Eq. 3 aggregation
        flops += 8.0 * v * layer.out_dim            # batch-norm + ELU
    return flops


def count_temporal_forward(model: MissionGNNModel) -> float:
    """FLOPs for one window through the short-term transformer."""
    encoder = model.temporal.encoder
    t = model.temporal.window
    d = encoder.model_dim
    d_in = encoder.input_dim
    flops = _dense_flops(t, d_in, d)  # input projection
    for layer in encoder.layers:
        flops += 4.0 * _dense_flops(t, d, d)      # q, k, v, o projections
        flops += 2.0 * 2.0 * t * t * d            # scores + context matmuls
        flops += 5.0 * t * t                      # softmax
        ff = layer.ff1.out_features
        flops += _dense_flops(t, d, ff) + _dense_flops(t, ff, d)
        flops += 12.0 * t * d                     # two layer norms + residuals
    flops += _dense_flops(t, d, d_in)  # output projection
    return flops


def count_model_forward(model: MissionGNNModel) -> FlopCounts:
    """Per-window inference FLOPs for the full deployed pipeline."""
    embedding = model.embedding_model
    t = model.temporal.window
    image = 2.0 * t * embedding.frame_dim * embedding.joint_dim
    gnn = t * sum(count_gnn_forward(model, i) for i in range(len(model.reasoners)))
    temporal = count_temporal_forward(model)
    decision = _dense_flops(1, model.reasoning_dim,
                            model.decision.num_anomaly_types + 1)
    return FlopCounts(image_encoder=image, gnn=gnn, temporal=temporal,
                      decision=decision)


def count_adaptation_step(model: MissionGNNModel, batch_windows: int,
                          inner_steps: int, rounds: int) -> float:
    """FLOPs for one full edge adaptation phase.

    Backward passes cost roughly 2x a forward pass, so one gradient
    iteration is ~3x forward; re-scoring between rounds adds one forward
    sweep per round.
    """
    forward = count_model_forward(model).total
    per_round = batch_windows * forward * (1.0 + 3.0 * inner_steps)
    return rounds * per_round
