"""repro.obs — end-to-end request tracing for the serving stack.

Sits at the top of the layer DAG next to :mod:`repro.metrics`: every
serving layer (runtime, serving, wal, gateway, cli) may depend on it,
and it depends only on metrics/utils.  Tracing is strictly opt-in —
every call site guards on ``tracer is not None`` and the hot path is
bit-identical with tracing disabled.

Span catalog (see README "Observability" for the full table):

================== ======== ===========================================
span name          layer    meaning
================== ======== ===========================================
client.request     client   one GatewayClient ingest/scores round trip
gateway.request    gateway  server-side handling of one request
queue.wait         engine   admission-queue residency of one request
stage.score        engine   the request's share of its wave's scoring
stage.ingest       engine   the request's share of its wave's ingest
stage.durability   engine   the request's share of the round commit
engine.round       engine   one full round (own trace, root span)
engine.schedule    engine   policy selection under the engine lock
engine.score       engine   one wave's backend.score call
engine.ingest      engine   one wave's backend.ingest call
engine.durability  engine   the round's durability commit
shard.score        worker   score_only executed in a shard process
shard.ingest       worker   ingest_round executed in a shard process
wal.fsync          wal      one group-commit fsync
================== ======== ===========================================
"""

from .trace import (
    ActiveSpan,
    Span,
    TraceContext,
    TraceRecorder,
    new_span_id,
    new_trace_id,
)
from .export import (
    chrome_trace,
    load_jsonl,
    span_dicts,
    write_chrome_trace,
    write_jsonl,
)
from .report import (
    REQUEST_STAGE_SPANS,
    check_trace,
    render_report,
    render_tree,
    slowest_traces,
    stage_summary,
    trace_groups,
)

__all__ = [
    "ActiveSpan",
    "Span",
    "TraceContext",
    "TraceRecorder",
    "new_span_id",
    "new_trace_id",
    "chrome_trace",
    "load_jsonl",
    "span_dicts",
    "write_chrome_trace",
    "write_jsonl",
    "REQUEST_STAGE_SPANS",
    "check_trace",
    "render_report",
    "render_tree",
    "slowest_traces",
    "stage_summary",
    "trace_groups",
]
