"""Trace exporters: JSONL event log and Chrome trace-event JSON.

JSONL is the durable, grep-able form — one span dict per line, loadable
with :func:`load_jsonl` and consumed by ``repro trace``.  The Chrome
form is a ``{"traceEvents": [...]}`` document that loads directly in
``chrome://tracing`` or https://ui.perfetto.dev: each trace gets its own
timeline row (``tid`` is derived from the trace id) so a request's
stage chain renders as nested bars.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping, Sequence

from .trace import Span

__all__ = [
    "span_dicts",
    "write_jsonl",
    "load_jsonl",
    "chrome_trace",
    "write_chrome_trace",
]


def span_dicts(spans: Iterable[Span | Mapping[str, Any]]) \
        -> list[dict[str, Any]]:
    """Normalise a mix of :class:`Span` objects and dicts to plain dicts."""
    out: list[dict[str, Any]] = []
    for span in spans:
        if isinstance(span, Span):
            out.append(span.to_dict())
        else:
            out.append(dict(span))
    return out


def write_jsonl(spans: Iterable[Span | Mapping[str, Any]],
                path: str | os.PathLike) -> int:
    """Write one span per line; returns the number written."""
    records = span_dicts(spans)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def load_jsonl(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load a span-per-line file, validating each record's schema.

    Raises :class:`ValueError` naming the offending line so ``repro
    trace --check`` failures point at the exact record.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                span = Span.from_dict(payload)
            except (ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            records.append(span.to_dict())
    return records


def _chrome_tid(trace_id: str) -> int:
    """Stable per-trace thread id so each trace renders as one row."""
    try:
        return int(trace_id[:8], 16) % 1_000_000
    except ValueError:
        return abs(hash(trace_id)) % 1_000_000


def chrome_trace(spans: Iterable[Span | Mapping[str, Any]]) \
        -> dict[str, Any]:
    """Build a Chrome trace-event document (complete ``"X"`` events)."""
    events: list[dict[str, Any]] = []
    for record in span_dicts(spans):
        attrs = record.get("attrs") or {}
        events.append({
            "name": record["name"],
            "cat": record["name"].split(".", 1)[0],
            "ph": "X",
            "ts": record["ts"] * 1e6,
            "dur": max(record["dur"], 0.0) * 1e6,
            "pid": int(attrs.get("pid", 0)),
            "tid": _chrome_tid(record["trace_id"]),
            "args": {
                "trace_id": record["trace_id"],
                "span_id": record["span_id"],
                "parent_id": record["parent_id"],
                **{k: v for k, v in attrs.items() if k != "pid"},
            },
        })
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span | Mapping[str, Any]],
                       path: str | os.PathLike) -> int:
    """Write the Chrome trace document; returns the event count."""
    document = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])
