"""Trace contexts, spans, and the bounded in-process recorder.

A *trace* is the story of one request (or one engine round) as it moves
client → gateway → engine → shard worker → WAL.  Each stage contributes
a :class:`Span` — a named interval with a wall-clock start and a
monotonic-measured duration — linked to its parent by ``parent_id``.

Design constraints, in order:

1. **Absent tracing must be free.**  Every call site in the serving
   stack guards on ``tracer is not None``; nothing in this module runs
   on the hot path when tracing is off, and enabling it must not change
   any scored value (ids come from :func:`new_span_id`, never from the
   data path).
2. **Cross-process comparability.**  Span start timestamps are
   ``time.time()`` epoch seconds so spans recorded in shard worker
   processes line up with parent-process spans on one timeline.
   Durations are measured with ``time.perf_counter()`` deltas, which do
   not drift with wall-clock adjustments.
3. **Bounded memory.**  :class:`TraceRecorder` holds at most
   ``capacity`` spans; past that it drops *new* spans (keeping the
   oldest, complete traces rather than a rolling window of fragments)
   and counts the drops.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "TraceContext",
    "Span",
    "ActiveSpan",
    "TraceRecorder",
    "new_trace_id",
    "new_span_id",
]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, never data-dependent)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-digit span id."""
    return uuid.uuid4().hex[:8]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one span within one trace.

    ``trace_id`` names the end-to-end request story; ``span_id`` names
    this hop; ``parent_id`` is the span that caused it (``None`` at the
    root).  Contexts are immutable — derive children with :meth:`child`.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def root(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A new context one level below this span, same trace."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(),
                            parent_id=self.span_id)

    def to_wire(self) -> dict[str, str]:
        """The ``trace`` field stamped on request frames.

        Only identity crosses the wire — the receiver mints its own span
        under ``span_id``, so ``parent_id`` never needs to travel.
        """
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(payload: object) -> "TraceContext | None":
        """Parse a ``trace`` field from a peer; ``None`` if absent/bad.

        Peers that predate tracing send no field at all; hostile or
        buggy peers may send anything.  Neither should error a request,
        so malformed payloads degrade to untraced rather than raising.
        """
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not (isinstance(trace_id, str) and trace_id
                and isinstance(span_id, str) and span_id):
            return None
        return TraceContext(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One finished interval: ``ts`` epoch-seconds start, ``dur`` seconds."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    ts: float
    dur: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "ts": self.ts, "dur": self.dur, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        name = payload.get("name")
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not (isinstance(name, str) and isinstance(trace_id, str)
                and isinstance(span_id, str)):
            raise ValueError(f"span record missing name/trace_id/span_id: "
                             f"{payload!r}")
        parent_id = payload.get("parent_id")
        attrs = payload.get("attrs") or {}
        if not isinstance(attrs, Mapping):
            raise ValueError(f"span attrs must be a mapping: {attrs!r}")
        return cls(name=name, trace_id=trace_id, span_id=span_id,
                   parent_id=parent_id if isinstance(parent_id, str) else None,
                   ts=float(payload.get("ts", 0.0)),
                   dur=float(payload.get("dur", 0.0)),
                   attrs=dict(attrs))

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id,
                            parent_id=self.parent_id)


class ActiveSpan:
    """A span that has started but not yet finished.

    Holds both clocks: the epoch start for the record and the
    ``perf_counter`` origin for the duration.  Unfinished active spans
    are never recorded — abandoning one (e.g. an engine round that turns
    out to be empty) leaves no trace debris.
    """

    __slots__ = ("_recorder", "name", "context", "attrs", "_ts", "_t0",
                 "_done")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 context: TraceContext,
                 attrs: Mapping[str, Any] | None = None):
        self._recorder = recorder
        self.name = name
        self.context = context
        self.attrs = dict(attrs) if attrs else {}
        self._ts = time.time()
        self._t0 = time.perf_counter()
        self._done = False

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def finish(self, **attrs: Any) -> Span:
        """Close the span, merge ``attrs``, record it, and return it."""
        if self._done:
            raise RuntimeError(f"span {self.name!r} finished twice")
        self._done = True
        self.attrs.update(attrs)
        span = Span(name=self.name, trace_id=self.context.trace_id,
                    span_id=self.context.span_id,
                    parent_id=self.context.parent_id,
                    ts=self._ts, dur=time.perf_counter() - self._t0,
                    attrs=self.attrs)
        self._recorder.record(span)
        return span


class TraceRecorder:
    """Thread-safe bounded sink for finished spans.

    All serving threads — the asyncio loop, the round executor, client
    threads, and the sharded backend relaying worker spans — record into
    one instance.  ``capacity`` bounds memory under request floods: once
    full, new spans are dropped and counted (the earliest, complete
    traces are the useful ones for diagnosis; a rolling window would
    keep only fragments of every trace).
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._spans: list[Span] = []    # repro: guarded-by[_lock]
        self._dropped = 0               # repro: guarded-by[_lock]
        self._total = 0                 # repro: guarded-by[_lock]

    # -- recording ----------------------------------------------------

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.capacity:
                self._dropped += 1
            else:
                self._spans.append(span)
                self._total += 1

    def record_dicts(self, payloads: Iterable[Mapping[str, Any]]) -> None:
        """Record spans serialized by another process (shard workers)."""
        for payload in payloads:
            self.record(Span.from_dict(payload))

    def start(self, name: str, parent: TraceContext | None = None,
              attrs: Mapping[str, Any] | None = None) -> ActiveSpan:
        """Open a span: a child of ``parent``, or a new root trace."""
        context = parent.child() if parent is not None else TraceContext.root()
        return ActiveSpan(self, name, context, attrs)

    @contextmanager
    def span(self, name: str, parent: TraceContext | None = None,
             **attrs: Any) -> Iterator[ActiveSpan]:
        active = self.start(name, parent=parent, attrs=attrs)
        try:
            yield active
        finally:
            active.finish()

    def record_span(self, name: str, parent: TraceContext | None,
                    ts: float, dur: float,
                    attrs: Mapping[str, Any] | None = None) -> Span:
        """Record a synthetic span from externally measured timings.

        Used for intervals that are observed rather than wrapped: a
        request's queue wait (known only at dequeue time) and the
        per-request echoes of shared round-stage measurements.
        """
        context = parent.child() if parent is not None else TraceContext.root()
        span = Span(name=name, trace_id=context.trace_id,
                    span_id=context.span_id, parent_id=context.parent_id,
                    ts=ts, dur=dur, attrs=dict(attrs) if attrs else {})
        self.record(span)
        return span

    # -- inspection ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def mark(self) -> int:
        """A monotonic position in the recorded stream (see :meth:`since`)."""
        with self._lock:
            return self._total

    def since(self, mark: int) -> list[Span]:
        """Spans recorded after ``mark`` (used by the slow-round dump)."""
        with self._lock:
            new = self._total - mark
            return list(self._spans[-new:]) if new > 0 else []

    def snapshot(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Snapshot and clear (drops stay counted)."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans
