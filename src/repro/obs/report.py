"""Trace analysis: per-stage summaries, slowest-trace trees, validation.

Everything here normalises its input through
:func:`~repro.obs.export.span_dicts`, so reports work identically on a
live :class:`~repro.obs.TraceRecorder` snapshot (:class:`Span` objects)
and on a file loaded with :func:`~repro.obs.export.load_jsonl` (plain
dicts).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..metrics import percentile
from .export import span_dicts

__all__ = [
    "REQUEST_STAGE_SPANS",
    "stage_summary",
    "trace_groups",
    "slowest_traces",
    "render_tree",
    "render_report",
    "check_trace",
]

#: the stage chain every traced+ingested request must exhibit under its
#: ``gateway.request`` span (the acceptance contract checked by
#: ``repro trace --check`` and the CI trace-smoke job).
REQUEST_STAGE_SPANS = ("queue.wait", "stage.score", "stage.ingest",
                      "stage.durability")


def stage_summary(spans: Iterable[Mapping[str, Any]]) \
        -> dict[str, dict[str, float]]:
    """Per-span-name ``{count, mean_ms, p50_ms, p95_ms, p99_ms}``.

    ``count`` is the true number of spans summarized (traces are not
    reservoir-sampled the way histograms are, but reporting the count
    keeps percentile uncertainty assessable either way).
    """
    by_name: dict[str, list[float]] = {}
    for span in span_dicts(spans):
        by_name.setdefault(span["name"], []).append(float(span["dur"]))
    summary: dict[str, dict[str, float]] = {}
    for name in sorted(by_name):
        durs = by_name[name]
        summary[name] = {
            "count": len(durs),
            "mean_ms": float(np.mean(durs)) * 1e3,
            "p50_ms": percentile(durs, 50, phase=name) * 1e3,
            "p95_ms": percentile(durs, 95, phase=name) * 1e3,
            "p99_ms": percentile(durs, 99, phase=name) * 1e3,
        }
    return summary


def trace_groups(spans: Iterable[Mapping[str, Any]]) \
        -> dict[str, list[dict[str, Any]]]:
    """Group spans by ``trace_id``, each group sorted by start time."""
    groups: dict[str, list[dict[str, Any]]] = {}
    for span in span_dicts(spans):
        groups.setdefault(span["trace_id"], []).append(span)
    for group in groups.values():
        group.sort(key=lambda span: span["ts"])
    return groups


def _trace_duration(group: Sequence[Mapping[str, Any]]) -> float:
    """Critical-path length of a trace: latest end minus earliest start."""
    start = min(span["ts"] for span in group)
    end = max(span["ts"] + span["dur"] for span in group)
    return end - start


def slowest_traces(spans: Iterable[Mapping[str, Any]], n: int = 5) \
        -> list[tuple[str, float, list[dict[str, Any]]]]:
    """Top-``n`` traces by wall duration: ``(trace_id, seconds, spans)``."""
    groups = trace_groups(spans)
    ranked = sorted(groups.items(), key=lambda item: -_trace_duration(item[1]))
    return [(trace_id, _trace_duration(group), group)
            for trace_id, group in ranked[:max(n, 0)]]


def render_tree(group: Sequence[Mapping[str, Any]]) -> str:
    """Render one trace's spans as an indented parent→child tree."""
    by_id = {span["span_id"]: span for span in group}
    children: dict[str | None, list[dict[str, Any]]] = {}
    for span in group:
        parent = span["parent_id"]
        if parent is not None and parent not in by_id:
            parent = None  # parent lives in another process's recorder
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span["ts"])

    lines: list[str] = []

    def walk(span: Mapping[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        noise = {"pid"}
        detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs)
                          if key not in noise)
        lines.append(f"{'  ' * depth}{span['name']:<22} "
                     f"{span['dur'] * 1e3:9.3f} ms"
                     + (f"  [{detail}]" if detail else ""))
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def render_report(spans: Sequence[Mapping[str, Any]], slowest: int = 5) \
        -> str:
    """The ``repro trace --format text`` report: stage table + trees."""
    lines = [f"{len(spans)} spans, "
             f"{len(trace_groups(spans))} traces", "",
             f"{'stage':<22} {'count':>7} {'mean':>9} {'p50':>9} "
             f"{'p95':>9} {'p99':>9}  (ms)"]
    for name, row in stage_summary(spans).items():
        lines.append(f"{name:<22} {row['count']:>7d} {row['mean_ms']:>9.3f} "
                     f"{row['p50_ms']:>9.3f} {row['p95_ms']:>9.3f} "
                     f"{row['p99_ms']:>9.3f}")
    for rank, (trace_id, duration, group) in \
            enumerate(slowest_traces(spans, slowest), start=1):
        lines += ["", f"-- slowest #{rank}: trace {trace_id} "
                      f"({duration * 1e3:.3f} ms, {len(group)} spans)",
                  render_tree(group)]
    return "\n".join(lines)


def check_trace(spans: Sequence[Mapping[str, Any]],
                stages: Sequence[str] = REQUEST_STAGE_SPANS) -> list[str]:
    """Validate the acceptance contract; returns problems (empty = pass).

    Every ``gateway.request`` span for an ``ingest`` op that completed
    (``outcome`` not an error) must have a child span for each required
    stage, each correctly parented, and every span must belong to the
    same trace as its parent.
    """
    problems: list[str] = []
    records = span_dicts(spans)
    by_id = {span["span_id"]: span for span in records}
    children: dict[str, list[dict[str, Any]]] = {}
    for span in records:
        parent = span.get("parent_id")
        if parent is not None:
            children.setdefault(parent, []).append(span)
            known = by_id.get(parent)
            if known is not None and known["trace_id"] != span["trace_id"]:
                problems.append(
                    f"span {span['span_id']} ({span['name']}) crosses "
                    f"traces: parent {parent} is in {known['trace_id']}, "
                    f"child in {span['trace_id']}")
    requests = [span for span in records
                if span["name"] == "gateway.request"
                and (span.get("attrs") or {}).get("op") == "ingest"
                and (span.get("attrs") or {}).get("outcome") == "ok"]
    if not requests:
        problems.append("no completed gateway.request ingest spans found")
    for request in requests:
        have = {child["name"] for child in children.get(request["span_id"], ())}
        missing = [stage for stage in stages if stage not in have]
        if missing:
            problems.append(
                f"request span {request['span_id']} (trace "
                f"{request['trace_id']}, stream "
                f"{(request.get('attrs') or {}).get('stream')}) is missing "
                f"stage spans: {', '.join(missing)}")
    return problems
