"""Command-line interface for the deployment API and the paper's experiments.

Usage (after ``pip install -e .`` the ``repro`` entry point is equivalent):

    python -m repro.cli serve --mission Stealing --set adaptation.monitor.window=72
    python -m repro.cli fleet --streams 8 --missions Stealing Robbery
    python -m repro.cli bench --quick --min-speedup 1.0
    python -m repro.cli gateway --streams 4 --port 7641 --trace-dir traces
    python -m repro.cli loadgen --levels 1 2 4 --trace-dir traces --shards 2
    python -m repro.cli trace traces/trace.jsonl --check
    python -m repro.cli stats --port 7641
    python -m repro.cli fig5 --shift weak
    python -m repro.cli fig5 --shift strong
    python -m repro.cli fig6
    python -m repro.cli table1
    python -m repro.cli multimission --missions Stealing Robbery Explosion
    python -m repro.cli kg --mission Robbery

Every subcommand accepts ``--set key=value`` (repeatable) with dotted
config paths into :class:`repro.api.ReproConfig` — e.g.
``--set adaptation.monitor.window=72 --set experiment.train_steps=200`` —
and ``--config path.json`` to start from a saved config file.  A
subcommand's dedicated flags (``--stream-seed``, ``--steps-before``, ...)
take precedence over the matching ``--set`` path; ``fig6`` keeps its
paper-tuned adaptation defaults unless an ``adaptation.*`` override is
given.

``serve`` runs a streaming deployment end-to-end: cloud-side training (or
a registry/checkpoint fetch), then continuous KG-adaptive serving over a
trend-shift stream, with optional checkpointing via ``--save``.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

from . import __version__
from .data.streams import TrendShiftConfig

_DEFAULT_SEED = 7
_DEFAULT_TRAIN_STEPS = 400


def _build_config(args):
    """ReproConfig from ``--config`` + legacy flags + ``--set`` overrides.

    With ``--config``, the file's values win over the legacy flags'
    *defaults*; a flag still applies when set to a non-default value
    (an explicitly typed default, e.g. ``--seed 7`` next to a config
    file with another seed, is indistinguishable and the file wins —
    use ``--set experiment.seed=7`` to force it).  ``--set`` overrides
    are always applied last.
    """
    from .api import ReproConfig
    using_file = bool(getattr(args, "config", None))
    try:
        config = ReproConfig.load(args.config) if using_file else ReproConfig()
    except FileNotFoundError:
        raise SystemExit(f"error: config file not found: {args.config}")
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"error: bad config file {args.config}: {exc}")
    seed = getattr(args, "seed", None)
    if seed is not None and not (using_file and seed == _DEFAULT_SEED):
        config.experiment.seed = seed
    train_steps = getattr(args, "train_steps", None)
    if train_steps is not None and not (using_file
                                        and train_steps == _DEFAULT_TRAIN_STEPS):
        config.experiment.train_steps = train_steps
    try:
        config.apply_overrides(getattr(args, "overrides", None))
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        raise SystemExit(f"error: {message}")
    return config


def _pipeline(args):
    from .api import Pipeline
    return Pipeline(_build_config(args))


def _context(args):
    return _pipeline(args).context


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", metavar="PATH", default=None,
                        help="start from a ReproConfig JSON file")
    parser.add_argument("--set", metavar="KEY=VALUE", action="append",
                        dest="overrides", default=[],
                        help="dotted-path config override, repeatable "
                             "(e.g. adaptation.monitor.window=72)")


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_config_flags(parser)
    parser.add_argument("--seed", type=int, default=_DEFAULT_SEED,
                        help="experiment seed (default 7)")
    parser.add_argument("--train-steps", type=int, default=_DEFAULT_TRAIN_STEPS,
                        help="cloud-side training steps (default 400)")


def cmd_serve(args) -> int:
    """Streaming deployment: train/fetch, serve a shifting stream, checkpoint."""
    from .api import Deployment
    pipeline = _pipeline(args)
    mission = args.mission or pipeline.config.stream.initial_class
    if args.resume:
        print(f"[deploy] resuming deployment from {args.resume}")
        try:
            deployment = Deployment.load(args.resume, pipeline.embedding_model)
        except FileNotFoundError:
            raise SystemExit(f"error: checkpoint not found: {args.resume}")
        except ValueError as exc:
            raise SystemExit(f"error: cannot resume {args.resume}: {exc}")
        mission = deployment.mission or mission
        if args.static and deployment.adaptive:
            print("[deploy] --static: freezing the resumed deployment "
                  "(no further adaptation)")
            deployment.freeze()
    else:
        print(f"[deploy] building the {mission!r} deployment "
              f"(adaptive={not args.static})")
        deployment = pipeline.deploy(mission, adaptive=not args.static)

    stream = pipeline.stream(
        mission, args.shifted,
        steps_before_shift=args.steps_before, steps_after_shift=args.steps_after,
        seed=args.stream_seed)
    scfg = stream.config
    print(f"[serve] streaming {scfg.total_steps} steps "
          f"({scfg.initial_class} -> {scfg.shifted_class}, "
          f"{scfg.windows_per_step} windows/step)")
    tracer = None
    if args.trace_dir:
        from .obs import TraceRecorder
        tracer = TraceRecorder()
    for event in deployment.serve(stream, tracer=tracer):
        log = event.log
        flags = []
        if log is not None and log.updated:
            flags.append(f"adapted k={log.k}")
        if log is not None and log.pruned:
            flags.append(f"pruned {len(log.pruned)} node(s)")
        note = ("  [" + ", ".join(flags) + "]") if flags else ""
        print(f"  step {event.step:3d} [{event.active_class or '-':9s}] "
              f"mean score {float(event.scores.mean()):.3f}{note}")
    print(f"[serve] done: {deployment.step_count} steps total, "
          f"{deployment.update_count} token updates, "
          f"{deployment.total_pruned} nodes pruned")
    if tracer is not None:
        from pathlib import Path

        from .obs import write_chrome_trace, write_jsonl
        out = Path(args.trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        spans = tracer.snapshot()
        count = write_jsonl(spans, out / "trace.jsonl")
        write_chrome_trace(spans, out / "trace_chrome.json")
        print(f"[serve] traced {count} span(s) -> {out / 'trace.jsonl'} "
              f"(chrome://tracing: {out / 'trace_chrome.json'})")
    if args.save:
        deployment.save(args.save)
        print(f"[serve] checkpointed deployment to {args.save}")
    return 0


def cmd_fleet(args) -> int:
    """Batched multi-stream serving: N streams, mixed missions, one loop."""
    from .serving import build_fleet, build_sharded_fleet
    if args.shards < 1:
        raise SystemExit("error: --shards must be >= 1")
    pipeline = _pipeline(args)
    sharded = args.shards > 1
    print(f"[fleet] building {args.streams} stream(s) over missions "
          f"{args.missions} (adaptive={args.adaptive}, "
          f"batched={not args.sequential}"
          + (f", shards={args.shards}" if sharded else "") + ")")
    build = build_sharded_fleet if sharded else build_fleet
    extra = {"shards": args.shards} if sharded else {}
    fleet = build(pipeline, args.missions, args.streams,
                  adaptive=args.adaptive,
                  windows_per_step=args.windows_per_step,
                  stream_seed=args.stream_seed,
                  max_batch_windows=args.max_batch_windows, **extra)
    try:
        t0 = time.perf_counter()
        total_windows = 0
        for events in fleet.serve(max_rounds=args.rounds,
                                  batched=not args.sequential):
            total_windows += sum(e.scores.size for e in events)
            mean = sum(float(e.scores.mean()) for e in events) / len(events)
            adapted = sum(1 for e in events
                          if e.log is not None and e.log.updated)
            note = f"  [{adapted} stream(s) adapted]" if adapted else ""
            print(f"  round {fleet.rounds:3d}: {len(events):2d} stream(s), "
                  f"mean score {mean:.3f}{note}")
        elapsed = time.perf_counter() - t0
        batches_run = (fleet.batcher_stats()["batches_run"] if sharded
                       else fleet.batcher.batches_run)
        print(f"[fleet] served {total_windows} windows over {fleet.rounds} "
              f"round(s) in {elapsed:.2f}s "
              f"({total_windows / max(elapsed, 1e-9):.1f} windows/s, "
              f"{batches_run} batched forward(s)"
              + (f" across {args.shards} shard(s)" if sharded else "") + ")")
        if args.save:
            fleet.save(args.save)
            print(f"[fleet] checkpointed fleet to {args.save}")
    finally:
        if sharded:
            fleet.close()
    return 0


_QUICK_BENCH_OVERRIDES = (
    ("experiment.train_steps", 40),
    ("experiment.dataset_scale", 0.1),
    ("experiment.frames_per_video", 32),
)


def _apply_quick_overrides(config, args) -> None:
    """Shrink training so CI smoke runs finish in seconds; explicit user
    choices (--set or a non-default --train-steps) still win."""
    overridden = {o.partition("=")[0].strip()
                  for o in getattr(args, "overrides", None) or []}
    for key, value in _QUICK_BENCH_OVERRIDES:
        if key in overridden:
            continue
        if (key == "experiment.train_steps"
                and args.train_steps != _DEFAULT_TRAIN_STEPS):
            continue
        config.override(key, value)


def _shard_curve(shards: int) -> tuple[int, ...]:
    """Doubling shard counts up to ``shards`` (e.g. 4 -> (1, 2, 4))."""
    counts = {1, shards}
    power = 2
    while power < shards:
        counts.add(power)
        power *= 2
    return tuple(sorted(counts))


def cmd_bench(args) -> int:
    """Fleet-serving throughput benchmark; writes a BENCH_*.json artifact."""
    from .serving import (BenchConfig, DEFAULT_BENCH_PATH,
                          DEFAULT_SHARD_BENCH_PATH, format_benchmark,
                          run_benchmark, run_shard_benchmark, write_benchmark)
    from .serving.bench import format_engine_parity, run_engine_parity
    config = _build_config(args)
    if args.quick:
        _apply_quick_overrides(config, args)
    from .api import Pipeline
    pipeline = Pipeline(config)
    # --rounds/--repeats default to None so --quick can shrink the profile
    # without overriding an explicitly passed value.
    rounds = args.rounds if args.rounds is not None else (5 if args.quick else 8)
    repeats = (args.repeats if args.repeats is not None
               else (3 if args.quick else 5))
    bench_config = BenchConfig(
        streams=args.streams, windows_per_step=args.windows_per_step,
        rounds=rounds, repeats=repeats, warmup=args.warmup,
        missions=args.missions, max_batch_windows=args.max_batch_windows,
        stream_seed=args.stream_seed)
    if args.shards is not None and args.shards < 1:
        raise SystemExit("error: --shards must be >= 1")
    if args.min_shard_speedup is not None and args.shards is None:
        raise SystemExit("error: --min-shard-speedup requires --shards")
    print(f"[bench] training {len(set(args.missions))} mission model(s)...")
    if args.shards is not None:
        curve = _shard_curve(args.shards)
        print(f"[bench] shard-scaling curve over {curve} shard(s)...")
        result = run_shard_benchmark(pipeline, bench_config,
                                     shard_counts=curve)
        output = args.output or DEFAULT_SHARD_BENCH_PATH
    else:
        result = run_benchmark(pipeline, bench_config)
        output = args.output or DEFAULT_BENCH_PATH
    if args.engine_parity:
        backends = ("sharded",) if args.shards is not None else ("inline",)
        print(f"[bench] engine parity matrix over backends {backends} x "
              f"policies (fair, greedy, priority)...")
        parity = run_engine_parity(pipeline, bench_config,
                                   shards=args.shards or 2,
                                   backends=backends)
        print(format_engine_parity(parity))
        result["engine_parity"] = parity
    print(format_benchmark(result))
    path = write_benchmark(result, output)
    print(f"[bench] wrote {path}")
    if not result["parity"]["identical"]:
        print("[bench] FAIL: scores diverged between serving modes")
        return 1
    if args.engine_parity \
            and not result["engine_parity"]["parity"]["identical"]:
        print("[bench] FAIL: engine backend x policy matrix diverged "
              "from direct fleet.step() scores")
        return 1
    if args.min_speedup is not None and result["speedup"] < args.min_speedup:
        print(f"[bench] FAIL: speedup {result['speedup']:.2f}x below "
              f"required {args.min_speedup:.2f}x")
        return 1
    if args.min_shard_speedup is not None:
        top = result["shards"][str(max(_shard_curve(args.shards)))]
        if top["speedup_vs_batched"] < args.min_shard_speedup:
            print(f"[bench] FAIL: {args.shards}-shard speedup "
                  f"{top['speedup_vs_batched']:.2f}x vs batched below "
                  f"required {args.min_shard_speedup:.2f}x")
            return 1
    return 0


def cmd_gateway(args) -> int:
    """Serve a fleet over TCP: the network ingestion front door."""
    import asyncio

    from .gateway import GatewayServer
    from .serving import build_fleet, build_sharded_fleet
    if args.shards < 1:
        raise SystemExit("error: --shards must be >= 1")
    pipeline = _pipeline(args)
    sharded = args.shards > 1
    print(f"[gateway] building {args.streams} stream(s) over missions "
          f"{args.missions} (adaptive={args.adaptive}"
          + (f", shards={args.shards}" if sharded else "") + ")")
    build = build_sharded_fleet if sharded else build_fleet
    extra = {"shards": args.shards} if sharded else {}
    fleet = build(pipeline, args.missions, args.streams,
                  adaptive=args.adaptive,
                  windows_per_step=args.windows_per_step,
                  stream_seed=args.stream_seed,
                  max_batch_windows=args.max_batch_windows, **extra)
    wal_kwargs = {}
    if args.wal_dir:
        from .wal import SnapshotPolicy, WalConfig
        wal_kwargs = {
            "wal_dir": args.wal_dir,
            "wal_config": WalConfig(
                fsync_batch=args.wal_fsync_batch,
                fsync_interval_ms=args.wal_fsync_interval_ms),
            "snapshot_policy": SnapshotPolicy(
                every_rounds=args.snapshot_every_rounds,
                max_log_bytes=args.snapshot_max_log_bytes),
        }
    trace_kwargs = {}
    if args.trace_dir:
        trace_kwargs["trace_dir"] = args.trace_dir
    if args.slow_round_ms is not None:
        trace_kwargs["slow_round_ms"] = args.slow_round_ms
    from .errors import DurabilityError
    try:
        server = GatewayServer(fleet, host=args.host, port=args.port,
                               max_queue_depth=args.max_queue_depth,
                               policy=args.policy, codec=args.codec,
                               pipeline=args.pipeline_rounds,
                               **wal_kwargs, **trace_kwargs)
    except DurabilityError as exc:
        fleet.close()
        raise SystemExit(f"error: {exc}")

    async def main() -> None:
        host, port = await server.start()
        print(f"[gateway] listening on {host}:{port} "
              f"(policy: {server.engine.policy.name}, codecs: "
              f"{'/'.join(server.codecs)}) — streams: "
              f"{', '.join(fleet.names)}")
        if args.wal_dir:
            print(f"[gateway] durable: write-ahead log at {args.wal_dir} "
                  "(acks follow the fsync; recover with "
                  f"'repro recover {args.wal_dir}')")
        print("[gateway] rounds: "
              + ("pipelined (async group-commit acks; --no-pipeline for "
                 "the serial loop)" if args.pipeline_rounds
                 else "serial (commit in round)"))
        if args.trace_dir:
            print(f"[gateway] tracing: spans export to {args.trace_dir} "
                  "on drain (summarize with "
                  f"'repro trace {args.trace_dir}/trace.jsonl')")
        print("[gateway] serving until a shutdown frame arrives "
              "(or Ctrl-C)")
        await server.wait_stopped()

    try:
        asyncio.run(main())
        print("[gateway] drained and stopped")
    except KeyboardInterrupt:
        print("\n[gateway] interrupted; shutting down")
    finally:
        fleet.close()
    return 0


def cmd_loadgen(args) -> int:
    """Drive an in-process gateway, verify parity, write BENCH_5.json
    (or, with ``--wal``, the BENCH_6.json durability A/B profile; with
    ``--codec-ab``, the BENCH_7.json wire-codec A/B profile; with
    ``--pipeline-ab``, the BENCH_10.json pipelined-rounds A/B
    profile)."""
    from .api import Pipeline
    from .gateway import (DEFAULT_CODEC_AB_BENCH_PATH,
                          DEFAULT_DURABILITY_BENCH_PATH,
                          DEFAULT_GATEWAY_BENCH_PATH,
                          DEFAULT_PIPELINE_AB_BENCH_PATH,
                          format_codec_ab_benchmark,
                          format_durability_benchmark,
                          format_gateway_benchmark,
                          format_pipeline_ab_benchmark,
                          run_codec_ab_benchmark,
                          run_durability_benchmark, run_gateway_benchmark,
                          run_pipeline_ab_benchmark)
    from .serving import write_benchmark
    if sum(map(bool, (args.wal, args.codec_ab, args.pipeline_ab))) > 1:
        raise SystemExit("error: --wal, --codec-ab and --pipeline-ab are "
                         "separate profiles; pick one")
    if (args.wal or args.codec_ab or args.pipeline_ab) \
            and (args.trace_dir or args.shards):
        raise SystemExit("error: --trace-dir/--shards apply to the "
                         "concurrency sweep only")
    if args.shards < 0:
        raise SystemExit("error: --shards must be >= 0")
    config = _build_config(args)
    if args.quick:
        _apply_quick_overrides(config, args)
    pipeline = Pipeline(config)
    rounds = args.rounds if args.rounds is not None else (4 if args.quick
                                                          else 6)
    wps = args.windows_per_step if args.windows_per_step is not None \
        else (16 if args.pipeline_ab else 2)
    levels = tuple(dict.fromkeys(args.levels))  # dedup, keep order
    if any(level < 1 for level in levels):
        raise SystemExit("error: --levels entries must be >= 1")
    print(f"[loadgen] training {len(set(args.missions))} mission "
          f"model(s)...")
    if args.codec_ab:
        print(f"[loadgen] wire codec A/B: {args.streams} stream(s) x "
              f"{rounds} round(s), levels {list(levels)}, json vs binary "
              "frames at small and large window batches...")
        result = run_codec_ab_benchmark(
            pipeline, streams=args.streams, missions=args.missions,
            windows_per_step=wps, rounds=rounds,
            levels=levels, rate=args.rate, stream_seed=args.stream_seed,
            max_batch_windows=args.max_batch_windows,
            max_queue_depth=args.max_queue_depth, policy=args.policy)
        print(format_codec_ab_benchmark(result))
        path = write_benchmark(result,
                               args.output or DEFAULT_CODEC_AB_BENCH_PATH)
        print(f"[loadgen] wrote {path}")
        if not result["parity"]["identical"]:
            print("[loadgen] FAIL: gateway scores diverged from the "
                  "direct in-process fleet run")
            return 1
        if args.verify and not result["gate"]["large_p50_binary_le_json"]:
            print("[loadgen] FAIL: binary p50 exceeded JSON p50 on the "
                  "large-window profile (the codec regression gate)")
            return 1
        return 0
    if args.pipeline_ab:
        clients = min(args.streams, max(levels))
        print(f"[loadgen] pipelined rounds A/B: {args.streams} stream(s) "
              f"x {rounds} round(s) x {wps} windows/request, {clients} "
              "client(s) — serial vs pipelined parity matrix, rate-paced "
              "WAL A/B, crash drill...")
        result = run_pipeline_ab_benchmark(
            pipeline, streams=args.streams, missions=args.missions,
            windows_per_step=wps, rounds=rounds,
            clients=clients, rate=args.rate, stream_seed=args.stream_seed,
            max_batch_windows=args.max_batch_windows,
            max_queue_depth=args.max_queue_depth, policy=args.policy)
        print(format_pipeline_ab_benchmark(result))
        path = write_benchmark(result,
                               args.output or DEFAULT_PIPELINE_AB_BENCH_PATH)
        print(f"[loadgen] wrote {path}")
        if not result["parity"]["identical"]:
            print("[loadgen] FAIL: a matrix or WAL cell's scores diverged "
                  "from the direct in-process fleet run")
            return 1
        if not result["recovery"]["ok"]:
            print("[loadgen] FAIL: the pipelined crash drill lost or "
                  "corrupted an acked ingest")
            return 1
        if args.verify and not result["gate"]["wal_p50_pipelined_le_serial"]:
            print("[loadgen] FAIL: pipelined p50 exceeded serial p50 on "
                  "the rate-paced WAL profile (the pipelining "
                  "regression gate)")
            return 1
        return 0
    if args.wal:
        clients = levels[0]
        print(f"[loadgen] durability A/B: {args.streams} stream(s) x "
              f"{rounds} round(s), {clients} client(s), with and without "
              "a write-ahead log...")
        result = run_durability_benchmark(
            pipeline, streams=args.streams, missions=args.missions,
            windows_per_step=wps, rounds=rounds,
            clients=clients, rate=args.rate, stream_seed=args.stream_seed,
            max_batch_windows=args.max_batch_windows,
            max_queue_depth=args.max_queue_depth, policy=args.policy)
        print(format_durability_benchmark(result))
        path = write_benchmark(result,
                               args.output or DEFAULT_DURABILITY_BENCH_PATH)
        print(f"[loadgen] wrote {path}")
        if not result["parity"]["identical"]:
            print("[loadgen] FAIL: gateway scores diverged from the "
                  "direct in-process fleet run")
            return 1
        if not result["recovery"]["ok"]:
            print("[loadgen] FAIL: the durable run's WAL did not recover "
                  "to the served stream set")
            return 1
        return 0
    print(f"[loadgen] serving {args.streams} stream(s) x {rounds} round(s) "
          f"at client-concurrency levels {list(levels)}"
          + (f", {args.shards} shard(s)" if args.shards else "")
          + (", traced" if args.trace_dir else "") + "...")
    result = run_gateway_benchmark(
        pipeline, streams=args.streams, missions=args.missions,
        windows_per_step=wps, rounds=rounds,
        levels=levels, rate=args.rate, stream_seed=args.stream_seed,
        max_batch_windows=args.max_batch_windows,
        max_queue_depth=args.max_queue_depth, policy=args.policy,
        codec=args.codec, trace_dir=args.trace_dir, shards=args.shards)
    print(format_gateway_benchmark(result))
    path = write_benchmark(result, args.output or DEFAULT_GATEWAY_BENCH_PATH)
    print(f"[loadgen] wrote {path}")
    if args.trace_dir:
        print(f"[loadgen] summarize the trace with "
              f"'repro trace {result['trace']['jsonl']}'")
    if not result["parity"]["identical"]:
        print("[loadgen] FAIL: gateway scores diverged from the direct "
              "in-process fleet run")
        return 1
    return 0


def cmd_recover(args) -> int:
    """Rebuild a durable fleet from its write-ahead log directory."""
    from .errors import DurabilityError
    from .wal import recover_fleet
    shards = args.shards if args.shards and args.shards > 1 else None
    print(f"[recover] replaying WAL at {args.wal_dir}"
          + (f" into {shards} shard(s)" if shards else ""))
    try:
        fleet, report = recover_fleet(args.wal_dir, shards=shards)
    except DurabilityError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        print(f"[recover] {report.summary()}")
        print(f"[recover] fleet: {len(fleet)} stream(s) "
              f"({', '.join(fleet.names)}), {fleet.rounds} round(s) served")
        if args.verify:
            # Recovery is deterministic: a second replay must land on the
            # bit-identical fleet checkpoint — the cheap self-check that
            # catches a non-reproducible replay before anyone trusts it.
            twin, _ = recover_fleet(args.wal_dir, shards=shards)
            try:
                identical = fleet.to_dict() == twin.to_dict()
            finally:
                twin.close()
            if not identical:
                print("[recover] FAIL: two replays of the same WAL "
                      "produced different fleet state")
                return 1
            print("[recover] verified: double replay is bit-identical")
        if args.save:
            fleet.save(args.save)
            print(f"[recover] checkpointed recovered fleet to {args.save}")
    finally:
        fleet.close()
    return 0


def _experiment_stream(config, **replacements) -> TrendShiftConfig:
    """The config's stream section with the subcommand's dedicated flags
    layered on top, so ``--set stream.*`` overrides stay effective."""
    return dataclasses.replace(config.stream,
                               window=config.experiment.window, **replacements)


def _adaptation_overridden(args) -> bool:
    return any(o.partition("=")[0].strip().startswith("adaptation.")
               for o in getattr(args, "overrides", None) or [])


def cmd_fig5(args) -> int:
    from .api import Pipeline
    from .eval import TrendShiftExperiment, format_trend_shift
    shifted = "Robbery" if args.shift == "weak" else "Explosion"
    config = _build_config(args)
    pipeline = Pipeline(config)
    experiment = TrendShiftExperiment(
        pipeline.context,
        _experiment_stream(config, initial_class=args.initial,
                           shifted_class=shifted,
                           steps_before_shift=args.steps_before,
                           steps_after_shift=args.steps_after,
                           seed=args.stream_seed),
        adaptation_config=config.adaptation)
    print(format_trend_shift(experiment.run()))
    return 0


def cmd_fig6(args) -> int:
    from .api import Pipeline
    from .eval import RetrievalDriftExperiment, format_retrieval_drift
    config = _build_config(args)
    pipeline = Pipeline(config)
    # Fig. 6 has paper-tuned aggressive adaptation defaults (applied when
    # adaptation_config is None); only replace them when the user asked.
    adaptation = config.adaptation if _adaptation_overridden(args) else None
    experiment = RetrievalDriftExperiment(
        pipeline.context, tracked_word=args.tracked, target_word=args.target,
        stream_config=_experiment_stream(
            config, initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=6, steps_after_shift=args.steps_after,
            seed=args.stream_seed),
        adaptation_config=adaptation)
    print(format_retrieval_drift(experiment.run()))
    return 0


def cmd_table1(args) -> int:
    from .api import Pipeline
    from .edge import EfficiencyComparison
    from .eval import EfficiencyExperiment
    config = _build_config(args)
    pipeline = Pipeline(config)
    context = pipeline.context
    experiment = EfficiencyExperiment(
        context, class_a="Stealing", class_b="Robbery",
        alternations=args.alternations, steps_per_phase=10,
        adaptation_config=config.adaptation)
    measured = experiment.run()
    comparison = EfficiencyComparison(
        model=context.train_model("Stealing"),
        auc_baseline=measured.auc_baseline,
        auc_proposed=measured.auc_proposed)
    print(comparison.format_table())
    return 0


def cmd_multimission(args) -> int:
    from .eval.multimission import MultiMissionExperiment
    context = _context(args)
    experiment = MultiMissionExperiment(context, missions=args.missions)
    result = experiment.run()
    print(result.summary())
    if result.type_confusion is not None:
        print("confusion matrix (rows = truth):")
        print(result.type_confusion)
    return 0


def cmd_kg(args) -> int:
    from .concepts import build_default_ontology
    from .kg import KGGenerationConfig, KGGenerator, kg_statistics, render_levels
    from .llm import SyntheticLLM
    config = _build_config(args)
    # --depth wins when given a non-default value; otherwise the config's
    # kg_depth applies (so --set experiment.kg_depth=... is effective).
    depth = args.depth if args.depth != 3 else config.experiment.kg_depth
    oracle = SyntheticLLM(build_default_ontology(), seed=config.experiment.seed)
    generator = KGGenerator(oracle, KGGenerationConfig(depth=depth))
    kg, report = generator.generate(args.mission)
    print(render_levels(kg))
    print(f"\nerrors detected: {len(report.errors_detected)}, "
          f"corrections: {report.corrections_applied}, "
          f"pruned: {report.nodes_pruned}, LLM calls: {report.llm_calls}")
    stats = kg_statistics(kg)
    print(f"reasoning paths: {stats['num_reasoning_paths']}, "
          f"mean fan-in: {stats['mean_fan_in']:.2f}, "
          f"on-path fraction: {stats['on_path_fraction']:.2f}")
    return 0


def cmd_trace(args) -> int:
    """Summarize a trace JSONL file: per-stage percentiles and the
    slowest request trees; ``--check`` gates on chain completeness."""
    import json

    from .obs import (check_trace, chrome_trace, load_jsonl, render_report,
                      slowest_traces, stage_summary)
    try:
        spans = load_jsonl(args.trace_file)
    except FileNotFoundError:
        raise SystemExit(f"error: trace file not found: {args.trace_file}")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if args.format == "chrome":
        text = json.dumps(chrome_trace(spans), indent=2, sort_keys=True)
    elif args.format == "json":
        payload = {
            "spans": len(spans),
            "stages": stage_summary(spans),
            "slowest": [
                {"trace_id": trace_id, "duration_ms": duration * 1e3,
                 "spans": group}
                for trace_id, duration, group
                in slowest_traces(spans, args.slowest)],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
    else:
        text = render_report(spans, slowest=args.slowest)
    if args.output:
        from pathlib import Path
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"[trace] wrote {args.output}")
    else:
        print(text)
    if args.check:
        problems = check_trace(spans)
        if problems:
            for problem in problems:
                print(f"[trace] FAIL: {problem}", file=sys.stderr)
            return 1
        print(f"[trace] check ok: {len(spans)} span(s), every served "
              "request has its complete stage chain", file=sys.stderr)
    return 0


def cmd_stats(args) -> int:
    """Query a running gateway's ``stats`` op and pretty-print it."""
    import json

    from .gateway import GatewayClient, GatewayError
    from .gateway.protocol import FrameError
    try:
        with GatewayClient(args.host, args.port,
                           timeout=args.timeout) as client:
            reply = client.stats()
    except (OSError, ConnectionError, GatewayError, FrameError) as exc:
        raise SystemExit(f"error: cannot fetch stats from "
                         f"{args.host}:{args.port}: {exc}")
    for key in ("ok", "id", "v"):
        reply.pop(key, None)
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True, default=str))
        return 0
    engine = reply.get("engine") or {}
    metrics = reply.get("metrics") or {}
    print(f"[stats] gateway {args.host}:{args.port} — repro "
          f"{reply.get('server_version', '?')}, up "
          f"{reply.get('uptime_seconds', 0.0):.1f}s")
    queued = engine.get("queued") or {}
    print(f"  engine: backend {engine.get('backend', '?')}, policy "
          f"{engine.get('policy', '?')}, {engine.get('rounds', 0)} "
          f"round(s), {sum(queued.values())} queued request(s) across "
          f"{len(queued)} stream(s)")
    coalesce = engine.get("coalesce")
    if coalesce:
        print(f"  coalesce: {coalesce['windows_per_forward']:.2f} "
              f"windows/forward ({coalesce['windows_scored']} windows, "
              f"{coalesce['batches_run']} forward(s))")
    transport = engine.get("transport")
    if transport:
        print("  transport: " + ", ".join(
            f"{key}={value}" for key, value in sorted(transport.items())))
    pipeline = engine.get("pipeline")
    if pipeline:
        print("  pipeline: " + ", ".join(
            f"{key}={value}" for key, value in sorted(pipeline.items())
            if key != "enabled"))
    histograms = metrics.get("histograms") or {}
    populated = {name: hist for name, hist in histograms.items()
                 if hist.get("count")}
    if populated:
        width = max(len(name) for name in populated)
        print("  latency:")
        for name in sorted(populated):
            hist = populated[name]
            print(f"    {name:<{width}s}  n={hist['count']:<8d}"
                  f"p50 {hist.get('p50_ms', float('nan')):8.2f} ms  "
                  f"p95 {hist.get('p95_ms', float('nan')):8.2f} ms  "
                  f"p99 {hist.get('p99_ms', float('nan')):8.2f} ms")
    counters = metrics.get("counters") or {}
    if counters:
        print("  counters: " + ", ".join(
            f"{name}={value:.0f}" for name, value in sorted(counters.items())))
    gauges = metrics.get("gauges") or {}
    if gauges:
        print("  gauges: " + ", ".join(
            f"{name}={value:g}" for name, value in sorted(gauges.items())))
    return 0


def cmd_lint(args) -> int:
    """Run the repro.analysis invariant rules; exit 0 clean, 1 findings."""
    from .analysis import Analyzer, render_json, render_text
    from .analysis.rules import RULES
    rules = None
    if args.rules:
        rules = [RULES[rule_id] for rule_id in args.rules]
    try:
        findings = Analyzer(rules).run(args.paths)
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}")
    if args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    if findings and args.format != "json":
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun}", file=sys.stderr)
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Continuous KG-adaptive VAD reproduction")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve",
                       help="run a streaming edge deployment end-to-end")
    _add_common(p)
    p.add_argument("--mission", default=None,
                   help="mission class to deploy "
                        "(default: config stream.initial_class)")
    p.add_argument("--shifted", default=None,
                   help="anomaly class after the trend shift "
                        "(default: config stream section)")
    p.add_argument("--steps-before", type=int, default=None,
                   help="stream steps before the shift")
    p.add_argument("--steps-after", type=int, default=None,
                   help="stream steps after the shift")
    p.add_argument("--stream-seed", type=int, default=None,
                   help="stream RNG seed (default: config stream.seed)")
    p.add_argument("--static", action="store_true",
                   help="disable continuous adaptation (baseline serving)")
    p.add_argument("--save", metavar="PATH", default=None,
                   help="checkpoint the deployment after serving")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume a previously saved deployment")
    p.add_argument("--trace-dir", metavar="PATH", default=None,
                   help="record per-round engine spans and write "
                        "trace.jsonl + a Chrome-loadable "
                        "trace_chrome.json here")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("fleet",
                       help="serve many concurrent streams with micro-batching")
    _add_common(p)
    p.add_argument("--streams", type=int, default=4,
                   help="number of concurrent streams (default 4)")
    p.add_argument("--missions", nargs="+", default=["Stealing"],
                   help="missions assigned round-robin across streams")
    p.add_argument("--rounds", type=int, default=None,
                   help="serving rounds (default: run streams to exhaustion)")
    p.add_argument("--windows-per-step", type=int, default=2,
                   help="arrival windows per stream per round (default 2)")
    p.add_argument("--stream-seed", type=int, default=100,
                   help="base stream seed; stream i uses seed+i (default 100)")
    p.add_argument("--adaptive", action="store_true",
                   help="continuously adapting deployments (private models; "
                        "default: static shared scoring models)")
    p.add_argument("--sequential", action="store_true",
                   help="disable micro-batching (per-deployment scoring loop)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the fleet across N worker processes "
                        "(default 1: single-process serving)")
    p.add_argument("--max-batch-windows", type=int, default=None,
                   help="cap windows per coalesced forward")
    p.add_argument("--save", metavar="PATH", default=None,
                   help="checkpoint the whole fleet after serving")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("bench",
                       help="fleet-serving throughput benchmark (BENCH_*.json)")
    _add_common(p)
    p.add_argument("--streams", type=int, default=16,
                   help="concurrent streams (default 16)")
    p.add_argument("--missions", nargs="+", default=["Stealing"])
    p.add_argument("--windows-per-step", type=int, default=2,
                   help="arrival windows per stream per round (default 2)")
    p.add_argument("--rounds", type=int, default=None,
                   help="serving rounds per timed pass (default 8; 5 with "
                        "--quick)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timed passes per mode (default 5; 3 with --quick)")
    p.add_argument("--warmup", type=int, default=2,
                   help="untimed passes per mode (default 2)")
    p.add_argument("--stream-seed", type=int, default=100)
    p.add_argument("--max-batch-windows", type=int, default=None)
    p.add_argument("--shards", type=int, default=None,
                   help="also benchmark multi-process sharded serving over "
                        "a doubling curve up to N shards (writes "
                        "BENCH_3.json by default)")
    p.add_argument("--quick", action="store_true",
                   help="small training + fewer repeats (CI smoke profile)")
    p.add_argument("--engine-parity", action="store_true",
                   help="also run the engine backend x scheduling-policy "
                        "parity matrix (inline by default, sharded with "
                        "--shards) and fail on any score divergence")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="result JSON path (default BENCH_2.json, or "
                        "BENCH_3.json with --shards)")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="exit non-zero if batched/sequential speedup is "
                        "below this (CI gate)")
    p.add_argument("--min-shard-speedup", type=float, default=None,
                   help="exit non-zero if the top shard count's speedup vs "
                        "single-process batched is below this (needs real "
                        "cores; CI gates on parity instead)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("gateway",
                       help="serve a fleet over TCP (network gateway)")
    _add_common(p)
    p.add_argument("--streams", type=int, default=4,
                   help="number of fleet streams to expose (default 4)")
    p.add_argument("--missions", nargs="+", default=["Stealing"],
                   help="missions assigned round-robin across streams")
    p.add_argument("--windows-per-step", type=int, default=2,
                   help="expected arrival windows per request (stream "
                        "shape only; clients send what they like)")
    p.add_argument("--stream-seed", type=int, default=100,
                   help="base stream seed; stream i uses seed+i (default 100)")
    p.add_argument("--adaptive", action="store_true",
                   help="continuously adapting deployments (private models)")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the fleet across N worker processes")
    p.add_argument("--policy", choices=("fair", "greedy", "priority"),
                   default=None,
                   help="engine scheduling policy: fair round-robin "
                        "(default), greedy drain, or priority/deadline "
                        "admission — scores are bit-identical under all")
    p.add_argument("--max-batch-windows", type=int, default=None,
                   help="cap windows per coalesced forward")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7641,
                   help="TCP port; 0 picks a free one (default 7641)")
    p.add_argument("--max-queue-depth", type=int, default=8,
                   help="queued requests per stream before backpressure "
                        "(default 8)")
    p.add_argument("--codec", choices=("binary", "json"), default="binary",
                   help="wire codecs to offer: binary (raw float64 frames, "
                        "negotiated per client, JSON always accepted — the "
                        "default) or json (v1-compatible server; binary-"
                        "preferring clients fall back automatically)")
    p.add_argument("--wal-dir", metavar="PATH", default=None,
                   help="durable serving: write-ahead log every accepted "
                        "ingest to this (fresh) directory; acks follow the "
                        "group-commit fsync, and 'repro recover PATH' "
                        "rebuilds the fleet after a crash")
    p.add_argument("--wal-fsync-batch", type=int, default=64,
                   help="group-commit: fsync after this many pending "
                        "appends (default 64)")
    p.add_argument("--wal-fsync-interval-ms", type=float, default=50.0,
                   help="group-commit: fsync when the oldest pending "
                        "append is this old (default 50)")
    p.add_argument("--snapshot-every-rounds", type=int, default=64,
                   help="embed a fleet snapshot and truncate the log every "
                        "N served rounds (default 64)")
    p.add_argument("--snapshot-max-log-bytes", type=int,
                   default=16 * 1024 * 1024,
                   help="also snapshot once this many log bytes accumulate "
                        "(default 16 MiB)")
    p.add_argument("--pipeline", dest="pipeline_rounds",
                   action=argparse.BooleanOptionalAction, default=True,
                   help="pipelined rounds (default on): the group-commit "
                        "fsync and acks run on a committer thread while "
                        "the next round computes; --no-pipeline restores "
                        "the serial commit-in-round loop")
    p.add_argument("--trace-dir", metavar="PATH", default=None,
                   help="trace every request end to end (gateway, engine, "
                        "shard, WAL spans) and export trace.jsonl + a "
                        "Chrome-loadable trace_chrome.json here on drain")
    p.add_argument("--slow-round-ms", type=float, default=None,
                   help="count rounds slower than this many ms (the "
                        "engine.slow_rounds counter) and, with "
                        "--trace-dir, dump each one's spans as "
                        "slow-round-N.jsonl")
    p.set_defaults(func=cmd_gateway)

    p = sub.add_parser("loadgen",
                       help="gateway load benchmark + parity check "
                            "(BENCH_5.json)")
    _add_common(p)
    p.add_argument("--streams", type=int, default=4,
                   help="fleet streams behind the gateway (default 4)")
    p.add_argument("--missions", nargs="+", default=["Stealing"])
    p.add_argument("--policy", choices=("fair", "greedy", "priority"),
                   default=None,
                   help="engine scheduling policy on the server "
                        "(default fair; parity holds under all)")
    p.add_argument("--windows-per-step", type=int, default=None,
                   help="arrival windows per request (default 2; 16 with "
                        "--pipeline-ab, whose fsyncs need real payloads "
                        "to be worth overlapping)")
    p.add_argument("--rounds", type=int, default=None,
                   help="requests per stream (default 6; 4 with --quick)")
    p.add_argument("--levels", type=int, nargs="+", default=[1, 2, 4],
                   help="client-concurrency levels to sweep (default 1 2 4)")
    p.add_argument("--rate", type=float, default=None,
                   help="open-loop total request rate in req/s "
                        "(default: closed-loop, full speed)")
    p.add_argument("--stream-seed", type=int, default=100)
    p.add_argument("--max-batch-windows", type=int, default=None)
    p.add_argument("--max-queue-depth", type=int, default=8,
                   help="server admission limit per stream (default 8)")
    p.add_argument("--quick", action="store_true",
                   help="small training + fewer rounds (CI smoke profile)")
    p.add_argument("--codec", choices=("binary", "json"), default="binary",
                   help="wire codec the load clients negotiate for the "
                        "concurrency sweep (default binary)")
    p.add_argument("--codec-ab", action="store_true",
                   help="wire-codec A/B profile instead of the concurrency "
                        "sweep: serve identical parity-verified load over "
                        "json and binary frames at small and large window "
                        "batches, plus a sharded shared-memory-ring side, "
                        "and record the latency/throughput deltas "
                        "(BENCH_7.json); with --verify, fail unless binary "
                        "p50 <= json p50 on the large profile")
    p.add_argument("--wal", action="store_true",
                   help="durability A/B profile instead of the concurrency "
                        "sweep: serve the identical load with and without "
                        "a write-ahead log, record the p50/p95 overhead, "
                        "and verify the log recovers (BENCH_6.json; uses "
                        "the first --levels entry as the client count)")
    p.add_argument("--pipeline-ab", action="store_true",
                   help="pipelined-rounds A/B profile instead of the "
                        "concurrency sweep: a serial-vs-pipelined x "
                        "json/binary x inline/sharded parity matrix, a "
                        "rate-paced durable A/B of async group-commit "
                        "acks, and a crash-recovery drill against a "
                        "pipelined engine (BENCH_10.json); with --verify, "
                        "fail unless pipelined p50 <= serial p50 with the "
                        "WAL on")
    p.add_argument("--verify", action="store_true",
                   help="fail (exit 1) unless gateway scores are "
                        "bit-identical to the direct in-process run "
                        "(parity is always measured; this is already the "
                        "default behavior, the flag records intent); with "
                        "--codec-ab, additionally enforce the codec "
                        "regression gate; with --pipeline-ab, the "
                        "pipelining regression gate")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="result JSON path (default BENCH_5.json; "
                        "BENCH_6.json with --wal, BENCH_7.json with "
                        "--codec-ab, BENCH_10.json with --pipeline-ab)")
    p.add_argument("--shards", type=int, default=0,
                   help="serve each level from a fleet sharded across N "
                        "worker processes (default 0: inline; the parity "
                        "gate then also covers inline vs sharded)")
    p.add_argument("--trace-dir", metavar="PATH", default=None,
                   help="trace the sweep end to end (client, gateway, "
                        "engine, shard, WAL spans) and write trace.jsonl "
                        "+ a Chrome-loadable trace_chrome.json here")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("recover",
                       help="rebuild a durable fleet from its write-ahead "
                            "log")
    p.add_argument("wal_dir", metavar="WAL_DIR",
                   help="the --wal-dir a durable gateway was serving from")
    p.add_argument("--shards", type=int, default=1,
                   help="rebuild as a sharded fleet over N worker "
                        "processes (default 1: in-process fleet; either "
                        "way the recovered state is bit-identical)")
    p.add_argument("--verify", action="store_true",
                   help="replay the WAL twice and fail unless both "
                        "replays produce the bit-identical fleet "
                        "checkpoint")
    p.add_argument("--save", metavar="PATH", default=None,
                   help="checkpoint the recovered fleet (then serve it "
                        "with a fresh --wal-dir)")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("fig5", help="trend-shift experiment (Fig. 5)")
    _add_common(p)
    p.add_argument("--shift", choices=("weak", "strong"), default="weak")
    p.add_argument("--initial", default="Stealing")
    p.add_argument("--steps-before", type=int, default=6)
    p.add_argument("--steps-after", type=int, default=20)
    p.add_argument("--stream-seed", type=int, default=11)
    p.set_defaults(func=cmd_fig5)

    p = sub.add_parser("fig6", help="interpretable retrieval drift (Fig. 6)")
    _add_common(p)
    p.add_argument("--tracked", default="sneaky")
    p.add_argument("--target", default="firearm")
    p.add_argument("--steps-after", type=int, default=24)
    p.add_argument("--stream-seed", type=int, default=11)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("table1", help="edge-vs-cloud efficiency (Table I)")
    _add_common(p)
    p.add_argument("--alternations", type=int, default=4)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("multimission", help="multi-anomaly-type deployment")
    _add_common(p)
    p.add_argument("--missions", nargs="+",
                   default=["Stealing", "Robbery", "Explosion"])
    p.set_defaults(func=cmd_multimission)

    p = sub.add_parser("kg", help="generate and inspect a mission KG")
    _add_config_flags(p)
    p.add_argument("--mission", default="Stealing")
    p.add_argument("--depth", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_kg)

    p = sub.add_parser("trace",
                       help="summarize a trace JSONL file (per-stage "
                            "percentiles, slowest request trees)")
    p.add_argument("trace_file", metavar="TRACE_JSONL",
                   help="a trace.jsonl written by --trace-dir")
    p.add_argument("--format", choices=("text", "json", "chrome"),
                   default="text",
                   help="text report (default), machine-readable json "
                        "summary, or a chrome://tracing conversion")
    p.add_argument("--slowest", type=int, default=5,
                   help="how many slowest traces to render (default 5)")
    p.add_argument("--check", action="store_true",
                   help="fail (exit 1) unless every served ingest request "
                        "has its complete stage-span chain with "
                        "consistent parentage (the CI smoke gate)")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="write the report here instead of stdout")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("stats",
                       help="query a running gateway's stats op")
    p.add_argument("--host", default="127.0.0.1",
                   help="gateway address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7641,
                   help="gateway port (default 7641)")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="connect/request timeout in seconds (default 10)")
    p.add_argument("--json", action="store_true",
                   help="print the raw stats payload as JSON")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("lint",
                       help="run the AST invariant analyzer "
                            "(layering, locks, async, errors, wire)")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default text)")
    from .analysis.rules import RULES as _LINT_RULES
    p.add_argument("--rule", action="append", dest="rules", default=None,
                   choices=sorted(_LINT_RULES),
                   help="run only this rule id, repeatable "
                        "(default: all rules)")
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # ``repro trace ... | head`` closes stdout mid-report; exit the
        # way a well-behaved pipeline citizen does instead of dumping a
        # traceback (devnull swap stops the interpreter's own flush
        # from re-raising at shutdown).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":
    sys.exit(main())
