"""Command-line interface for running the paper's experiments.

Usage (after ``pip install -e .``):

    python -m repro.cli fig5 --shift weak
    python -m repro.cli fig5 --shift strong
    python -m repro.cli fig6
    python -m repro.cli table1
    python -m repro.cli multimission --missions Stealing Robbery Explosion
    python -m repro.cli kg --mission Robbery

Each subcommand builds the default experiment stack, runs the experiment,
and prints the same report the corresponding benchmark emits.
"""

from __future__ import annotations

import argparse
import sys

from .data.streams import TrendShiftConfig


def _context(args):
    from .eval import ExperimentConfig, ExperimentContext
    return ExperimentContext(ExperimentConfig(
        seed=args.seed, train_steps=args.train_steps))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7,
                        help="experiment seed (default 7)")
    parser.add_argument("--train-steps", type=int, default=400,
                        help="cloud-side training steps (default 400)")


def cmd_fig5(args) -> int:
    from .eval import TrendShiftExperiment, format_trend_shift
    shifted = "Robbery" if args.shift == "weak" else "Explosion"
    context = _context(args)
    experiment = TrendShiftExperiment(context, TrendShiftConfig(
        initial_class=args.initial, shifted_class=shifted,
        steps_before_shift=args.steps_before, steps_after_shift=args.steps_after,
        windows_per_step=24, anomaly_fraction=0.3, window=8,
        seed=args.stream_seed))
    print(format_trend_shift(experiment.run()))
    return 0


def cmd_fig6(args) -> int:
    from .eval import RetrievalDriftExperiment, format_retrieval_drift
    context = _context(args)
    experiment = RetrievalDriftExperiment(
        context, tracked_word=args.tracked, target_word=args.target,
        stream_config=TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=6, steps_after_shift=args.steps_after,
            windows_per_step=24, anomaly_fraction=0.3, window=8,
            seed=args.stream_seed))
    print(format_retrieval_drift(experiment.run()))
    return 0


def cmd_table1(args) -> int:
    from .edge import EfficiencyComparison
    from .eval import EfficiencyExperiment
    context = _context(args)
    experiment = EfficiencyExperiment(
        context, class_a="Stealing", class_b="Robbery",
        alternations=args.alternations, steps_per_phase=10)
    measured = experiment.run()
    comparison = EfficiencyComparison(
        model=context.train_model("Stealing"),
        auc_baseline=measured.auc_baseline,
        auc_proposed=measured.auc_proposed)
    print(comparison.format_table())
    return 0


def cmd_multimission(args) -> int:
    from .eval.multimission import MultiMissionExperiment
    context = _context(args)
    experiment = MultiMissionExperiment(context, missions=args.missions)
    result = experiment.run()
    print(result.summary())
    if result.type_confusion is not None:
        print("confusion matrix (rows = truth):")
        print(result.type_confusion)
    return 0


def cmd_kg(args) -> int:
    from .concepts import build_default_ontology
    from .kg import KGGenerationConfig, KGGenerator, kg_statistics, render_levels
    from .llm import SyntheticLLM
    oracle = SyntheticLLM(build_default_ontology(), seed=args.seed)
    generator = KGGenerator(oracle, KGGenerationConfig(depth=args.depth))
    kg, report = generator.generate(args.mission)
    print(render_levels(kg))
    print(f"\nerrors detected: {len(report.errors_detected)}, "
          f"corrections: {report.corrections_applied}, "
          f"pruned: {report.nodes_pruned}, LLM calls: {report.llm_calls}")
    stats = kg_statistics(kg)
    print(f"reasoning paths: {stats['num_reasoning_paths']}, "
          f"mean fan-in: {stats['mean_fan_in']:.2f}, "
          f"on-path fraction: {stats['on_path_fraction']:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Continuous KG-adaptive VAD reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig5", help="trend-shift experiment (Fig. 5)")
    _add_common(p)
    p.add_argument("--shift", choices=("weak", "strong"), default="weak")
    p.add_argument("--initial", default="Stealing")
    p.add_argument("--steps-before", type=int, default=6)
    p.add_argument("--steps-after", type=int, default=20)
    p.add_argument("--stream-seed", type=int, default=11)
    p.set_defaults(func=cmd_fig5)

    p = sub.add_parser("fig6", help="interpretable retrieval drift (Fig. 6)")
    _add_common(p)
    p.add_argument("--tracked", default="sneaky")
    p.add_argument("--target", default="firearm")
    p.add_argument("--steps-after", type=int, default=24)
    p.add_argument("--stream-seed", type=int, default=11)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("table1", help="edge-vs-cloud efficiency (Table I)")
    _add_common(p)
    p.add_argument("--alternations", type=int, default=4)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("multimission", help="multi-anomaly-type deployment")
    _add_common(p)
    p.add_argument("--missions", nargs="+",
                   default=["Stealing", "Robbery", "Explosion"])
    p.set_defaults(func=cmd_multimission)

    p = sub.add_parser("kg", help="generate and inspect a mission KG")
    p.add_argument("--mission", default="Stealing")
    p.add_argument("--depth", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_kg)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
