"""Shared utilities: deterministic RNG management."""

from .rng import derive_rng, seed_everything, stable_hash

__all__ = ["derive_rng", "seed_everything", "stable_hash"]
