"""Shared utilities: deterministic RNG management, durable serialization."""

from .rng import derive_rng, seed_everything, stable_hash
from .serialization import (
    atomic_write_json,
    atomic_write_text,
    decode_array,
    encode_array,
    fsync_directory,
)

__all__ = ["derive_rng", "seed_everything", "stable_hash",
           "encode_array", "decode_array", "atomic_write_text",
           "atomic_write_json", "fsync_directory"]
