"""Deterministic random-number management.

Every stochastic component in the reproduction (dataset synthesis, model
initialization, the LLM oracle's error injection, node re-creation with
random embeddings) takes an explicit ``numpy.random.Generator``.  This
module provides namespaced derivation so independent subsystems get
decorrelated yet reproducible streams from one experiment seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_hash", "derive_rng", "seed_everything"]


def stable_hash(*parts: str | int) -> int:
    """A process-independent 63-bit hash of the given parts.

    Python's builtin ``hash`` is salted per process; experiments need
    cross-run stability, so we use blake2b.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big") & (2**63 - 1)


def derive_rng(seed: int, *namespace: str | int) -> np.random.Generator:
    """Derive a generator for ``namespace`` from a root experiment seed."""
    return np.random.default_rng(stable_hash(seed, *namespace))


def seed_everything(seed: int) -> np.random.Generator:
    """Seed numpy's legacy global state and return a root Generator."""
    np.random.seed(seed % (2**32))
    return np.random.default_rng(seed)
