"""The binary frame body codec: struct header + raw float64 buffers.

JSON frames carry float windows as ``[[...], ...]`` literals — decimal
repr, parse, and per-element boxing on both ends.  A *binary body* keeps
the small fields as a JSON "meta" section but ships every numpy array as
its raw little-endian float64 bytes::

    [magic u16][version u8][op u8][flags u16][narrays u16]
    [meta_len u32][payload_len u32]          <- 16-byte struct header
    [meta_len bytes of UTF-8 JSON meta]
    [payload_len bytes: the arrays' C-order float64 data, concatenated]

The header is little-endian (:data:`BIN_HEADER`); the two magic bytes
can never open a length-prefixed JSON frame (a valid JSON length prefix
is at most ``MAX_FRAME_BYTES`` big-endian, so its first byte is tiny),
which lets both codecs share one TCP stream and be told apart from the
first bytes alone.  ``meta`` holds the payload dict minus its arrays
plus a ``"_arrays"`` table of ``[field, shape]`` pairs, in payload
order, so decoding rebuilds the exact dict that was encoded — float64
round-trips bit-for-bit by construction, no repr/parse in the loop.

This module is deliberately below every serving layer (``repro.utils``):
the gateway protocol wraps it for the wire (adding op-code mapping and
stream framing) and the write-ahead log reuses it verbatim for
``ingest`` record payloads, replacing base64 window blobs.
"""

from __future__ import annotations

import json
import struct
from math import prod
from typing import NamedTuple

import numpy as np

__all__ = ["BIN_MAGIC", "BIN_HEADER", "BinaryHeader", "BinaryFormatError",
           "is_binary", "parse_header", "encode_payload", "decode_body",
           "decode_payload", "split_payload"]

#: Two bytes no JSON frame can start with (see module docstring).
BIN_MAGIC = b"\xb7\xf3"

#: magic, version, op, flags, narrays, meta_len, payload_len.
BIN_HEADER = struct.Struct("<2sBBHHII")

_FLOAT64_LE = np.dtype("<f8")


class BinaryHeader(NamedTuple):
    """The parsed fixed header of one binary body."""

    version: int
    op: int
    flags: int
    narrays: int
    meta_len: int
    payload_len: int

    @property
    def body_len(self) -> int:
        """Bytes that follow the 16-byte header."""
        return self.meta_len + self.payload_len


class BinaryFormatError(ValueError):
    """The bytes do not hold a well-formed binary body."""


def is_binary(prefix: bytes) -> bool:
    """Whether a byte prefix (>= 2 bytes) opens a binary body."""
    return prefix[:2] == BIN_MAGIC


def parse_header(header: bytes,
                 max_bytes: int | None = None) -> BinaryHeader:
    """Parse and sanity-check the 16-byte fixed header."""
    if len(header) != BIN_HEADER.size:
        raise BinaryFormatError(
            f"binary header must be {BIN_HEADER.size} bytes, "
            f"got {len(header)}")
    magic, version, op, flags, narrays, meta_len, payload_len = \
        BIN_HEADER.unpack(header)
    if magic != BIN_MAGIC:
        raise BinaryFormatError(
            f"bad binary magic {magic.hex()} (expected {BIN_MAGIC.hex()})")
    if meta_len == 0:
        raise BinaryFormatError("binary body has a zero-length meta section")
    if max_bytes is not None \
            and BIN_HEADER.size + meta_len + payload_len > max_bytes:
        raise BinaryFormatError(
            f"binary body of {BIN_HEADER.size + meta_len + payload_len} "
            f"bytes exceeds the {max_bytes}-byte limit")
    return BinaryHeader(version=version, op=op, flags=flags,
                        narrays=narrays, meta_len=meta_len,
                        payload_len=payload_len)


def split_payload(payload: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Partition a payload dict into (JSON-able meta, array fields).

    Every top-level :class:`numpy.ndarray` value becomes a float64 array
    field; everything else stays in the meta dict untouched.
    """
    meta: dict = {}
    arrays: dict[str, np.ndarray] = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            arrays[key] = np.ascontiguousarray(value, dtype=_FLOAT64_LE)
        else:
            meta[key] = value
    return meta, arrays


def encode_payload(payload: dict, *, version: int = 1, op: int = 0,
                   flags: int = 0, max_bytes: int | None = None) -> bytes:
    """Serialize one payload dict to a self-delimiting binary body.

    Array fields (top-level ``numpy.ndarray`` values) ride as raw
    little-endian float64 buffers; the rest is the JSON meta section.
    ``max_bytes`` enforces the frame cap at *write* time — better a
    :class:`BinaryFormatError` here than an oversized body the peer will
    reject after buffering it.
    """
    meta, arrays = split_payload(payload)
    meta["_arrays"] = [[key, list(array.shape)]
                       for key, array in arrays.items()]
    try:
        meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise BinaryFormatError(
            f"payload meta is not JSON-serializable: {exc}") from None
    buffers = [array.tobytes(order="C") for array in arrays.values()]
    payload_len = sum(len(buffer) for buffer in buffers)
    total = BIN_HEADER.size + len(meta_bytes) + payload_len
    if max_bytes is not None and total > max_bytes:
        raise BinaryFormatError(
            f"binary body of {total} bytes exceeds the "
            f"{max_bytes}-byte limit")
    if not 0 <= version <= 0xFF or not 0 <= op <= 0xFF \
            or not 0 <= flags <= 0xFFFF:
        raise BinaryFormatError(
            f"header field out of range: version={version} op={op} "
            f"flags={flags}")
    header = BIN_HEADER.pack(BIN_MAGIC, version, op, flags, len(arrays),
                             len(meta_bytes), payload_len)
    return b"".join([header, meta_bytes, *buffers])


def decode_body(header: BinaryHeader, body: bytes) -> dict:
    """Decode the bytes after the fixed header (meta + buffers) back to
    the payload dict; arrays come back as fresh writable float64
    ndarrays."""
    if len(body) != header.body_len:
        raise BinaryFormatError(
            f"binary body is {len(body)} bytes; header promised "
            f"{header.body_len}")
    try:
        meta = json.loads(body[:header.meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BinaryFormatError(
            f"malformed binary meta section: {exc}") from None
    if not isinstance(meta, dict):
        raise BinaryFormatError(
            f"binary meta must be a JSON object, "
            f"got {type(meta).__name__}")
    table = meta.pop("_arrays", None)
    if not isinstance(table, list) or len(table) != header.narrays:
        raise BinaryFormatError(
            f"binary meta '_arrays' table has "
            f"{len(table) if isinstance(table, list) else 'no'} entries; "
            f"header promised {header.narrays}")
    payload = dict(meta)
    offset = header.meta_len
    end = header.body_len
    for entry in table:
        if (not isinstance(entry, list) or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], list)
                or not all(isinstance(dim, int) and not isinstance(dim, bool)
                           and dim >= 0 for dim in entry[1])):
            raise BinaryFormatError(
                f"malformed '_arrays' table entry: {entry!r}")
        field, shape = entry
        nbytes = prod(shape) * _FLOAT64_LE.itemsize if shape else \
            _FLOAT64_LE.itemsize
        if offset + nbytes > end:
            raise BinaryFormatError(
                f"array field {field!r} with shape {shape} needs {nbytes} "
                f"payload bytes but only {end - offset} remain")
        # bytearray, not bytes: the rebuilt arrays view this buffer, and
        # downstream code expects writable windows/scores.
        chunk = bytearray(body[offset:offset + nbytes])
        payload[field] = np.frombuffer(
            chunk, dtype=_FLOAT64_LE).reshape(shape)
        offset += nbytes
    if offset != end:
        raise BinaryFormatError(
            f"binary payload has {end - offset} trailing bytes not "
            f"claimed by any array field")
    return payload


def decode_payload(data: bytes,
                   max_bytes: int | None = None) -> tuple[dict, BinaryHeader]:
    """Decode one complete binary body (header included); returns the
    payload dict and its parsed header."""
    if len(data) < BIN_HEADER.size:
        raise BinaryFormatError(
            f"binary body of {len(data)} bytes is shorter than the "
            f"{BIN_HEADER.size}-byte header")
    header = parse_header(data[:BIN_HEADER.size], max_bytes=max_bytes)
    return decode_body(header, data[BIN_HEADER.size:]), header
