"""JSON-safe numpy array codec shared by every checkpoint format.

Arrays are stored as base64-encoded float64 bytes plus a shape, which
keeps deployment artifacts plain JSON (inspectable, diffable) while
round-tripping bit-exactly.

:func:`atomic_write_text` / :func:`atomic_write_json` are the one
durable-save path every checkpoint writer uses: a plain
``Path.write_text`` that crashes mid-write leaves a truncated file where
the *only* copy of a fleet or deployment snapshot used to be.  Writing a
temp file in the same directory, fsyncing it, and ``os.replace``-ing it
over the target makes the save all-or-nothing — readers only ever see
the old complete file or the new complete file.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["encode_array", "decode_array", "atomic_write_text",
           "atomic_write_json", "fsync_directory"]


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (rename/create durability); a
    no-op on platforms that cannot fsync directories."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Crash-safe replacement for ``Path(path).write_text(text)``.

    The text lands in a temp file beside the target (same filesystem, so
    the final rename is atomic), is fsynced, then ``os.replace``d over
    the target; the directory entry is fsynced last so the rename itself
    survives a power loss.  A crash at any point leaves either the old
    file or the new one — never a truncated hybrid.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent or Path("."),
                                    prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with_error = Path(tmp_name)
        if with_error.exists():
            with_error.unlink()
        raise
    fsync_directory(path.parent)


def atomic_write_json(path: str | Path, payload) -> None:
    """:func:`atomic_write_text` over ``json.dumps(payload)`` — the
    shared save path for every JSON checkpoint format in this repo."""
    atomic_write_text(path, json.dumps(payload))


def encode_array(array: np.ndarray) -> dict:
    array = np.asarray(array, dtype=np.float64)
    return {"shape": list(array.shape),
            "data": base64.b64encode(array.tobytes()).decode()}


def decode_array(payload: dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.float64).reshape(payload["shape"]).copy()
