"""JSON-safe numpy array codec shared by every checkpoint format.

Arrays are stored as base64-encoded float64 bytes plus a shape, which
keeps deployment artifacts plain JSON (inspectable, diffable) while
round-tripping bit-exactly.
"""

from __future__ import annotations

import base64

import numpy as np

__all__ = ["encode_array", "decode_array"]


def encode_array(array: np.ndarray) -> dict:
    array = np.asarray(array, dtype=np.float64)
    return {"shape": list(array.shape),
            "data": base64.b64encode(array.tobytes()).decode()}


def decode_array(payload: dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.float64).reshape(payload["shape"]).copy()
