"""The surveillance-domain concept ontology (ConceptNet-lite).

Structure
---------
* 13 anomaly classes — exactly UCF-Crime's taxonomy — plus normal activities.
* Each class owns a layered vocabulary of reasoning concepts:
  depth 1 = key indicators (what an LLM lists first when asked "how would
  you recognize <anomaly> in surveillance footage?"), depth 2 = observable
  evidence, depth 3 = fine-grained visual cues.  These depths drive the
  level-by-level KG expansion loop of the paper's Fig. 3.
* Classes are grouped into semantic clusters; cluster membership defines
  what the paper calls *weak* shifts (related anomalies, e.g. Stealing ->
  Robbery, both acquisitive crimes) vs *strong* shifts (distant anomalies,
  e.g. Stealing -> Explosion).
* Concept-to-concept relation edges (`related_to`) let the oracle propose
  cross-links and let tests check retrieval semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Concept",
    "ConceptOntology",
    "ANOMALY_CLASSES",
    "NORMAL_ACTIVITIES",
    "CLASS_CLUSTERS",
    "build_default_ontology",
]

#: UCF-Crime's 13 anomaly classes (Sultani et al., CVPR 2018).
ANOMALY_CLASSES: tuple[str, ...] = (
    "Abuse", "Arrest", "Arson", "Assault", "Burglary", "Explosion",
    "Fighting", "RoadAccidents", "Robbery", "Shooting", "Shoplifting",
    "Stealing", "Vandalism",
)

#: Normal surveillance activities used for the non-anomalous data stream.
NORMAL_ACTIVITIES: tuple[str, ...] = (
    "walking", "shopping", "driving", "waiting", "talking", "jogging",
    "cycling", "queueing", "sitting", "carrying bag", "crossing street",
    "browsing shelf", "entering store", "exiting store", "parking car",
)

#: Semantic clusters.  Classes in the same cluster are "weakly" separated;
#: classes in different clusters are "strongly" separated.
CLASS_CLUSTERS: dict[str, tuple[str, ...]] = {
    "acquisitive": ("Stealing", "Robbery", "Shoplifting", "Burglary"),
    "violence": ("Assault", "Fighting", "Abuse", "Shooting"),
    "fire": ("Explosion", "Arson"),
    "public-order": ("Arrest", "Vandalism", "RoadAccidents"),
}

# Layered reasoning vocabulary per anomaly class.  Index 0 = depth-1 key
# indicators, index 1 = depth-2 observable evidence, index 2 = depth-3 cues.
_CLASS_CONCEPTS: dict[str, tuple[tuple[str, ...], ...]] = {
    "Stealing": (
        ("sneaky", "unattended item", "grabbing", "concealment"),
        ("looking around", "pocketing object", "quick snatch", "hiding in jacket",
         "opportunistic approach"),
        ("slipping wallet", "unzipped bag", "palming item", "covert glance",
         "tucking under arm", "swift hand movement"),
    ),
    "Robbery": (
        ("firearm", "threatening", "demanding valuables", "masked person"),
        ("pointing weapon", "raised hands", "cash register grab", "forceful demand",
         "hostage posture"),
        ("gun drawn", "knife brandished", "cashier panic", "bag stuffing",
         "fleeing with loot", "threat gesture"),
    ),
    "Shoplifting": (
        ("concealment", "merchandise", "tag removal", "nervous browsing"),
        ("hiding in coat", "bag switching", "price swap", "checkout avoidance",
         "aisle loitering"),
        ("stuffing backpack", "removing security tag", "layered clothing",
         "mirror checking", "exit rush", "shelf sweeping"),
    ),
    "Burglary": (
        ("forced entry", "breaking in", "trespassing", "night prowling"),
        ("window smashing", "lock picking", "door prying", "property search",
         "flashlight sweep"),
        ("crowbar use", "glass shards", "ransacked drawers", "climbing fence",
         "masked entry", "disabled alarm"),
    ),
    "Assault": (
        ("physical attack", "aggression", "victim", "sudden violence"),
        ("punching", "shoving", "kicking", "victim falling", "aggressor chasing"),
        ("raised fist", "headlock", "ground struggle", "defensive posture",
         "bystander fleeing", "repeated blows"),
    ),
    "Fighting": (
        ("brawl", "mutual combat", "crowd gathering", "aggressive posture"),
        ("exchanging punches", "grappling", "wrestling", "circle of onlookers",
         "separating parties"),
        ("swinging arms", "tackling", "torn clothing", "staggering combatant",
         "thrown object", "chaotic scuffle"),
    ),
    "Abuse": (
        ("mistreatment", "power imbalance", "victim distress", "repeated harm"),
        ("striking dependent", "cornering victim", "intimidation", "cowering person",
         "forceful grabbing"),
        ("raised hand threat", "flinching child", "dragged person", "verbal tirade",
         "trapped in corner", "shielding face"),
    ),
    "Shooting": (
        ("firearm", "gunfire", "muzzle flash", "people fleeing"),
        ("aiming weapon", "shots fired", "victim collapsing", "taking cover",
         "panic scattering"),
        ("recoil motion", "shell casings", "smoke wisp", "crouched shooter",
         "shattered window", "screaming crowd"),
    ),
    "Explosion": (
        ("blast", "fireball", "smoke plume", "debris"),
        ("shockwave", "flames erupting", "shattered glass", "dust cloud",
         "people thrown"),
        ("orange flash", "billowing smoke", "scattered fragments", "collapsed wall",
         "fire spreading", "charred ground"),
    ),
    "Arson": (
        ("fire setting", "accelerant", "deliberate ignition", "smoke"),
        ("pouring liquid", "lighting match", "flames climbing", "fleeing igniter",
         "gas can"),
        ("lighter flick", "fuel trail", "rapid fire spread", "torched vehicle",
         "smoke under door", "burning rag"),
    ),
    "Arrest": (
        ("police officer", "handcuffs", "detainment", "patrol car"),
        ("restraining suspect", "reading rights", "escorting detainee", "uniformed presence",
         "frisking"),
        ("hands behind back", "badge visible", "suspect against wall", "flashing lights",
         "backup arriving", "compliant kneeling"),
    ),
    "Vandalism": (
        ("property damage", "graffiti", "smashing", "defacement"),
        ("spray painting", "breaking window", "kicking fixture", "overturning bin",
         "keying car"),
        ("paint can shake", "cracked glass", "bent signpost", "tagged wall",
         "stomped planter", "thrown brick"),
    ),
    "RoadAccidents": (
        ("vehicle collision", "crash", "skidding", "pedestrian struck"),
        ("cars colliding", "motorbike falling", "sudden braking", "vehicle rollover",
         "traffic pileup"),
        ("crumpled hood", "broken headlight", "skid marks", "airbag deploy",
         "scattered parts", "stopped traffic"),
    ),
}

# Cross-class relations (ConceptNet-style `related_to` edges between concept
# words).  Used by the oracle to propose plausible cross-links and by tests.
_RELATED: tuple[tuple[str, str], ...] = (
    ("sneaky", "looking around"),
    ("sneaky", "concealment"),
    ("concealment", "hiding in coat"),
    ("firearm", "gun drawn"),
    ("firearm", "aiming weapon"),
    ("threatening", "pointing weapon"),
    ("threatening", "intimidation"),
    ("grabbing", "quick snatch"),
    ("grabbing", "forceful grabbing"),
    ("blast", "shockwave"),
    ("smoke plume", "billowing smoke"),
    ("smoke", "smoke plume"),
    ("fire setting", "flames erupting"),
    ("physical attack", "punching"),
    ("brawl", "exchanging punches"),
    ("masked person", "masked entry"),
    ("breaking in", "window smashing"),
    ("merchandise", "shelf sweeping"),
    ("police officer", "restraining suspect"),
    ("vehicle collision", "cars colliding"),
    ("graffiti", "spray painting"),
    ("demanding valuables", "cash register grab"),
    ("gunfire", "shots fired"),
    ("victim", "victim falling"),
)


@dataclass(frozen=True)
class Concept:
    """A single ontology concept.

    Attributes
    ----------
    text:
        The short natural-language phrase (KG node label).
    depth:
        Reasoning depth (1 = key indicator ... 3 = fine cue); 0 for
        normal-activity and class-name concepts.
    classes:
        Anomaly classes this concept is evidence for (possibly several).
    is_normal:
        True for normal-activity concepts.
    """

    text: str
    depth: int
    classes: tuple[str, ...] = ()
    is_normal: bool = False


class ConceptOntology:
    """Queryable concept ontology with class/depth/relation indexes."""

    def __init__(self, concepts: list[Concept],
                 related: tuple[tuple[str, str], ...] = ()):
        self._by_text: dict[str, Concept] = {}
        for concept in concepts:
            if concept.text in self._by_text:
                existing = self._by_text[concept.text]
                merged = Concept(
                    text=concept.text,
                    depth=min(existing.depth, concept.depth) or max(existing.depth, concept.depth),
                    classes=tuple(sorted(set(existing.classes) | set(concept.classes))),
                    is_normal=existing.is_normal or concept.is_normal,
                )
                self._by_text[concept.text] = merged
            else:
                self._by_text[concept.text] = concept
        self._related: dict[str, set[str]] = {}
        for a, b in related:
            if a in self._by_text and b in self._by_text:
                self._related.setdefault(a, set()).add(b)
                self._related.setdefault(b, set()).add(a)

    # -- lookups --------------------------------------------------------
    def __contains__(self, text: str) -> bool:
        return text in self._by_text

    def __len__(self) -> int:
        return len(self._by_text)

    def get(self, text: str) -> Concept:
        return self._by_text[text]

    def all_concepts(self) -> list[Concept]:
        return sorted(self._by_text.values(), key=lambda c: c.text)

    def vocabulary(self) -> list[str]:
        """All concept phrases, sorted for determinism."""
        return sorted(self._by_text)

    def concepts_for_class(self, anomaly_class: str, depth: int | None = None) -> list[Concept]:
        """Concepts that are evidence for ``anomaly_class`` (optionally at a depth)."""
        if anomaly_class not in ANOMALY_CLASSES:
            raise KeyError(f"unknown anomaly class: {anomaly_class!r}")
        result = [c for c in self.all_concepts()
                  if anomaly_class in c.classes and not c.is_normal]
        if depth is not None:
            result = [c for c in result if c.depth == depth]
        return result

    def normal_concepts(self) -> list[Concept]:
        return [c for c in self.all_concepts() if c.is_normal]

    def related(self, text: str) -> list[str]:
        return sorted(self._related.get(text, ()))

    def max_depth(self, anomaly_class: str) -> int:
        concepts = self.concepts_for_class(anomaly_class)
        return max((c.depth for c in concepts), default=0)

    # -- cluster semantics ------------------------------------------------
    @staticmethod
    def cluster_of(anomaly_class: str) -> str:
        for cluster, members in CLASS_CLUSTERS.items():
            if anomaly_class in members:
                return cluster
        raise KeyError(f"unknown anomaly class: {anomaly_class!r}")

    @classmethod
    def shift_strength(cls, from_class: str, to_class: str) -> str:
        """Classify a trend shift as ``'weak'`` (same cluster) or ``'strong'``."""
        if from_class == to_class:
            return "none"
        same = cls.cluster_of(from_class) == cls.cluster_of(to_class)
        return "weak" if same else "strong"


def build_default_ontology() -> ConceptOntology:
    """Construct the full built-in surveillance ontology."""
    concepts: list[Concept] = []
    for class_name, layers in _CLASS_CONCEPTS.items():
        for depth_index, words in enumerate(layers, start=1):
            for word in words:
                concepts.append(Concept(text=word, depth=depth_index,
                                        classes=(class_name,)))
    for activity in NORMAL_ACTIVITIES:
        concepts.append(Concept(text=activity, depth=1, is_normal=True))
    # Class names themselves are retrievable concepts (depth 0).
    for class_name in ANOMALY_CLASSES:
        concepts.append(Concept(text=class_name.lower(), depth=0,
                                classes=(class_name,)))
    return ConceptOntology(concepts, related=_RELATED)
