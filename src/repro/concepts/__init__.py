"""ConceptNet-lite: a typed concept ontology for the surveillance domain.

The paper generates its mission-specific KG with GPT-4 + ConceptNet 5.  This
package is the offline substitute: a curated ontology of the 13 UCF-Crime
anomaly classes, normal surveillance activities, and the concept vocabulary
an LLM would produce when asked to reason about each anomaly — organized so
that a deterministic oracle (:mod:`repro.llm`) can walk it level by level.
"""

from .ontology import (
    ANOMALY_CLASSES,
    CLASS_CLUSTERS,
    NORMAL_ACTIVITIES,
    Concept,
    ConceptOntology,
    build_default_ontology,
)
from .vectors import ConceptSpace

__all__ = [
    "Concept",
    "ConceptOntology",
    "ConceptSpace",
    "ANOMALY_CLASSES",
    "NORMAL_ACTIVITIES",
    "CLASS_CLUSTERS",
    "build_default_ontology",
]
