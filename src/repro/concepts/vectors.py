"""Deterministic concept vector space.

This is the latent semantic geometry underlying the whole synthetic
evaluation.  Every ontology concept gets a unit vector such that:

* concepts belonging to the same anomaly class cluster together;
* anomaly classes in the same semantic cluster (e.g. Stealing and Robbery,
  both acquisitive crimes) have *correlated* class anchors, while classes
  in different clusters (Stealing vs Explosion) are nearly orthogonal;
* normal-activity concepts live in their own region.

These properties are exactly what makes the paper's weak-vs-strong
anomaly-shift distinction (Fig. 5 A/B) meaningful in our reproduction: a
weak shift moves the data distribution a short distance in concept space,
a strong shift moves it far.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import derive_rng
from .ontology import ANOMALY_CLASSES, CLASS_CLUSTERS, ConceptOntology

__all__ = ["ConceptSpace"]


def _normalize(v: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(v, axis=-1, keepdims=True)
    return v / np.maximum(norm, 1e-12)


class ConceptSpace:
    """Maps ontology concepts and anomaly classes to unit vectors.

    Parameters
    ----------
    ontology:
        The concept ontology to embed.
    dim:
        Dimensionality of the semantic space (paper's joint space is large;
        64 is ample for 13 classes and keeps the reproduction fast).
    seed:
        Root seed; all vectors are deterministic functions of it.
    cluster_spread:
        How far class anchors deviate from their cluster anchor.  Smaller
        values make same-cluster classes more similar (weaker shifts).
    concept_spread:
        How far concept vectors deviate from their class anchor(s).
    normal_spread:
        Spread of normal-activity concepts around the normal anchor.  Kept
        deliberately wide: real "normal" surveillance footage is diverse,
        which prevents the decision model from collapsing to a trivial
        one-class "far from normal" rule and forces it to rely on KG
        concept alignment (the property the paper's trend-shift dynamics
        depend on).
    """

    def __init__(self, ontology: ConceptOntology, dim: int = 64, seed: int = 7,
                 cluster_spread: float = 1.0, concept_spread: float = 0.45,
                 normal_spread: float = 1.5):
        self.ontology = ontology
        self.dim = dim
        self.seed = seed
        self.cluster_spread = cluster_spread
        self.concept_spread = concept_spread
        self.normal_spread = normal_spread

        self._cluster_anchor: dict[str, np.ndarray] = {}
        for cluster in sorted(CLASS_CLUSTERS):
            rng = derive_rng(seed, "cluster", cluster)
            self._cluster_anchor[cluster] = _normalize(rng.normal(size=dim))

        rng = derive_rng(seed, "normal-anchor")
        self._normal_anchor = _normalize(rng.normal(size=dim))

        self._class_anchor: dict[str, np.ndarray] = {}
        for class_name in ANOMALY_CLASSES:
            cluster = ConceptOntology.cluster_of(class_name)
            rng = derive_rng(seed, "class", class_name)
            noise = _normalize(rng.normal(size=dim))
            anchor = self._cluster_anchor[cluster] + cluster_spread * noise
            self._class_anchor[class_name] = _normalize(anchor)

        self._concept_vec: dict[str, np.ndarray] = {}
        for concept in ontology.all_concepts():
            rng = derive_rng(seed, "concept", concept.text)
            noise = _normalize(rng.normal(size=dim))
            if concept.is_normal:
                base = self._normal_anchor
            elif concept.classes:
                base = _normalize(
                    np.mean([self._class_anchor[c] for c in concept.classes], axis=0))
            else:
                base = np.zeros(dim)
            # Deeper concepts are finer-grained: slightly more idiosyncratic.
            if concept.is_normal:
                spread = normal_spread
            else:
                spread = concept_spread * (1.0 + 0.15 * max(concept.depth - 1, 0))
            self._concept_vec[concept.text] = _normalize(base + spread * noise)

    # -- access ----------------------------------------------------------
    def concept_vector(self, text: str) -> np.ndarray:
        """Unit vector for a known concept phrase."""
        return self._concept_vec[text].copy()

    def has_concept(self, text: str) -> bool:
        return text in self._concept_vec

    def class_anchor(self, class_name: str) -> np.ndarray:
        return self._class_anchor[class_name].copy()

    def normal_anchor(self) -> np.ndarray:
        return self._normal_anchor.copy()

    def class_similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two class anchors."""
        return float(self._class_anchor[a] @ self._class_anchor[b])

    def matrix(self, texts: list[str]) -> np.ndarray:
        """Stack concept vectors into a (len(texts), dim) matrix."""
        return np.stack([self._concept_vec[t] for t in texts])

    def nearest_concepts(self, vector: np.ndarray, k: int = 5,
                         metric: str = "euclidean") -> list[tuple[str, float]]:
        """Nearest ontology concepts to an arbitrary vector.

        Supports the three metrics the paper tested for interpretable KG
        retrieval: ``euclidean`` (the paper's final choice), ``cosine``
        and ``dot``.
        """
        texts = sorted(self._concept_vec)
        mat = self.matrix(texts)
        if metric == "euclidean":
            scores = -np.linalg.norm(mat - vector[None, :], axis=1)
        elif metric == "cosine":
            norm_v = vector / max(np.linalg.norm(vector), 1e-12)
            scores = mat @ norm_v
        elif metric == "dot":
            scores = mat @ vector
        else:
            raise ValueError(f"unknown metric: {metric!r}")
        order = np.argsort(-scores)[:k]
        return [(texts[i], float(scores[i])) for i in order]
