"""Continuous KG adaptive learning — the paper's core contribution.

Pipeline per Fig. 4: token updating (A) with convergence tracking, node
pruning (B), node creating (C); plus the score monitor that decides *when*
to adapt and the interpretable retrieval that explains *what* was learned.
"""

from .changepoint import CUSUM, ChangeDetectorMonitor, PageHinkley
from .controller import (
    AdaptationConfig,
    AdaptationStepLog,
    ContinuousAdaptationController,
)
from .convergence import ConvergenceConfig, NodeConvergenceTracker
from .monitor import AnomalyScoreMonitor, MonitorConfig, PseudoLabels
from .retrieval import (
    DriftTrajectory,
    InterpretableKGRetrieval,
    NodeRetrieval,
    RetrievedToken,
)
from .structure import StructuralAdapter, StructuralEvent
from .token_update import TokenEmbeddingUpdater, TokenUpdateConfig, TokenUpdateResult

__all__ = [
    "AnomalyScoreMonitor",
    "MonitorConfig",
    "PseudoLabels",
    "TokenEmbeddingUpdater",
    "TokenUpdateConfig",
    "TokenUpdateResult",
    "NodeConvergenceTracker",
    "ConvergenceConfig",
    "StructuralAdapter",
    "StructuralEvent",
    "ContinuousAdaptationController",
    "AdaptationConfig",
    "AdaptationStepLog",
    "InterpretableKGRetrieval",
    "NodeRetrieval",
    "RetrievedToken",
    "DriftTrajectory",
    "PageHinkley",
    "CUSUM",
    "ChangeDetectorMonitor",
]
