"""Alternative change detectors for the adaptation trigger.

The paper triggers adaptation with the windowed mean-drop rule
K = |delta_m| * N.  Standard sequential change detection offers two classic
alternatives, implemented here for ablation and for deployments that want
firmer false-alarm control:

* :class:`PageHinkley` — cumulative deviation from the running mean with a
  drift allowance; fires when the cumulative drop exceeds a threshold.
* :class:`CUSUM` — two-sided cumulative-sum detector with reference value
  ``k`` and decision interval ``h`` (in units of the estimated std).

Both expose ``update(score) -> bool`` (True = change detected) and reset
after firing, so they can drive the same controller the paper's rule does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PageHinkley", "CUSUM", "ChangeDetectorMonitor"]


class PageHinkley:
    """Page-Hinkley test for downward mean shifts in a score stream.

    Parameters
    ----------
    delta:
        Magnitude tolerance: deviations smaller than ``delta`` per sample
        are attributed to noise.
    threshold:
        Cumulative deviation at which a change is declared.
    burn_in:
        Observations before detection arms.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 0.5,
                 burn_in: int = 20):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self.burn_in = burn_in
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, score: float) -> bool:
        """Ingest one score; True when a downward mean shift is detected."""
        self._count += 1
        self._mean += (score - self._mean) / self._count
        # Downward test: accumulate (mean - x - delta).
        self._cumulative += self._mean - score - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count <= self.burn_in:
            return False
        if self._cumulative - self._minimum > self.threshold:
            self.reset()
            return True
        return False


class CUSUM:
    """Two-sided CUSUM with online mean/std estimation.

    ``k`` (reference value) and ``h`` (decision interval) are expressed in
    units of the estimated standard deviation, the textbook convention.
    """

    def __init__(self, k: float = 0.5, h: float = 5.0, burn_in: int = 20):
        if h <= 0:
            raise ValueError("decision interval h must be positive")
        self.k = k
        self.h = h
        self.burn_in = burn_in
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._upper = 0.0
        self._lower = 0.0

    @property
    def _std(self) -> float:
        if self._count < 2:
            return 0.0
        return float(np.sqrt(self._m2 / (self._count - 1)))

    def update(self, score: float) -> bool:
        """Ingest one score; True when either side's CUSUM crosses ``h``."""
        self._count += 1
        delta = score - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (score - self._mean)
        std = self._std
        if self._count <= self.burn_in or std <= 1e-12:
            return False
        z = (score - self._mean) / std
        self._upper = max(0.0, self._upper + z - self.k)
        self._lower = max(0.0, self._lower - z - self.k)
        if self._upper > self.h or self._lower > self.h:
            self.reset()
            return True
        return False


@dataclass
class ChangeDetectorMonitor:
    """Adapter: drive top-K pseudo-labeling from any change detector.

    Keeps the paper's "top K of the recent window" labeling, but replaces
    the |delta_m|-based trigger with a sequential change detector.  ``k``
    is fixed (the detector gives a binary signal, not a magnitude).
    """

    detector: PageHinkley | CUSUM
    window: int = 96
    k: int = 8

    def __post_init__(self):
        self._scores: list[float] = []
        self.detections = 0

    def observe(self, scores: np.ndarray) -> bool:
        """Feed scores; True if the detector fired on any of them."""
        fired = False
        for score in np.atleast_1d(np.asarray(scores, dtype=np.float64)):
            self._scores.append(float(score))
            if self.detector.update(float(score)):
                fired = True
        self._scores = self._scores[-self.window:]
        if fired:
            self.detections += 1
        return fired

    def top_k_indices(self) -> np.ndarray:
        """Indices (into the retained window) of the top-k scores."""
        window = np.asarray(self._scores)
        k = min(self.k, window.size)
        return np.sort(np.argsort(-window, kind="mergesort")[:k])
