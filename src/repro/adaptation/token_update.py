"""Token-embedding-only backpropagation (paper Fig. 2C / Fig. 4A).

"These selected data points are then used to compute loss functions, and
backpropagation is performed to update the token embeddings of the
mission-specific KG.  Importantly, only the embeddings of the KG tokens are
updated; the weights of other models, including the large joint embedding
model and the GNN-based decision model, remain unchanged."

``TokenEmbeddingUpdater`` owns an optimizer over exactly the KG token
tensors; :meth:`update` runs one pseudo-labeled gradient step and returns
per-node L2 update distances — the signal the convergence tracker
(Fig. 4's "Compute Distance of Each Node") consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gnn.pipeline import MissionGNNModel
from ..nn.losses import vad_loss
from ..nn.optim import SGD, Adam, clip_grad_norm

__all__ = ["TokenUpdateConfig", "TokenUpdateResult", "TokenEmbeddingUpdater"]


@dataclass
class TokenUpdateConfig:
    """Adaptation-step hyperparameters.

    SGD is the default optimizer: its steps are proportional to the
    gradient, so a well-fitting pseudo-label batch (tiny loss) produces a
    tiny, safe update.  Adam's sign-normalized first steps can perturb a
    frozen model violently even at negligible loss — available for
    ablation via ``optimizer='adam'``.
    """

    optimizer: str = "sgd"  # "sgd" | "adam"
    learning_rate: float = 0.03
    inner_steps: int = 3  # gradient iterations per update call
    lambda_spa: float = 0.001
    lambda_smt: float = 0.001
    grad_clip: float = 1.0
    max_token_norm: float = 2.5  # re-project runaway token vectors


@dataclass
class TokenUpdateResult:
    """One adaptation step's outcome.

    ``node_distances`` maps (kg index, node id) -> L2 distance between the
    node's token embeddings before and after the step.
    """

    loss: float
    node_distances: dict[tuple[int, int], float]
    grad_norm: float


class TokenEmbeddingUpdater:
    """Runs pseudo-labeled gradient steps on the KG token embeddings only."""

    def __init__(self, model: MissionGNNModel, config: TokenUpdateConfig | None = None):
        self.model = model
        self.config = config or TokenUpdateConfig()
        if not any(p.requires_grad for p in model.token_parameters()):
            raise ValueError(
                "KG token embeddings are not trainable; call "
                "model.freeze_for_deployment() before constructing the updater")
        if any(p.requires_grad for p in model.parameters()):
            raise ValueError("model weights must be frozen during adaptation")
        self._optimizer = self._make_optimizer()

    def _make_optimizer(self):
        cfg = self.config
        if cfg.optimizer == "sgd":
            return SGD(self.model.token_parameters(), lr=cfg.learning_rate)
        if cfg.optimizer == "adam":
            return Adam(self.model.token_parameters(), lr=cfg.learning_rate)
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    def rebuild_optimizer(self) -> None:
        """Re-bind the optimizer after structural KG changes (prune/create)."""
        self._optimizer = self._make_optimizer()

    # ------------------------------------------------------------------
    def update(self, windows: np.ndarray, pseudo_labels: np.ndarray,
               anomaly_type: int = 1, lr_scale: float = 1.0) -> TokenUpdateResult:
        """One adaptation step.

        Parameters
        ----------
        windows:
            (B, T, frame_dim) recent frame windows.
        pseudo_labels:
            (B,) binary pseudo-labels from the monitor (1 = pseudo-anomaly).
        anomaly_type:
            Class index assigned to pseudo-anomalies (paper: new data points
            "similar to the initially trained anomalous actions" keep the
            mission's anomaly class).
        lr_scale:
            Multiplier on the learning rate for this step.  The controller
            scales updates by pseudo-label confidence: when the top-K barely
            separates from the window (strong shifts), labels are noisy and
            adaptation must proceed slowly.
        """
        windows = np.asarray(windows, dtype=np.float64)
        pseudo_labels = np.asarray(pseudo_labels, dtype=np.int64)
        if windows.shape[0] != pseudo_labels.shape[0]:
            raise ValueError("windows/pseudo_labels length mismatch")
        if windows.shape[0] == 0:
            raise ValueError("empty adaptation batch")
        cfg = self.config

        before = {
            (kg_index, node_id): tensor.data.copy()
            for kg_index, reasoner in enumerate(self.model.reasoners)
            for node_id, tensor in reasoner.token_tensors().items()
        }

        targets = np.where(pseudo_labels > 0, anomaly_type, 0)
        loss_value = float("nan")
        grad_norm = 0.0
        base_lr = self._optimizer.lr
        self._optimizer.lr = base_lr * max(lr_scale, 0.0)
        for _ in range(max(cfg.inner_steps, 1)):
            logits = self.model(windows)
            loss = vad_loss(logits, targets,
                            lambda_spa=cfg.lambda_spa, lambda_smt=cfg.lambda_smt)
            self._optimizer.zero_grad()
            loss.backward()
            grad_norm = clip_grad_norm(self.model.token_parameters(), cfg.grad_clip)
            self._optimizer.step()
            loss_value = float(loss.item())
            if cfg.max_token_norm > 0:
                # Vocabulary embeddings are unit-norm; keep learned tokens on
                # a comparable scale so retrieval stays meaningful and the
                # frozen GNN is never driven far outside its training envelope.
                for tensor in self.model.token_parameters():
                    norms = np.linalg.norm(tensor.data, axis=-1, keepdims=True)
                    scale = np.minimum(1.0,
                                       cfg.max_token_norm / np.maximum(norms, 1e-12))
                    tensor.data = tensor.data * scale
        self._optimizer.lr = base_lr
        self.model.commit_tokens()

        distances: dict[tuple[int, int], float] = {}
        for kg_index, reasoner in enumerate(self.model.reasoners):
            for node_id, tensor in reasoner.token_tensors().items():
                key = (kg_index, node_id)
                if key in before:
                    distances[key] = float(
                        np.linalg.norm(tensor.data - before[key]))
        return TokenUpdateResult(loss=loss_value,
                                 node_distances=distances,
                                 grad_norm=grad_norm)
