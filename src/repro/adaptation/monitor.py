"""Anomaly-score distribution monitoring and top-K pseudo-labeling.

Paper Section III-D: after deployment, the system "continuously monitors
the anomaly score distribution over time", and selects the top ``K`` scores
within the most recent ``N`` data points as pseudo-anomalies, where

    K = |delta_m| * N,    delta_m = m_t - m_t' < 0,

``m_t`` being the current mean of the score distribution and ``m_t'`` the
mean at an earlier reference time ``t'``.  Intuition: when the anomaly
trend shifts, the deployed model under-scores the new anomaly, the window
mean *drops*, and the magnitude of the drop scales how many recent points
get pseudo-labeled for adaptation.  When the mean is stable or rising
(delta_m >= 0) no pseudo-labels are produced.

``t'`` and ``N`` are hyperparameters to be tuned on a validation set
(paper); here ``t'`` is expressed as a lag in scores: ``m_t'`` is the mean
of the ``N`` scores ending ``lag`` observations before the newest one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["MonitorConfig", "PseudoLabels", "AnomalyScoreMonitor"]


@dataclass
class MonitorConfig:
    """Monitor hyperparameters.

    ``window`` is the paper's N; ``lag`` positions the reference time t'
    (in number of observations).  ``min_k``/``max_k_fraction`` bound the
    selection to keep adaptation batches sane on tiny windows.
    ``trigger_threshold`` ignores mean drops smaller than ordinary sampling
    noise so a stable deployment does not self-perturb.
    """

    window: int = 96
    lag: int = 48
    min_k: int = 0
    max_k_fraction: float = 0.5
    trigger_threshold: float = 0.05


@dataclass
class PseudoLabels:
    """Result of one monitoring decision.

    ``anomalous_indices`` / ``normal_indices`` index into the *most recent
    N observations* (0 = oldest of the window).  ``delta_m`` and ``k``
    record the rule's internals for logging and tests.
    """

    anomalous_indices: np.ndarray
    normal_indices: np.ndarray
    delta_m: float
    k: int
    window_mean: float
    reference_mean: float

    @property
    def triggered(self) -> bool:
        return self.k > 0


class AnomalyScoreMonitor:
    """Sliding-window score tracker implementing the K = |delta_m| * N rule."""

    def __init__(self, config: MonitorConfig | None = None):
        self.config = config or MonitorConfig()
        if self.config.window < 2:
            raise ValueError("window must be >= 2")
        if self.config.lag < 1:
            raise ValueError("lag must be >= 1")
        capacity = self.config.window + self.config.lag
        self._scores: deque[float] = deque(maxlen=capacity)
        self.history: list[float] = []  # full mean trace for diagnostics

    # ------------------------------------------------------------------
    def observe(self, scores: np.ndarray | list[float] | float) -> None:
        """Append new anomaly scores (arrival order)."""
        scores = np.atleast_1d(np.asarray(scores, dtype=np.float64))
        for s in scores:
            self._scores.append(float(s))
        if len(self._scores) >= 1:
            window = self.current_window()
            if window.size:
                self.history.append(float(window.mean()))

    def current_window(self) -> np.ndarray:
        """The most recent N scores (fewer during warm-up)."""
        n = self.config.window
        items = list(self._scores)[-n:]
        return np.asarray(items, dtype=np.float64)

    def reference_window(self) -> np.ndarray:
        """The N scores ending ``lag`` observations ago (fewer during warm-up)."""
        cfg = self.config
        items = list(self._scores)
        if len(items) <= cfg.lag:
            return np.asarray([], dtype=np.float64)
        older = items[:-cfg.lag]
        return np.asarray(older[-cfg.window:], dtype=np.float64)

    @property
    def warmed_up(self) -> bool:
        return (self.current_window().size >= self.config.window
                and self.reference_window().size >= max(self.config.window // 2, 1))

    # ------------------------------------------------------------------
    def select(self) -> PseudoLabels:
        """Apply the paper's selection rule to the current window."""
        cfg = self.config
        window = self.current_window()
        reference = self.reference_window()
        n = window.size
        if n == 0:
            raise RuntimeError("monitor has no observations")
        window_mean = float(window.mean())
        reference_mean = float(reference.mean()) if reference.size else window_mean
        delta_m = window_mean - reference_mean

        if delta_m < 0 and abs(delta_m) >= cfg.trigger_threshold:
            # Shift detected: the paper's rule sizes the pseudo-label set by
            # the magnitude of the mean drop.
            k = max(int(round(abs(delta_m) * n)), cfg.min_k)
        else:
            # Stable regime: continue the maintenance trickle (the paper
            # runs one KG-modification loop per day regardless of trend).
            k = cfg.min_k
        k = min(k, int(n * cfg.max_k_fraction))

        if k > 0:
            order = np.argsort(-window, kind="mergesort")
            anomalous = np.sort(order[:k])
            normal = np.sort(order[k:])
        else:
            anomalous = np.asarray([], dtype=np.int64)
            normal = np.arange(n)
        return PseudoLabels(anomalous_indices=anomalous, normal_indices=normal,
                            delta_m=delta_m, k=k, window_mean=window_mean,
                            reference_mean=reference_mean)
