"""Structural KG adaptation: node pruning and creation (paper Fig. 4 B/C).

When the convergence tracker flags a node as diverging, "the node and its
connected edges are removed from the KG.  Subsequently, we perform a node
creation procedure where a new node with a random token embedding is
created at the same level as the pruned node, along with random edge
connections."

``StructuralAdapter`` applies that prune-then-create sequence to a live
:class:`~repro.gnn.model.KGReasoner`, recompiles the graph spec, and
reports every event for logging/inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gnn.model import KGReasoner

__all__ = ["StructuralEvent", "StructuralAdapter"]


@dataclass(frozen=True)
class StructuralEvent:
    """One prune+create cycle."""

    kg_index: int
    pruned_node_id: int
    pruned_text: str
    created_node_id: int
    level: int
    step: int


class StructuralAdapter:
    """Prunes diverging nodes and creates random replacements."""

    def __init__(self, reasoners: list[KGReasoner], token_dim: int,
                 rng: np.random.Generator, tokens_per_new_node: int = 2,
                 edge_probability: float = 0.5,
                 min_nodes_per_level: int = 1,
                 token_bank: np.ndarray | None = None):
        self.reasoners = reasoners
        self.token_dim = token_dim
        self.rng = rng
        self.tokens_per_new_node = tokens_per_new_node
        self.edge_probability = edge_probability
        self.min_nodes_per_level = min_nodes_per_level
        self.token_bank = token_bank
        self.events: list[StructuralEvent] = []

    def replace_node(self, kg_index: int, node_id: int,
                     step: int = -1) -> StructuralEvent | None:
        """Prune ``node_id`` and create a random node at the same level.

        Returns None (no-op) when pruning would leave the level below the
        configured minimum population — the KG must keep a reasoning path.
        """
        reasoner = self.reasoners[kg_index]
        kg = reasoner.kg
        node = kg.node(node_id)
        level = node.level
        if len(kg.nodes_at_level(level)) <= self.min_nodes_per_level:
            return None
        pruned = kg.prune_node(node_id)
        created_id = kg.create_node(
            level=level, token_dim=self.token_dim,
            n_tokens=self.tokens_per_new_node, rng=self.rng,
            edge_probability=self.edge_probability,
            token_bank=self.token_bank)
        kg.validate()
        reasoner.refresh_structure()
        event = StructuralEvent(kg_index=kg_index, pruned_node_id=node_id,
                                pruned_text=pruned.text,
                                created_node_id=created_id, level=level,
                                step=step)
        self.events.append(event)
        return event
