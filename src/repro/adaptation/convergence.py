"""Per-node convergence tracking (paper Fig. 4: "Distance is Converging?").

After each token update the framework "computes the distance between the
old and updated token embeddings of a node using the L2 distance metric.
If the distance does not increase, we consider the node to be converging
towards a certain concept, and no action is taken.  However, if the
distance increases, indicating divergence, we initiate a node pruning
process."

The tracker compares each node's current update distance with its previous
one.  To avoid pruning on single noisy steps, divergence must persist for
``patience`` consecutive increases (with a relative ``tolerance``) before a
node is flagged — both knobs default to mild smoothing and are ablatable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConvergenceConfig", "NodeConvergenceTracker"]

NodeKey = tuple[int, int]  # (kg index, node id)


@dataclass
class ConvergenceConfig:
    """Divergence-detection knobs.

    ``patience=1`` with ``tolerance=0`` is the paper's literal rule (prune
    on any distance increase); the defaults require a small sustained
    increase, which keeps pruning meaningful under SGD noise.
    """

    patience: int = 4
    tolerance: float = 0.05
    min_updates: int = 6  # grace period before a node can be flagged
    max_flags_per_step: int = 1  # prune at most this many nodes per update
    min_distance: float = 0.02  # increases below this are numerical noise


class NodeConvergenceTracker:
    """Tracks per-node L2 update distances and flags diverging nodes."""

    def __init__(self, config: ConvergenceConfig | None = None):
        self.config = config or ConvergenceConfig()
        self._last_distance: dict[NodeKey, float] = {}
        self._increase_streak: dict[NodeKey, int] = {}
        self._updates_seen: dict[NodeKey, int] = {}
        self.distance_history: dict[NodeKey, list[float]] = {}

    def observe(self, node_distances: dict[NodeKey, float]) -> list[NodeKey]:
        """Record one step's distances; return the nodes flagged as diverging."""
        cfg = self.config
        flagged: list[NodeKey] = []
        for key, distance in node_distances.items():
            self.distance_history.setdefault(key, []).append(distance)
            seen = self._updates_seen.get(key, 0) + 1
            self._updates_seen[key] = seen
            previous = self._last_distance.get(key)
            if (previous is not None
                    and distance > cfg.min_distance
                    and distance > previous * (1.0 + cfg.tolerance)):
                streak = self._increase_streak.get(key, 0) + 1
            else:
                streak = 0
            self._increase_streak[key] = streak
            self._last_distance[key] = distance
            if seen >= cfg.min_updates and streak >= cfg.patience:
                flagged.append(key)
        if len(flagged) > cfg.max_flags_per_step:
            # Prune only the most-diverging nodes this step; structural
            # churn is rate-limited so one bad step cannot gut the KG.
            flagged.sort(key=lambda k: self._increase_streak.get(k, 0),
                         reverse=True)
            flagged = flagged[:cfg.max_flags_per_step]
        # Drop state for nodes that disappeared (pruned between steps).
        current = set(node_distances)
        for store in (self._last_distance, self._increase_streak, self._updates_seen):
            for key in list(store):
                if key not in current:
                    del store[key]
        return flagged

    def forget(self, key: NodeKey) -> None:
        """Reset state for a pruned/replaced node."""
        self._last_distance.pop(key, None)
        self._increase_streak.pop(key, None)
        self._updates_seen.pop(key, None)

    def is_converging(self, key: NodeKey) -> bool:
        """True when the node's last observed step did not increase."""
        return self._increase_streak.get(key, 0) == 0
