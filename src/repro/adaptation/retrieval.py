"""Interpretable KG retrieval (paper Section III-E).

Translates the adaptively-learned token embeddings back into human-readable
words: for each learned token vector, a similarity search over the frozen
BPE vocabulary embedding table returns the top-K nearest tokens, decoded
through the tokenizer.  The paper tested dot product, cosine, and Euclidean
similarity and chose Euclidean; all three are supported (and ablated in the
benchmarks).

Also provides the Fig. 6 instrumentation: a drift trajectory that tracks a
node's token embedding relative to two anchor concepts (e.g. "sneaky" vs
"firearm") across adaptation iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..embedding.tokens import TokenEmbeddingTable
from ..kg.graph import ReasoningKG

__all__ = ["RetrievedToken", "NodeRetrieval", "InterpretableKGRetrieval",
           "DriftTrajectory"]


@dataclass(frozen=True)
class RetrievedToken:
    """One vocabulary hit for a learned token embedding."""

    token_id: int
    word: str
    score: float


@dataclass
class NodeRetrieval:
    """Retrieval result for one KG node: per learned token, its nearest words."""

    node_id: int
    original_text: str
    level: int
    tokens: list[list[RetrievedToken]]

    def top_words(self, per_token: int = 1) -> list[str]:
        """Flattened best words across the node's learned tokens."""
        words: list[str] = []
        for hits in self.tokens:
            words.extend(hit.word for hit in hits[:per_token])
        return words


class InterpretableKGRetrieval:
    """Searches the vocabulary table for the nearest words to learned tokens."""

    def __init__(self, token_table: TokenEmbeddingTable,
                 metric: str = "euclidean", top_k: int = 3):
        if metric not in TokenEmbeddingTable.METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        self.token_table = token_table
        self.metric = metric
        self.top_k = top_k

    def retrieve_node(self, kg: ReasoningKG, node_id: int) -> NodeRetrieval:
        node = kg.node(node_id)
        if node.token_embeddings is None:
            raise ValueError(f"node {node_id} has no token embeddings")
        tokens = [
            [RetrievedToken(token_id=tid, word=word, score=score)
             for tid, word, score in self.token_table.nearest_tokens(
                 vector, k=self.top_k, metric=self.metric)]
            for vector in node.token_embeddings
        ]
        return NodeRetrieval(node_id=node_id, original_text=node.text,
                             level=node.level, tokens=tokens)

    def retrieve_kg(self, kg: ReasoningKG) -> list[NodeRetrieval]:
        """Interpret every concept node — the "Interpretable KG Retrieval"
        output of Fig. 2C."""
        return [self.retrieve_node(kg, node.node_id)
                for node in kg.concept_nodes()]


@dataclass
class DriftTrajectory:
    """Fig. 6 instrumentation: a node's drift between two anchor concepts.

    At each recorded iteration we store the node's pooled token embedding
    distance to the *initial* anchor (e.g. "sneaky") and to the *target*
    anchor (e.g. "firearm"), both in token-embedding space.  The headline
    statistic ``relative_position`` is 0 at the initial anchor and 1 at the
    target anchor.
    """

    initial_word: str
    target_word: str
    iterations: list[int] = field(default_factory=list)
    distance_to_initial: list[float] = field(default_factory=list)
    distance_to_target: list[float] = field(default_factory=list)

    def record(self, iteration: int, pooled_embedding: np.ndarray,
               initial_vec: np.ndarray, target_vec: np.ndarray) -> None:
        self.iterations.append(iteration)
        self.distance_to_initial.append(
            float(np.linalg.norm(pooled_embedding - initial_vec)))
        self.distance_to_target.append(
            float(np.linalg.norm(pooled_embedding - target_vec)))

    def relative_position(self) -> np.ndarray:
        """0 = at the initial concept, 1 = at the target concept."""
        d0 = np.asarray(self.distance_to_initial)
        d1 = np.asarray(self.distance_to_target)
        return d0 / np.maximum(d0 + d1, 1e-12)
