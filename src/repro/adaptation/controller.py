"""The continuous KG adaptive learning loop (paper Fig. 2C + Fig. 4).

``ContinuousAdaptationController`` is the edge-side runtime.  Per incoming
batch of frame windows it:

1. scores the windows with the frozen decision model and feeds the scores
   to the :class:`AnomalyScoreMonitor`;
2. when the monitor triggers (window mean dropped, K = |delta_m| * N > 0),
   runs one token-embedding-only gradient step on the recent window with
   the monitor's pseudo-labels;
3. feeds the per-node update distances to the convergence tracker; every
   node flagged as diverging is pruned and replaced with a random node
   (structural adaptation), after which the optimizer re-binds to the new
   token tensors.

Everything the loop does is recorded in :class:`AdaptationStepLog` entries
so experiments (Fig. 5/6, Table I) can replay the decision trail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field

import numpy as np

from ..gnn.pipeline import MissionGNNModel
from ..nn.optim import Adam
from ..utils.rng import derive_rng
from ..utils.serialization import decode_array, encode_array
from .convergence import ConvergenceConfig, NodeConvergenceTracker
from .monitor import AnomalyScoreMonitor, MonitorConfig
from .structure import StructuralAdapter, StructuralEvent
from .token_update import TokenEmbeddingUpdater, TokenUpdateConfig

__all__ = ["AdaptationConfig", "AdaptationStepLog", "ContinuousAdaptationController"]


@dataclass
class AdaptationConfig:
    """All knobs of the edge adaptation loop in one place."""

    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    update: TokenUpdateConfig = field(default_factory=TokenUpdateConfig)
    convergence: ConvergenceConfig = field(default_factory=ConvergenceConfig)
    structural_adaptation: bool = True
    tokens_per_new_node: int = 2
    edge_probability: float = 0.5
    normals_per_update: int = 16   # known-normal anchors mixed into each round
    adaptation_rounds: int = 6     # re-select top-K and update this many times
    min_trigger_k: int = 3         # ignore triggers smaller than this
    min_confidence: float = 0.25   # skip rounds whose top-K barely separates
    seed: int = 7


@dataclass
class AdaptationStepLog:
    """Record of one controller step."""

    step: int
    scores: np.ndarray
    window_mean: float = float("nan")
    delta_m: float = 0.0
    k: int = 0
    updated: bool = False
    loss: float = float("nan")
    pruned: list[StructuralEvent] = field(default_factory=list)


class ContinuousAdaptationController:
    """Edge-side driver of continuous KG adaptive learning."""

    def __init__(self, model: MissionGNNModel, config: AdaptationConfig | None = None,
                 anomaly_type: int = 1,
                 normal_anchor_windows: np.ndarray | None = None):
        """
        Parameters
        ----------
        model:
            The cloud-trained decision model; frozen here for deployment.
        anomaly_type:
            Class index assigned to pseudo-anomalies.
        normal_anchor_windows:
            Known non-anomalous frame windows shipped with the deployment.
            The paper's adaptation experiments use "corresponding
            non-anomalous samples from the training set" alongside the
            pseudo-anomalies; when omitted, the controller falls back to
            the lowest-scoring windows of the monitor window.
        """
        self.model = model
        self.config = config or AdaptationConfig()
        self.anomaly_type = anomaly_type
        if normal_anchor_windows is not None:
            normal_anchor_windows = np.asarray(normal_anchor_windows,
                                               dtype=np.float64)
            if normal_anchor_windows.ndim != 3:
                raise ValueError("normal_anchor_windows must be (N, T, frame_dim)")
        self.normal_anchor_windows = normal_anchor_windows
        self._anchor_rng = derive_rng(self.config.seed, "anchors")

        model.freeze_for_deployment()
        self.monitor = AnomalyScoreMonitor(self.config.monitor)
        self.updater = TokenEmbeddingUpdater(model, self.config.update)
        self.tracker = NodeConvergenceTracker(self.config.convergence)
        self.structural = StructuralAdapter(
            model.reasoners, token_dim=model.embedding_model.token_dim,
            rng=derive_rng(self.config.seed, "structural"),
            tokens_per_new_node=self.config.tokens_per_new_node,
            edge_probability=self.config.edge_probability,
            token_bank=model.embedding_model.token_table.vectors)

        capacity = self.config.monitor.window + self.config.monitor.lag
        self._window_buffer: deque[np.ndarray] = deque(maxlen=capacity)
        self.logs: list[AdaptationStepLog] = []
        self.update_count = 0  # total token-update iterations (Fig. 6 x-axis)
        self._step_base = 0    # steps processed before a checkpoint restore

    @property
    def step_count(self) -> int:
        """Total batches processed, across checkpoint restores."""
        return self._step_base + len(self.logs)

    # ------------------------------------------------------------------
    def process_batch(self, windows: np.ndarray,
                      scores: np.ndarray | None = None) -> AdaptationStepLog:
        """Ingest one arrival batch; adapt if the monitor triggers.

        ``scores`` may carry precomputed anomaly scores for ``windows``
        (the serving fleet's micro-batcher scores many streams in one
        coalesced forward); when omitted they are computed here.  The
        caller is responsible for the scores actually being this model's
        output for ``windows`` — the batched path guarantees bit-equality.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (B, T, frame_dim), got {windows.shape}")
        step = self.step_count
        if scores is None:
            scores = self.model.anomaly_scores(windows)
        else:
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (windows.shape[0],):
                raise ValueError(f"expected {windows.shape[0]} precomputed "
                                 f"scores, got shape {scores.shape}")
        self.monitor.observe(scores)
        for w in windows:
            self._window_buffer.append(w)
        log = AdaptationStepLog(step=step, scores=scores)

        if self.monitor.warmed_up:
            selection = self.monitor.select()
            log.window_mean = selection.window_mean
            log.delta_m = selection.delta_m
            log.k = selection.k
            if selection.triggered and selection.k >= self.config.min_trigger_k:
                self._adapt(selection.k, log)
        self.logs.append(log)
        return log

    # ------------------------------------------------------------------
    def _pick_normals(self, k: int, exclude: set[int],
                      recent_windows: np.ndarray) -> np.ndarray:
        """Known non-anomalous windows for the update batch.

        Prefers the deployment's normal anchors (paper IV-B: "corresponding
        non-anomalous samples from the training set"); lacking anchors, the
        lowest-scoring recent windows — the ones the deployed model is most
        confident are normal.
        """
        cfg = self.config
        n_normals = min(cfg.normals_per_update, max(k, 1) * 4)
        if self.normal_anchor_windows is not None:
            pick = self._anchor_rng.choice(
                self.normal_anchor_windows.shape[0],
                size=min(n_normals, self.normal_anchor_windows.shape[0]),
                replace=False)
            return self.normal_anchor_windows[pick]
        scores = self.model.anomaly_scores(recent_windows)
        order = np.argsort(scores, kind="mergesort")
        low = [i for i in order if i not in exclude]
        return recent_windows[np.asarray(low[:n_normals], dtype=np.int64)]

    def _snapshot_tokens(self) -> list[np.ndarray]:
        return [t.data.copy() for t in self.model.token_parameters()]

    def _restore_tokens(self, snapshot: list[np.ndarray]) -> None:
        for tensor, data in zip(self.model.token_parameters(), snapshot):
            tensor.data = data.copy()
        self.model.commit_tokens()

    def _anchor_mean_score(self) -> float | None:
        if self.normal_anchor_windows is None:
            return None
        sample = self.normal_anchor_windows[:48]
        return float(self.model.anomaly_scores(sample).mean())

    def _adapt(self, k: int, log: AdaptationStepLog) -> None:
        """One adaptation phase: re-select top-K and update, several rounds.

        This is the token-updating loop of Fig. 4(A): update tokens, check
        per-node convergence, repeat.  Re-scoring the buffer between rounds
        lets newly-risen windows of the shifted trend enter the top-K, which
        is what progressively pulls the KG toward the new anomaly.

        Two safety valves keep pseudo-labeled SGD from running away on a
        frozen nonlinear model:

        * **confidence scaling** — the step size shrinks when the selected
          top-K barely separates from the rest of the window (noisy labels,
          typical right after a *strong* shift), matching the paper's
          "slower improvement" under strong shifts;
        * **backtracking** — a round that inflates the loss or makes the
          known-normal anchors look anomalous is rolled back and retried at
          half the step size.
        """
        cfg = self.config
        recent = list(self._window_buffer)[-self.monitor.current_window().size:]
        recent_windows = np.stack(recent)
        k = min(k, recent_windows.shape[0])

        prev_loss: float | None = None
        baseline_anchor = self._anchor_mean_score()
        lr_damping = 1.0
        for _ in range(max(cfg.adaptation_rounds, 1)):
            scores = self.model.anomaly_scores(recent_windows)
            top = np.argsort(-scores, kind="mergesort")[:k]
            pseudo_anomalies = recent_windows[top]
            normals = self._pick_normals(k, set(top.tolist()), recent_windows)
            batch = np.concatenate([pseudo_anomalies, normals])
            labels = np.concatenate([
                np.ones(pseudo_anomalies.shape[0], dtype=np.int64),
                np.zeros(normals.shape[0], dtype=np.int64),
            ])
            # Pseudo-label confidence: separation of the top-K from the rest
            # of the window, in window standard deviations.
            rest = np.delete(scores, top)
            spread = float(scores.std())
            if rest.size and spread > 1e-9:
                z = (float(scores[top].mean()) - float(rest.mean())) / spread
                confidence = float(np.clip(z / 2.0, 0.1, 1.0))
            else:
                confidence = 0.1
            if confidence < cfg.min_confidence:
                # The top-K is statistically indistinguishable from the rest
                # of the window: pseudo-labels would be noise, and gradient
                # steps on noise only drift the deployment.  Wait for a
                # cleaner signal (do-no-harm).
                break

            snapshot = self._snapshot_tokens()
            result = self.updater.update(batch, labels,
                                         anomaly_type=self.anomaly_type,
                                         lr_scale=confidence * lr_damping)
            self.update_count += 1
            log.updated = True

            diverged = prev_loss is not None and result.loss > max(
                prev_loss * 1.5, prev_loss + 0.3)
            anchor_now = self._anchor_mean_score()
            anchors_corrupted = (baseline_anchor is not None
                                 and anchor_now is not None
                                 and anchor_now > baseline_anchor + 0.10)
            if diverged or anchors_corrupted:
                self._restore_tokens(snapshot)
                lr_damping *= 0.5
                if lr_damping < 1e-3:
                    break
                continue

            prev_loss = result.loss
            log.loss = result.loss

            flagged = self.tracker.observe(result.node_distances)
            if cfg.structural_adaptation:
                structure_changed = False
                for kg_index, node_id in flagged:
                    event = self.structural.replace_node(kg_index, node_id,
                                                         step=log.step)
                    if event is not None:
                        self.tracker.forget((kg_index, node_id))
                        log.pruned.append(event)
                        structure_changed = True
                if structure_changed:
                    self.updater.rebuild_optimizer()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_pruned(self) -> int:
        return len(self.structural.events)

    def mean_score_trace(self) -> np.ndarray:
        """Window-mean trace (the distribution the paper plots over time)."""
        return np.asarray(self.monitor.history)

    # ------------------------------------------------------------------
    # Checkpointing (Deployment.save/load)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-safe snapshot of the loop's mutable runtime state.

        Covers everything a restarted process needs to continue adapting
        exactly where this one stopped: monitor scores, the recent-window
        buffer, per-node convergence statistics, structural events, and
        every RNG state.  Model weights and KG tokens are *not* included —
        they travel in the deployment checkpoint's model section.
        """
        def key_str(key: tuple[int, int]) -> str:
            return f"{key[0]}:{key[1]}"

        tracker = self.tracker
        optimizer = self.updater._optimizer
        optimizer_state = {"step_count": optimizer.step_count}
        if isinstance(optimizer, Adam):
            optimizer_state["m"] = [encode_array(m) for m in optimizer._m]
            optimizer_state["v"] = [encode_array(v) for v in optimizer._v]
        return {
            "step_count": self.step_count,
            "update_count": self.update_count,
            "optimizer": optimizer_state,
            "monitor": {
                "scores": [float(s) for s in self.monitor._scores],
                "history": [float(h) for h in self.monitor.history],
            },
            "buffer": [encode_array(w) for w in self._window_buffer],
            "anchor_rng": self._anchor_rng.bit_generator.state,
            "structural_rng": self.structural.rng.bit_generator.state,
            "structural_events": [asdict(e) for e in self.structural.events],
            "tracker": {
                "last_distance": {key_str(k): v
                                  for k, v in tracker._last_distance.items()},
                "increase_streak": {key_str(k): v
                                    for k, v in tracker._increase_streak.items()},
                "updates_seen": {key_str(k): v
                                 for k, v in tracker._updates_seen.items()},
                "distance_history": {key_str(k): v for k, v
                                     in tracker.distance_history.items()},
            },
        }

    def restore_state(self, state: dict) -> None:
        """Resume from an :meth:`export_state` snapshot.

        The controller must wrap the same (restored) model the snapshot
        was taken against; logs restart empty but ``step_count`` continues
        from the checkpoint.
        """
        def key_tuple(text: str) -> tuple[int, int]:
            kg, _, node = text.partition(":")
            return int(kg), int(node)

        self._step_base = int(state["step_count"])
        self.logs = []
        self.update_count = int(state["update_count"])
        self.monitor._scores.clear()
        self.monitor._scores.extend(float(s) for s in state["monitor"]["scores"])
        self.monitor.history = [float(h) for h in state["monitor"]["history"]]
        self._window_buffer.clear()
        for payload in state["buffer"]:
            self._window_buffer.append(decode_array(payload))
        self._anchor_rng.bit_generator.state = state["anchor_rng"]
        self.structural.rng.bit_generator.state = state["structural_rng"]
        self.structural.events = [StructuralEvent(**e)
                                  for e in state["structural_events"]]
        tracker = self.tracker
        tracker._last_distance = {key_tuple(k): float(v) for k, v
                                  in state["tracker"]["last_distance"].items()}
        tracker._increase_streak = {key_tuple(k): int(v) for k, v
                                    in state["tracker"]["increase_streak"].items()}
        tracker._updates_seen = {key_tuple(k): int(v) for k, v
                                 in state["tracker"]["updates_seen"].items()}
        tracker.distance_history = {
            key_tuple(k): [float(d) for d in v]
            for k, v in state["tracker"]["distance_history"].items()}
        # Token tensors may have been replaced by the model restore; re-bind,
        # then put back the optimizer's own state (Adam moments, step count)
        # so the first post-resume update matches an uninterrupted run.
        self.updater.rebuild_optimizer()
        optimizer = self.updater._optimizer
        saved_optimizer = state.get("optimizer", {})
        optimizer.step_count = int(saved_optimizer.get("step_count", 0))
        if isinstance(optimizer, Adam) and "m" in saved_optimizer:
            moments_m = [decode_array(p) for p in saved_optimizer["m"]]
            moments_v = [decode_array(p) for p in saved_optimizer["v"]]
            if (len(moments_m) == len(optimizer._m)
                    and all(a.shape == b.shape
                            for a, b in zip(moments_m, optimizer._m))):
                optimizer._m = moments_m
                optimizer._v = moments_v
