"""Pluggable scheduling policies: how queued requests compose a round.

A :class:`SchedulingPolicy` looks at the engine's per-stream admission
queues and decides which requests form the next round (and which have
expired unserved).  Policies shape round *composition* only — per-stream
FIFO order is an engine invariant they cannot break — which is exactly
why every policy serves bit-identical per-stream scores: scoring is
batch-composition-independent and each stream's ingest sequence is
unchanged, so a policy is purely a latency/fairness decision, never an
accuracy one.

Three policies ship:

:class:`FairRoundRobin`
    At most one request per stream per round, streams in arrival order —
    the gateway's original hardcoded pop loop, now one policy among
    several.
:class:`GreedyDrain`
    Up to ``max_per_stream`` requests per stream per round (default:
    drain everything).  Fewer, larger rounds: better throughput under
    backlog, coarser latency.
:class:`PriorityAdmission`
    At most one request per stream per round, streams ordered by request
    priority (then queue age), optionally capped at ``max_streams`` per
    round; requests whose ``deadline`` has passed are expired instead of
    served.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from .engine import EngineRequest
from ..errors import ConfigError

__all__ = ["RoundPlan", "SchedulingPolicy", "FairRoundRobin",
           "GreedyDrain", "PriorityAdmission", "POLICIES",
           "resolve_policy"]


@dataclass
class RoundPlan:
    """A policy's verdict for one round.

    ``entries`` run this round (the engine re-orders each stream's picks
    into FIFO and splits multi-per-stream selections into waves);
    ``expired`` are removed and answered with a typed ``expired`` error.
    Both must reference request objects currently in the queues the
    policy was shown.
    """

    entries: list[EngineRequest] = field(default_factory=list)
    expired: list[EngineRequest] = field(default_factory=list)


class SchedulingPolicy(abc.ABC):
    """Selects which queued requests form the next serving round."""

    #: Short name surfaced in ``stats`` payloads and CLI flags.
    name: str = "policy"

    @abc.abstractmethod
    def select(self, queues: dict[str, tuple[EngineRequest, ...]],
               now: float) -> RoundPlan:
        """``queues`` is a read-only snapshot of the non-empty per-stream
        queues (insertion order = first-arrival order); ``now`` is the
        engine clock (``time.monotonic`` by default) for deadline math."""


class FairRoundRobin(SchedulingPolicy):
    """≤1 request per stream per round, streams in arrival order."""

    name = "fair"

    def select(self, queues, now):
        return RoundPlan(entries=[queue[0] for queue in queues.values()])


class GreedyDrain(SchedulingPolicy):
    """Up to ``max_per_stream`` requests per stream per round.

    With the default (``None``) the whole backlog drains in one round —
    the engine executes it as successive FIFO waves, so a stream's
    requests are still ingested strictly in order.
    """

    name = "greedy"

    def __init__(self, max_per_stream: int | None = None):
        if max_per_stream is not None and max_per_stream < 1:
            raise ConfigError("max_per_stream must be >= 1")
        self.max_per_stream = max_per_stream

    def select(self, queues, now):
        cap = self.max_per_stream
        entries = [request for queue in queues.values()
                   for request in (queue if cap is None else queue[:cap])]
        return RoundPlan(entries=entries)


class PriorityAdmission(SchedulingPolicy):
    """Priority/deadline admission: urgent streams first, stale work shed.

    Every queued request whose ``deadline`` (absolute engine-clock time)
    has passed is expired.  Of what remains, each stream's front request
    is a candidate; candidates are ordered by priority (higher first),
    then queue age (older first), and at most ``max_streams`` of them run
    this round — the rest wait, so a saturated server spends its rounds
    on the work that matters most.
    """

    name = "priority"

    def __init__(self, max_streams: int | None = None):
        if max_streams is not None and max_streams < 1:
            raise ConfigError("max_streams must be >= 1")
        self.max_streams = max_streams

    def select(self, queues, now):
        expired: list[EngineRequest] = []
        candidates: list[tuple[float, float, int, EngineRequest]] = []
        for position, queue in enumerate(queues.values()):
            front: EngineRequest | None = None
            for request in queue:
                if request.deadline is not None and request.deadline <= now:
                    expired.append(request)
                elif front is None:
                    front = request
            if front is not None:
                candidates.append((-front.priority, front.queued_at,
                                   position, front))
        candidates.sort(key=lambda item: item[:3])
        if self.max_streams is not None:
            candidates = candidates[:self.max_streams]
        return RoundPlan(entries=[item[3] for item in candidates],
                         expired=expired)


#: Policy names accepted by the CLI and the gateway constructor.
POLICIES = {
    "fair": FairRoundRobin,
    "greedy": GreedyDrain,
    "priority": PriorityAdmission,
}


def resolve_policy(policy) -> SchedulingPolicy:
    """A :class:`SchedulingPolicy` from a name, an instance, or ``None``
    (the fair default)."""
    if policy is None:
        return FairRoundRobin()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ConfigError(
            f"unknown scheduling policy {policy!r} "
            f"(known: {', '.join(sorted(POLICIES))})") from None
