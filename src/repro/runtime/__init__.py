"""The unified serving core: one engine, pluggable backends and policies.

Every serving layer in this repo — the in-process
:class:`~repro.serving.DeploymentFleet`, the multi-process
:class:`~repro.serving.ShardedFleet`, and the network
:class:`~repro.gateway.GatewayServer` — is a facade over one
:class:`ServingEngine`, which owns the canonical round loop (gather →
schedule → micro-batch score → ingest → emit :class:`FleetEvent`s) and
instruments it through one :class:`repro.metrics.MetricsRegistry`:

:class:`ServingEngine`
    The round loop: lock-step rounds pulled from backend-owned streams
    (``step``/``serve``/``ingest_round``/``score_only``) and
    policy-composed rounds over bounded admission queues
    (``submit``/``run_round``), with per-entry error isolation.
:class:`ExecutionBackend` → :class:`InlineBackend` / :class:`ShardedBackend`
    Where the compute runs: the caller's process (micro-batched
    coalescing) or a scatter across shard worker processes.
:class:`SchedulingPolicy` → :class:`FairRoundRobin` / :class:`GreedyDrain` / :class:`PriorityAdmission`
    How queued requests compose a round.  Per-stream FIFO is an engine
    invariant, so every backend × policy combination serves bit-identical
    per-stream scores — locked down by the parity-matrix tests.
"""

from .engine import (
    AdmissionError,
    EngineRequest,
    FleetEvent,
    RoundResult,
    ServingEngine,
    make_fleet_event,
)
from .policies import (
    POLICIES,
    FairRoundRobin,
    GreedyDrain,
    PriorityAdmission,
    RoundPlan,
    SchedulingPolicy,
    resolve_policy,
)
from .backends import ExecutionBackend, InlineBackend, ShardedBackend

__all__ = [
    "ServingEngine",
    "FleetEvent",
    "make_fleet_event",
    "EngineRequest",
    "RoundResult",
    "AdmissionError",
    "ExecutionBackend",
    "InlineBackend",
    "ShardedBackend",
    "SchedulingPolicy",
    "RoundPlan",
    "FairRoundRobin",
    "GreedyDrain",
    "PriorityAdmission",
    "POLICIES",
    "resolve_policy",
]
