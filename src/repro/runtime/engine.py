"""The serving engine: one canonical round loop for every serving layer.

PRs 2–4 grew three serving layers — the in-process
:class:`~repro.serving.DeploymentFleet`, the multi-process
:class:`~repro.serving.ShardedFleet`, and the network
:class:`~repro.gateway.GatewayServer` — and each re-implemented the same
round shape: gather pending arrivals, pick this round's work, micro-batch
score it, dispatch the score slices into each deployment's monitor, and
report what happened.  :class:`ServingEngine` owns that loop once:

* **gather** — either pulled from backend-owned streams (:meth:`step`)
  or pushed into bounded per-stream admission queues (:meth:`submit`);
* **schedule** — a pluggable :class:`~repro.runtime.SchedulingPolicy`
  decides which queued requests form the round (:meth:`run_round`);
* **score** — the :class:`~repro.runtime.ExecutionBackend` executes the
  coalesced, stateless scoring pass (in-process micro-batching or a
  scatter across shard workers), with per-entry isolation when a
  coalesced forward fails;
* **ingest** — deployments consume their precomputed score slices;
* **emit** — :class:`FleetEvent`/:class:`RoundResult` objects for the
  caller, and round/latency/queue metrics into one shared
  :class:`repro.metrics.MetricsRegistry`.

Scores are bit-identical across backends and policies: scoring is
stateless and batch-composition-independent (see
:mod:`repro.serving.batcher`), and the engine preserves per-stream FIFO
order no matter how a policy composes rounds, so every stream sees the
exact ingest sequence a plain ``DeploymentFleet.step()`` run would
produce.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from threading import Lock
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, ReproError
from ..metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover — typing only
    from ..adaptation.controller import AdaptationStepLog

__all__ = ["FleetEvent", "make_fleet_event", "EngineRequest", "RoundResult",
           "AdmissionError", "ServingEngine"]


@dataclass
class FleetEvent:
    """One stream's result within a serving round."""

    stream: str
    mission: str | None
    step: int
    scores: np.ndarray
    log: "AdaptationStepLog | None" = None
    active_class: str | None = None
    is_post_shift: bool | None = None


def make_fleet_event(slot, log, batch=None) -> FleetEvent:
    """The one place a :class:`FleetEvent` is assembled from a slot's
    ingest log (``batch`` carries stream metadata when the round was
    pulled from the slot's own stream; externally supplied arrivals have
    none)."""
    return FleetEvent(
        stream=slot.name, mission=slot.deployment.mission,
        step=log.step, scores=log.scores, log=log,
        active_class=getattr(batch, "active_class", None),
        is_post_shift=getattr(batch, "is_post_shift", None))


@dataclass
class EngineRequest:
    """One queued ``ingest``/``scores`` request awaiting scheduling.

    ``priority`` and ``deadline`` only matter to policies that read them
    (higher priority first; ``deadline`` is an absolute
    ``time.monotonic()`` instant after which the request is expired
    instead of served).  ``tag`` is an opaque caller handle — the gateway
    stores its response future there — threaded through untouched.
    """

    op: str                        # "ingest" | "scores"
    stream: str
    windows: np.ndarray
    priority: int = 0
    deadline: float | None = None
    queued_at: float = 0.0
    tag: object = None
    wal_seq: int | None = None     # durability log seq (set at admission)
    # Optional repro.obs.TraceContext joining this request's trace to
    # the round that serves it (typed loosely: the runtime layer treats
    # it as opaque unless a tracer is attached).
    trace: object = None


@dataclass
class RoundResult:
    """What one :class:`EngineRequest` became after its round ran."""

    request: EngineRequest
    kind: str                      # "event" | "scores" | "error"
    event: FleetEvent | None = None
    scores: np.ndarray | None = None
    code: str | None = None        # typed error code for kind == "error"
    message: str | None = None


class AdmissionError(ReproError, RuntimeError):
    """A request refused at the queue door; carries a typed code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class ServingEngine:
    """Drives rounds over an :class:`~repro.runtime.ExecutionBackend`.

    Thread-safety: the admission queue (:meth:`submit` /
    :meth:`run_round` / :meth:`drop_pending`) is lock-protected, so an
    event loop may admit work while an executor thread runs the round —
    the gateway's arrangement.  The lock-step entry points (:meth:`step`,
    :meth:`ingest_round`, :meth:`score_only`) are single-caller, like the
    fleet methods they replaced.

    The lock discipline is machine-checked: attributes annotated
    ``# repro: guarded-by[_lock]`` (the queues, the durability latch)
    may only be touched inside ``with self._lock`` or in methods
    annotated ``# repro: lock-held`` — ``repro lint`` (the **lock-guard**
    rule) fails CI on any unguarded access.
    """

    def __init__(self, backend, policy=None, metrics: MetricsRegistry | None = None,
                 max_queue_depth: int | None = None, clock=time.monotonic,
                 durability=None, tracer=None, slow_round_ms: float | None = None,
                 on_slow_round=None):
        from .policies import FairRoundRobin
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be >= 1")
        self.backend = backend
        self.policy = policy or FairRoundRobin()
        self.metrics = metrics or MetricsRegistry()
        self.max_queue_depth = max_queue_depth
        self.rounds = 0
        self._clock = clock
        self._queues: dict[str, deque[EngineRequest]] = {}  # repro: guarded-by[_lock]
        self._lock = Lock()
        # Duck-typed durability hook (e.g. repro.wal.WalDurability; the
        # runtime layer never imports it): record_submit(request) → seq,
        # record_applied(stream, seq), record_skip(seq), commit(engine).
        # Accepted ingests are logged before they become schedulable and
        # fsynced once per round before results reach any caller.
        self.durability = durability
        self._durability_failed = False  # repro: guarded-by[_lock]
        # Uptime baseline for stats(); always real monotonic time, never
        # the injected scheduling clock.
        self._started_monotonic = time.monotonic()
        # Tracing (repro.obs.TraceRecorder, duck-typed).  Strictly
        # opt-in: with no tracer every span call site below is skipped,
        # so the hot path is bit-identical to an untraced engine.
        self._tracer = None
        self.slow_round_ms = slow_round_ms
        self.on_slow_round = on_slow_round  # callable(list[Span]) | None
        # Context the durability hook parents wal.fsync spans under;
        # set only for the duration of a traced round's commit.
        self.durability_trace = None
        if tracer is not None:
            self.tracer = tracer

    @property
    def tracer(self):
        """The attached :class:`repro.obs.TraceRecorder` (or ``None``)."""
        return self._tracer

    @tracer.setter
    def tracer(self, recorder) -> None:
        self._tracer = recorder
        attach = getattr(self.backend, "set_tracer", None)
        if attach is not None:
            attach(recorder)

    # ------------------------------------------------------------------
    # Lock-step serving: rounds pulled from backend-owned streams
    # ------------------------------------------------------------------
    def step(self, batched: bool = True) -> list[FleetEvent]:
        """One serving round over every live backend stream: pull each
        stream's next arrival batch, score (coalesced when ``batched``),
        ingest, emit events.  With a tracer attached each non-empty pull
        becomes one ``engine.round`` span (an abandoned span on the
        empty pull is never recorded)."""
        trc = self._tracer
        round_span = trc.start("engine.round") if trc is not None else None
        start = time.perf_counter()
        events = self.backend.pull_round(batched)
        if not events:
            return []
        self._observe_round(time.perf_counter() - start, len(events),
                            sum(int(event.scores.size) for event in events))
        if round_span is not None:
            round_span.finish(round=self.rounds, streams=len(events),
                              pull=True)
        return events

    def serve(self, max_rounds: int | None = None, batched: bool = True):
        """Yield per-round event lists until every stream is exhausted
        (or ``max_rounds`` rounds have run)."""
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            events = self.step(batched=batched)
            if not events:
                return
            yield events
            rounds += 1

    def ingest_round(self, arrivals: dict, batched: bool = True,
                     scores: dict | None = None) -> dict[str, FleetEvent]:
        """One serving round over externally supplied arrival windows
        (``{stream name: (B, T, frame_dim) windows}``); ``scores`` may
        carry precomputed per-stream score slices (e.g. from a prior
        :meth:`score_only` call), in which case scoring is skipped."""
        start = time.perf_counter()
        events = self.backend.ingest(arrivals, scores=scores,
                                     batched=batched)
        if events:
            self._observe_round(
                time.perf_counter() - start, len(events),
                sum(int(event.scores.size) for event in events.values()))
        return events

    def score_only(self, arrivals: dict) -> dict[str, np.ndarray]:
        """Score externally supplied windows without feeding any
        deployment's monitor; stateless and safely retryable."""
        self.metrics.counter("engine.score_only").inc()
        return self.backend.score(arrivals)

    # ------------------------------------------------------------------
    # Queued serving: admission, scheduling, policy-composed rounds
    # ------------------------------------------------------------------
    def now(self) -> float:
        """The engine's scheduling clock (``time.monotonic`` unless one
        was injected).  ``EngineRequest.deadline`` instants must be
        computed against this clock, never ``time.monotonic`` directly,
        or deadline math silently breaks under an injected clock."""
        return self._clock()

    def submit(self, request: EngineRequest) -> None:
        """Admit a request into its stream's queue; raises
        :class:`AdmissionError` (``backpressure``) past
        ``max_queue_depth`` queued requests for that stream.

        With a durability hook attached, an accepted ``ingest`` request
        is logged *here* — after admission control, before it joins the
        queue — so exactly the accepted requests hit the log
        (backpressure rejections never do) and, because the append runs
        under the admission lock, per-stream log order equals per-stream
        queue order.  A failed append propagates and the request is not
        queued: log-before-schedule, never schedule-then-hope.
        """
        with self._lock:
            queue = self._queues.setdefault(request.stream, deque())
            if (self.max_queue_depth is not None
                    and len(queue) >= self.max_queue_depth):
                raise AdmissionError(
                    "backpressure",
                    f"stream {request.stream!r} has {len(queue)} queued "
                    f"request(s) (limit {self.max_queue_depth}); retry "
                    "after backoff")
            if self.durability is not None and request.op == "ingest":
                if self._durability_failed:
                    raise AdmissionError(
                        "durability",
                        "the durability log failed a group commit; the "
                        "engine refuses new ingests until the WAL is "
                        "healthy (restart the service and run recovery)")
                request.wal_seq = self.durability.record_submit(request)
            if not request.queued_at:
                request.queued_at = self._clock()
            queue.append(request)
            self._update_queue_gauge()

    def queued_depths(self) -> dict[str, int]:
        """Per-stream queued-but-unserved request counts (non-empty
        queues only — the gateway's ``stats`` map)."""
        with self._lock:
            return {name: len(queue)
                    for name, queue in self._queues.items() if queue}

    def has_pending(self) -> bool:
        with self._lock:
            return any(self._queues.values())

    def drop_pending(self, predicate) -> list[EngineRequest]:
        """Remove every queued request matching ``predicate`` (e.g. all
        of a disconnected connection's work); returns the dropped
        requests so the caller can cancel their handles."""
        dropped: list[EngineRequest] = []
        with self._lock:
            for queue in self._queues.values():
                if any(predicate(request) for request in queue):
                    kept = [r for r in queue if not predicate(r)]
                    dropped.extend(r for r in queue if predicate(r))
                    queue.clear()
                    queue.extend(kept)
            self._update_queue_gauge()
        if self.durability is not None:
            try:
                for request in dropped:
                    if request.wal_seq is not None:
                        self.durability.record_skip(request.wal_seq)
            except Exception:  # noqa: BLE001 — dropped work was never
                # acked; a failed skip append only costs replay applying
                # it, which is harmless extra state, not lost state.
                self.metrics.counter("engine.durability_errors").inc()
        return dropped

    def run_round(self) -> list[RoundResult]:
        """One policy-composed round over the queued requests.

        The policy selects which requests run (and which have expired);
        the engine partitions the selection into waves of at most one
        request per stream — per-stream FIFO is an invariant the policy
        cannot break, it only shapes round *composition* — and executes
        each wave score-then-ingest.  Total: every selected or expired
        request gets exactly one :class:`RoundResult`; this method never
        raises on bad client input or backend failure.

        With a tracer attached, the round becomes its own trace
        (``engine.round`` → ``engine.schedule`` / per-wave
        ``engine.score``/``engine.ingest`` / ``engine.durability``) and
        each traced request's story gains per-request ``queue.wait`` and
        ``stage.*`` spans parented under *its* context — the join
        between a request's trace and the shared round that served it.
        Abandoned active spans (empty rounds) are never recorded.
        """
        trc = self._tracer
        round_span = sched_span = None
        mark = 0
        if trc is not None:
            mark = trc.mark()
            round_span = trc.start("engine.round")
            sched_span = trc.start("engine.schedule",
                                   parent=round_span.context)
        with self._lock:
            if not any(self._queues.values()):
                return []
            now = self._clock()
            view = {name: tuple(queue)
                    for name, queue in self._queues.items() if queue}
            try:
                plan = self.policy.select(view, now)
                selected = list(plan.entries)
                expired = list(plan.expired)
            except Exception:  # noqa: BLE001 — a broken policy must not
                # wedge the server: degrade to the fair default (front of
                # every queue) so queued clients still get served.
                self.metrics.counter("engine.policy_errors").inc()
                selected = [queue[0] for queue in view.values()]
                expired = []
            # A policy may only return requests that are actually queued;
            # anything else (a buggy custom policy echoing stale objects)
            # is dropped here rather than served-but-not-dequeued.
            queued = {id(r) for queue in view.values() for r in queue}
            selected = [r for r in selected if id(r) in queued]
            expired = [r for r in expired if id(r) in queued]
            taken = {id(r) for r in selected} | {id(r) for r in expired}
            for queue in self._queues.values():
                if any(id(r) in taken for r in queue):
                    kept = [r for r in queue if id(r) not in taken]
                    queue.clear()
                    queue.extend(kept)
            self._update_queue_gauge()

        if trc is not None:
            sched = sched_span.finish(selected=len(selected),
                                      expired=len(expired))
            self.metrics.histogram("engine.stage.schedule").observe(sched.dur)
            # Queue wait is only knowable at dequeue time, so it is a
            # synthetic span: measured on the scheduling clock, backdated
            # on the wall clock.
            dequeued_at = self._clock()
            wall = time.time()
            for request in selected:
                wait = max(0.0, dequeued_at - request.queued_at) \
                    if request.queued_at else 0.0
                self.metrics.histogram("engine.stage.queue_wait") \
                    .observe(wait)
                if request.trace is not None:
                    trc.record_span(
                        "queue.wait", parent=request.trace,
                        ts=wall - wait, dur=wait,
                        attrs={"stream": request.stream,
                               "round": self.rounds})

        results: list[RoundResult] = []
        for request in expired:
            self.metrics.counter("engine.expired").inc()
            results.append(RoundResult(
                request=request, kind="error", code="expired",
                message=f"request for stream {request.stream!r} missed its "
                        f"deadline while queued; it was never served"))
        if not selected:
            self._commit_durability(results)
            if trc is not None:
                round_span.finish(round=self.rounds, streams=0, windows=0)
            return results

        start = time.perf_counter()
        windows = 0
        for wave in self._waves(selected, view):
            outcomes = self._execute_wave(wave, round_span=round_span)
            results.extend(outcomes)
            try:
                # Count served work from the outcomes (one score per
                # window), not from the raw request payloads — a request
                # whose windows never scored (bad shape, ragged list)
                # already carries a typed error result.
                windows += sum(
                    int(np.asarray(out.event.scores if out.kind == "event"
                                   else out.scores).shape[0])
                    for out in outcomes if out.kind != "error")
            except Exception:  # noqa: BLE001 — telemetry only: an odd
                pass           # custom-backend score shape must not lose
                               # the already-computed round results.
        try:
            self.metrics.counter("engine.requests").inc(len(selected))
            self._observe_round(time.perf_counter() - start, len(selected),
                                windows)
        except Exception:  # noqa: BLE001 — a metric name/kind collision
            pass           # on a shared registry is not worth hanging
                           # the callers awaiting these results.
        if trc is None:
            self._commit_durability(results)
            return results

        # Traced commit: the durability barrier gets its own span, and
        # ``durability_trace`` hands the hook (repro.wal.WalDurability)
        # the context to parent wal.fsync spans under.  Each served
        # ingest also gets a per-request stage.durability echo — even
        # without a WAL (a ~0-duration span) so every request's stage
        # chain is complete for the trace checker.
        dur_span = trc.start("engine.durability", parent=round_span.context)
        self.durability_trace = dur_span.context
        try:
            self._commit_durability(results)
        finally:
            self.durability_trace = None
        committed = dur_span.finish(durable=self.durability is not None)
        self.metrics.histogram("engine.stage.durability") \
            .observe(committed.dur)
        for result in results:
            request = result.request
            if request.op == "ingest" and request.trace is not None:
                trc.record_span(
                    "stage.durability", parent=request.trace,
                    ts=committed.ts, dur=committed.dur,
                    attrs={"stream": request.stream,
                           "durable": self.durability is not None,
                           "outcome": result.kind})
        finished = round_span.finish(round=self.rounds,
                                     streams=len(selected),
                                     windows=windows)
        if (self.slow_round_ms is not None
                and finished.dur * 1e3 >= self.slow_round_ms):
            self.metrics.counter("engine.slow_rounds").inc()
            hook = self.on_slow_round
            if hook is not None:
                try:
                    hook(trc.since(mark))
                except Exception:  # noqa: BLE001 — a broken dump hook
                    # must not fail the round's already-computed results.
                    self.metrics.counter("engine.trace_errors").inc()
        return results

    def _commit_durability(self, results: list[RoundResult]) -> None:
        """End-of-round durability barrier: advance each applied ingest's
        stream watermark, append skip records for requests that errored
        or expired (logged but never applied, so replay must not apply
        them either), then group-commit fsync — all *before* the results
        leave :meth:`run_round`, which is what makes the gateway's acks
        ack-after-append.

        A failed commit (ENOSPC, I/O error) must not turn into acks for
        requests that are not on disk: every would-be-acked ingest result
        in the round is converted to a typed ``durability`` error in
        place, and the engine latches — :meth:`submit` refuses further
        ingests — because retrying fsync on a file descriptor that
        already failed one is not reliable; the operator restarts and
        recovers from the durable prefix.  ``scores`` results still
        return normally: scoring is stateless and promises nothing about
        the log.
        """
        durability = self.durability
        if durability is None:
            return
        with self._lock:
            failed = self._durability_failed
        if not failed:
            try:
                for result in results:
                    request = result.request
                    if request.op != "ingest" or request.wal_seq is None:
                        continue
                    if result.kind == "event":
                        durability.record_applied(request.stream,
                                                  request.wal_seq)
                    else:
                        durability.record_skip(request.wal_seq)
                durability.commit(self)
                return
            except Exception:  # noqa: BLE001 — fail the acks, keep going
                self.metrics.counter("engine.durability_errors").inc()
                with self._lock:
                    self._durability_failed = True
        # Latched (this round or a previous one): rounds draining the
        # already-admitted queue no longer touch the WAL — a descriptor
        # that failed one fsync cannot be trusted to report a later one
        # honestly — so their would-be acks fail too.
        for index, result in enumerate(results):
            if result.request.op != "ingest" or result.kind == "error":
                continue
            results[index] = RoundResult(
                request=result.request, kind="error", code="durability",
                message=f"the request for stream "
                        f"{result.request.stream!r} was served but its "
                        f"durability commit failed; it is NOT on disk "
                        f"and will not survive recovery — treat it as "
                        f"unacknowledged")

    def min_pending_wal_seq(self) -> int | None:
        """Lowest durability-log seq still queued (``None`` when no
        queued request carries one) — the snapshot truncation bound:
        segments holding a logged-but-unserved request must survive."""
        with self._lock:
            seqs = [request.wal_seq
                    for queue in self._queues.values()
                    for request in queue if request.wal_seq is not None]
        return min(seqs) if seqs else None

    @staticmethod
    def _waves(selected: list[EngineRequest],
               view: dict[str, tuple]) -> list[list[EngineRequest]]:
        """Partition a selection into waves of ≤1 request per stream,
        each stream's requests in queue (FIFO) order, streams ordered by
        first appearance in the policy's selection."""
        position = {id(request): index
                    for queue in view.values()
                    for index, request in enumerate(queue)}
        per_stream: dict[str, list[EngineRequest]] = {}
        for request in selected:
            per_stream.setdefault(request.stream, []).append(request)
        for requests in per_stream.values():
            requests.sort(key=lambda r: position.get(id(r), 0))
        waves: list[list[EngineRequest]] = []
        depth = 0
        while True:
            wave = [requests[depth] for requests in per_stream.values()
                    if len(requests) > depth]
            if not wave:
                return waves
            waves.append(wave)
            depth += 1

    def _execute_wave(self, wave: list[EngineRequest],
                      round_span=None) -> list[RoundResult]:
        """Score-then-ingest one wave (≤1 request per stream, so keying
        by stream name is unambiguous).

        The scoring pass is stateless (:meth:`score_only` semantics): if
        the coalesced forward fails — e.g. one request's windows have a
        frame_dim the models can't score, which shape checks at admission
        cannot know — each entry is re-scored alone so only the offending
        request errors while the rest of the wave proceeds.  Retrying is
        safe precisely because no deployment state was touched; the
        subsequent ingest dispatches the already-computed (bit-identical)
        slices.
        """
        trc = self._tracer if round_span is not None else None
        shard_map = None
        if trc is not None:
            mapper = getattr(self.backend, "stream_shards", None)
            shard_map = mapper() if mapper is not None else None

        def _stage_echo(name_, request_, span_):
            # The wave runs as one coalesced backend call; each traced
            # request gets a same-interval echo under its own context,
            # with shard attribution when the backend knows it.
            attrs = {"stream": name_}
            if shard_map and name_ in shard_map:
                attrs["shard"] = shard_map[name_]
            trc.record_span(f"stage.{span_.name.split('.', 1)[1]}",
                            parent=request_.trace, ts=span_.ts,
                            dur=span_.dur, attrs=attrs)

        outcomes: dict[str, RoundResult] = {}
        by_stream = {request.stream: request for request in wave}
        arrivals = {name: request.windows
                    for name, request in by_stream.items()}
        score_span = None
        if trc is not None:
            score_span = trc.start("engine.score",
                                   parent=round_span.context,
                                   attrs={"streams": len(arrivals)})
        try:
            if score_span is not None:
                scored = self.backend.score(arrivals,
                                            trace=score_span.context)
            else:
                scored = self.backend.score(arrivals)
        except Exception:  # noqa: BLE001 — isolate the bad entry below
            scored = {}
            for name, request in by_stream.items():
                try:
                    scored[name] = self.backend.score(
                        {name: request.windows})[name]
                except Exception as exc:  # noqa: BLE001 — typed to caller
                    outcomes[name] = RoundResult(
                        request=request, kind="error", code="bad_request",
                        message=f"windows for stream {name!r} failed to "
                                f"score: {type(exc).__name__}: {exc}")
        if score_span is not None:
            done = score_span.finish(scored=len(scored))
            self.metrics.histogram("engine.stage.score").observe(done.dur)
            for name, request in by_stream.items():
                if request.trace is not None and name in scored:
                    _stage_echo(name, request, done)
        ingest = {name: request.windows
                  for name, request in by_stream.items()
                  if request.op == "ingest" and name in scored}
        if ingest:
            scores_map = {name: scored[name] for name in ingest}
            ingest_span = None
            if trc is not None:
                ingest_span = trc.start("engine.ingest",
                                        parent=round_span.context,
                                        attrs={"streams": len(ingest)})
            try:
                if ingest_span is not None:
                    events = self.backend.ingest(
                        ingest, scores=scores_map,
                        trace=ingest_span.context)
                else:
                    events = self.backend.ingest(ingest, scores=scores_map)
            except Exception as exc:  # noqa: BLE001 — typed to caller
                if ingest_span is not None:
                    ingest_span.finish(outcome="error")
                self.metrics.counter("engine.errors").inc()
                for name in ingest:
                    outcomes[name] = RoundResult(
                        request=by_stream[name], kind="error",
                        code="internal",
                        message=f"serving round failed: "
                                f"{type(exc).__name__}: {exc}")
            else:
                if ingest_span is not None:
                    done = ingest_span.finish(outcome="ok")
                    self.metrics.histogram("engine.stage.ingest") \
                        .observe(done.dur)
                    for name in ingest:
                        if by_stream[name].trace is not None:
                            _stage_echo(name, by_stream[name], done)
                for name, event in events.items():
                    outcomes[name] = RoundResult(
                        request=by_stream[name], kind="event", event=event)
        for name, request in by_stream.items():
            if request.op == "scores" and name in scored:
                outcomes[name] = RoundResult(
                    request=request, kind="scores", scores=scored[name])
        return [outcomes.get(request.stream) or RoundResult(
                    request=request, kind="error", code="internal",
                    message=f"round produced no result for stream "
                            f"{request.stream!r}")
                for request in wave]

    # ------------------------------------------------------------------
    # Metrics / introspection
    # ------------------------------------------------------------------
    def _observe_round(self, elapsed: float, streams: int,
                       windows: int) -> None:
        self.rounds += 1
        self.metrics.counter("engine.rounds").inc()
        self.metrics.counter("engine.windows").inc(windows)
        self.metrics.histogram("engine.round_latency").observe(elapsed)
        self.metrics.gauge("engine.last_round_streams").set(streams)
        self.metrics.gauge("engine.last_round_windows").set(windows)

    def _update_queue_gauge(self) -> None:  # repro: lock-held
        self.metrics.gauge("engine.queue_depth").set(
            sum(len(queue) for queue in self._queues.values()))

    def stats(self, concurrent: bool = False) -> dict:
        """Engine-level summary for the ``stats`` op and the benchmark
        payloads: backend/policy names, rounds, queue depths, and the
        backend's coalescing counters (windows per forward).

        With ``concurrent=True`` (a caller on a different thread than
        the round runner, e.g. the gateway's ``stats`` op) backends whose
        counters aren't safe to read mid-round — the sharded backend's
        go over the worker pipes — are skipped instead of queried.
        """
        # The root package only defines metadata (no subpackage imports),
        # so this upward import cannot cycle; deferred anyway so the
        # engine module stays importable mid-bootstrap.
        from .. import __version__
        out = {
            "backend": self.backend.name,
            "policy": self.policy.name,
            "rounds": self.rounds,
            "queued": self.queued_depths(),
            "version": __version__,
            "started_at": self._started_monotonic,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
        }
        # Transport counters (sharded shm rings vs pipe fallbacks) are
        # plain parent-side attribute reads — safe from any thread, so
        # they're reported even on concurrent snapshots.
        transport = getattr(self.backend, "transport_stats", None)
        if transport is not None:
            info = transport()
            if info:
                out["transport"] = info
        if concurrent and not self.backend.concurrent_safe_stats:
            return out
        batch = self.backend.batch_stats()
        if batch:
            forwards = int(batch.get("batches_run", 0))
            scored = int(batch.get("windows_scored", 0))
            out["coalesce"] = {
                **batch,
                "windows_per_forward": (scored / forwards) if forwards
                else 0.0,
            }
        return out
