"""The serving engine: one canonical round loop for every serving layer.

PRs 2–4 grew three serving layers — the in-process
:class:`~repro.serving.DeploymentFleet`, the multi-process
:class:`~repro.serving.ShardedFleet`, and the network
:class:`~repro.gateway.GatewayServer` — and each re-implemented the same
round shape: gather pending arrivals, pick this round's work, micro-batch
score it, dispatch the score slices into each deployment's monitor, and
report what happened.  :class:`ServingEngine` owns that loop once:

* **gather** — either pulled from backend-owned streams (:meth:`step`)
  or pushed into bounded per-stream admission queues (:meth:`submit`);
* **schedule** — a pluggable :class:`~repro.runtime.SchedulingPolicy`
  decides which queued requests form the round (:meth:`run_round`);
* **score** — the :class:`~repro.runtime.ExecutionBackend` executes the
  coalesced, stateless scoring pass (in-process micro-batching or a
  scatter across shard workers), with per-entry isolation when a
  coalesced forward fails;
* **ingest** — deployments consume their precomputed score slices;
* **emit** — :class:`FleetEvent`/:class:`RoundResult` objects for the
  caller, and round/latency/queue metrics into one shared
  :class:`repro.metrics.MetricsRegistry`.

Scores are bit-identical across backends and policies: scoring is
stateless and batch-composition-independent (see
:mod:`repro.serving.batcher`), and the engine preserves per-stream FIFO
order no matter how a policy composes rounds, so every stream sees the
exact ingest sequence a plain ``DeploymentFleet.step()`` run would
produce.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from threading import Condition, Lock, Thread
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, ReproError
from ..metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover — typing only
    from ..adaptation.controller import AdaptationStepLog

__all__ = ["FleetEvent", "make_fleet_event", "EngineRequest", "RoundResult",
           "AdmissionError", "ServingEngine"]


@dataclass
class FleetEvent:
    """One stream's result within a serving round."""

    stream: str
    mission: str | None
    step: int
    scores: np.ndarray
    log: "AdaptationStepLog | None" = None
    active_class: str | None = None
    is_post_shift: bool | None = None


def make_fleet_event(slot, log, batch=None) -> FleetEvent:
    """The one place a :class:`FleetEvent` is assembled from a slot's
    ingest log (``batch`` carries stream metadata when the round was
    pulled from the slot's own stream; externally supplied arrivals have
    none)."""
    return FleetEvent(
        stream=slot.name, mission=slot.deployment.mission,
        step=log.step, scores=log.scores, log=log,
        active_class=getattr(batch, "active_class", None),
        is_post_shift=getattr(batch, "is_post_shift", None))


@dataclass
class EngineRequest:
    """One queued ``ingest``/``scores`` request awaiting scheduling.

    ``priority`` and ``deadline`` only matter to policies that read them
    (higher priority first; ``deadline`` is an absolute
    ``time.monotonic()`` instant after which the request is expired
    instead of served).  ``tag`` is an opaque caller handle — the gateway
    stores its response future there — threaded through untouched.
    """

    op: str                        # "ingest" | "scores"
    stream: str
    windows: np.ndarray
    priority: int = 0
    deadline: float | None = None
    queued_at: float = 0.0
    tag: object = None
    wal_seq: int | None = None     # durability log seq (set at admission)
    # Optional repro.obs.TraceContext joining this request's trace to
    # the round that serves it (typed loosely: the runtime layer treats
    # it as opaque unless a tracer is attached).
    trace: object = None


@dataclass
class RoundResult:
    """What one :class:`EngineRequest` became after its round ran."""

    request: EngineRequest
    kind: str                      # "event" | "scores" | "error"
    event: FleetEvent | None = None
    scores: np.ndarray | None = None
    code: str | None = None        # typed error code for kind == "error"
    message: str | None = None


class AdmissionError(ReproError, RuntimeError):
    """A request refused at the queue door; carries a typed code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class _CommitBatch:
    """One round's results riding the committer queue (pipelined mode).

    Batches are strictly FIFO: the committer pops them in handoff order,
    so the WAL sees watermark/skip records in exactly the order the
    serial commit would have written them.  ``dur_span`` is the round's
    ``engine.durability`` active span, opened on the round thread at
    handoff and finished on the committer thread after the fsync — which
    is how ``wal.fsync`` spans stay parented under the *committing*
    round even though they are recorded from another thread.
    """

    results: list[RoundResult]
    handed_off: float                 # perf_counter at handoff
    dur_span: object = None           # repro.obs ActiveSpan | None
    round_index: int = 0
    wal_seqs: list[int] = field(default_factory=list)


class ServingEngine:
    """Drives rounds over an :class:`~repro.runtime.ExecutionBackend`.

    Thread-safety: the admission queue (:meth:`submit` /
    :meth:`run_round` / :meth:`drop_pending`) is lock-protected, so an
    event loop may admit work while an executor thread runs the round —
    the gateway's arrangement.  The lock-step entry points (:meth:`step`,
    :meth:`ingest_round`, :meth:`score_only`) are single-caller, like the
    fleet methods they replaced.

    **Pipelined mode** (``pipeline=True``): :meth:`run_round` no longer
    returns its results — it hands them to a dedicated committer thread
    as an ordered :class:`_CommitBatch` and returns ``[]`` immediately,
    so round N+1's scheduling/scoring overlaps round N's group-commit
    fsync.  The committer applies the batch's watermark/skip records,
    fsyncs, and only then delivers the results through the ``on_commit``
    callback — ack-after-fsync is preserved, just off the critical path.
    Batches commit strictly FIFO; a failed fsync latches the engine
    exactly like the serial path (the failing batch *and every batch
    queued behind it* deliver typed ``durability`` errors, and
    :meth:`submit` refuses new ingests).  :meth:`drain_commits` is the
    barrier callers (snapshots, shutdown) use; :meth:`stop_committer`
    drains and joins the thread.

    The lock discipline is machine-checked: attributes annotated
    ``# repro: guarded-by[_lock]`` (the queues, the durability latch,
    the committer's shared state) may only be touched inside
    ``with self._lock`` or in methods annotated ``# repro: lock-held`` —
    ``repro lint`` (the **lock-guard** rule) fails CI on any unguarded
    access.
    """

    def __init__(self, backend, policy=None, metrics: MetricsRegistry | None = None,
                 max_queue_depth: int | None = None, clock=time.monotonic,
                 durability=None, tracer=None, slow_round_ms: float | None = None,
                 on_slow_round=None, pipeline: bool = False, on_commit=None):
        from .policies import FairRoundRobin
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be >= 1")
        self.backend = backend
        self.policy = policy or FairRoundRobin()
        self.metrics = metrics or MetricsRegistry()
        self.max_queue_depth = max_queue_depth
        self.rounds = 0
        self._clock = clock
        self._queues: dict[str, deque[EngineRequest]] = {}  # repro: guarded-by[_lock]
        self._lock = Lock()
        # Duck-typed durability hook (e.g. repro.wal.WalDurability; the
        # runtime layer never imports it): record_submit(request) → seq,
        # record_applied(stream, seq), record_skip(seq), commit(engine).
        # Accepted ingests are logged before they become schedulable and
        # fsynced once per round before results reach any caller.
        self.durability = durability
        self._durability_failed = False  # repro: guarded-by[_lock]
        # Uptime baseline for stats(); always real monotonic time, never
        # the injected scheduling clock.
        self._started_monotonic = time.monotonic()
        # Tracing (repro.obs.TraceRecorder, duck-typed).  Strictly
        # opt-in: with no tracer every span call site below is skipped,
        # so the hot path is bit-identical to an untraced engine.
        self._tracer = None
        self.slow_round_ms = slow_round_ms
        self.on_slow_round = on_slow_round  # callable(list[Span]) | None
        # Context the durability hook parents wal.fsync spans under;
        # set only for the duration of a traced round's commit.
        self.durability_trace = None
        # Pipelined group commit: round N's fsync overlaps round N+1's
        # compute.  on_commit(results) is the completion sink (the
        # gateway resolves its response futures there); it runs on the
        # committer thread.
        self.pipeline = bool(pipeline)
        self.on_commit = on_commit
        self._commit_queue: deque[_CommitBatch] = deque()  # repro: guarded-by[_lock]
        self._commit_active: _CommitBatch | None = None  # repro: guarded-by[_lock]
        self._commit_stop = False  # repro: guarded-by[_lock]
        self._snapshot_due = False  # repro: guarded-by[_lock]
        self._committer: Thread | None = None  # repro: guarded-by[_lock]
        # Shares _lock so committer waits hold the same lock the
        # guarded state lives under.
        self._commit_cv = Condition(self._lock)
        if tracer is not None:
            self.tracer = tracer

    @property
    def tracer(self):
        """The attached :class:`repro.obs.TraceRecorder` (or ``None``)."""
        return self._tracer

    @tracer.setter
    def tracer(self, recorder) -> None:
        self._tracer = recorder
        attach = getattr(self.backend, "set_tracer", None)
        if attach is not None:
            attach(recorder)

    # ------------------------------------------------------------------
    # Lock-step serving: rounds pulled from backend-owned streams
    # ------------------------------------------------------------------
    def step(self, batched: bool = True) -> list[FleetEvent]:
        """One serving round over every live backend stream: pull each
        stream's next arrival batch, score (coalesced when ``batched``),
        ingest, emit events.  With a tracer attached each non-empty pull
        becomes one ``engine.round`` span (an abandoned span on the
        empty pull is never recorded)."""
        trc = self._tracer
        round_span = trc.start("engine.round") if trc is not None else None
        start = time.perf_counter()
        events = self.backend.pull_round(batched)
        if not events:
            return []
        self._observe_round(time.perf_counter() - start, len(events),
                            sum(int(event.scores.size) for event in events))
        if round_span is not None:
            round_span.finish(round=self.rounds, streams=len(events),
                              pull=True)
        return events

    def serve(self, max_rounds: int | None = None, batched: bool = True):
        """Yield per-round event lists until every stream is exhausted
        (or ``max_rounds`` rounds have run)."""
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            events = self.step(batched=batched)
            if not events:
                return
            yield events
            rounds += 1

    def ingest_round(self, arrivals: dict, batched: bool = True,
                     scores: dict | None = None) -> dict[str, FleetEvent]:
        """One serving round over externally supplied arrival windows
        (``{stream name: (B, T, frame_dim) windows}``); ``scores`` may
        carry precomputed per-stream score slices (e.g. from a prior
        :meth:`score_only` call), in which case scoring is skipped."""
        start = time.perf_counter()
        events = self.backend.ingest(arrivals, scores=scores,
                                     batched=batched)
        if events:
            self._observe_round(
                time.perf_counter() - start, len(events),
                sum(int(event.scores.size) for event in events.values()))
        return events

    def score_only(self, arrivals: dict) -> dict[str, np.ndarray]:
        """Score externally supplied windows without feeding any
        deployment's monitor; stateless and safely retryable."""
        self.metrics.counter("engine.score_only").inc()
        return self.backend.score(arrivals)

    # ------------------------------------------------------------------
    # Queued serving: admission, scheduling, policy-composed rounds
    # ------------------------------------------------------------------
    def now(self) -> float:
        """The engine's scheduling clock (``time.monotonic`` unless one
        was injected).  ``EngineRequest.deadline`` instants must be
        computed against this clock, never ``time.monotonic`` directly,
        or deadline math silently breaks under an injected clock."""
        return self._clock()

    def submit(self, request: EngineRequest) -> None:
        """Admit a request into its stream's queue; raises
        :class:`AdmissionError` (``backpressure``) past
        ``max_queue_depth`` queued requests for that stream.

        With a durability hook attached, an accepted ``ingest`` request
        is logged *here* — after admission control, before it joins the
        queue — so exactly the accepted requests hit the log
        (backpressure rejections never do) and, because the append runs
        under the admission lock, per-stream log order equals per-stream
        queue order.  A failed append propagates and the request is not
        queued: log-before-schedule, never schedule-then-hope.
        """
        with self._lock:
            queue = self._queues.setdefault(request.stream, deque())
            if (self.max_queue_depth is not None
                    and len(queue) >= self.max_queue_depth):
                raise AdmissionError(
                    "backpressure",
                    f"stream {request.stream!r} has {len(queue)} queued "
                    f"request(s) (limit {self.max_queue_depth}); retry "
                    "after backoff")
            if self.durability is not None and request.op == "ingest":
                if self._durability_failed:
                    raise AdmissionError(
                        "durability",
                        "the durability log failed a group commit; the "
                        "engine refuses new ingests until the WAL is "
                        "healthy (restart the service and run recovery)")
                request.wal_seq = self.durability.record_submit(request)
            if not request.queued_at:
                request.queued_at = self._clock()
            queue.append(request)
            self._update_queue_gauge()

    def queued_depths(self) -> dict[str, int]:
        """Per-stream queued-but-unserved request counts (non-empty
        queues only — the gateway's ``stats`` map)."""
        with self._lock:
            return {name: len(queue)
                    for name, queue in self._queues.items() if queue}

    def has_pending(self) -> bool:
        with self._lock:
            return any(self._queues.values())

    def pending_count(self) -> int:
        """Total queued-but-unserved requests (the pipelined gateway's
        round-gather loop polls this between arrivals)."""
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    def drop_pending(self, predicate) -> list[EngineRequest]:
        """Remove every queued request matching ``predicate`` (e.g. all
        of a disconnected connection's work); returns the dropped
        requests so the caller can cancel their handles.

        Single-pass: ``predicate`` is evaluated exactly once per queued
        request — predicates may be stateful or expensive (the gateway's
        closes over a connection object), so they must not be re-run per
        partition side."""
        dropped: list[EngineRequest] = []
        with self._lock:
            for queue in self._queues.values():
                kept: list[EngineRequest] = []
                before = len(dropped)
                for request in queue:
                    (dropped if predicate(request) else kept).append(request)
                if len(dropped) != before:
                    queue.clear()
                    queue.extend(kept)
            self._update_queue_gauge()
        if self.durability is not None:
            try:
                for request in dropped:
                    if request.wal_seq is not None:
                        self.durability.record_skip(request.wal_seq)
            except Exception:  # noqa: BLE001 — dropped work was never
                # acked; a failed skip append only costs replay applying
                # it, which is harmless extra state, not lost state.
                self.metrics.counter("engine.durability_errors").inc()
        return dropped

    def run_round(self) -> list[RoundResult]:
        """One policy-composed round over the queued requests.

        The policy selects which requests run (and which have expired);
        the engine partitions the selection into waves of at most one
        request per stream — per-stream FIFO is an invariant the policy
        cannot break, it only shapes round *composition* — and executes
        each wave score-then-ingest.  Total: every selected or expired
        request gets exactly one :class:`RoundResult`; this method never
        raises on bad client input or backend failure.

        With a tracer attached, the round becomes its own trace
        (``engine.round`` → ``engine.schedule`` / per-wave
        ``engine.score``/``engine.ingest`` / ``engine.durability``) and
        each traced request's story gains per-request ``queue.wait`` and
        ``stage.*`` spans parented under *its* context — the join
        between a request's trace and the shared round that served it.
        Abandoned active spans (empty rounds) are never recorded.

        In pipelined mode this returns ``[]`` and the results arrive via
        ``on_commit`` once their group commit fsyncs (see the class
        docstring); the serial path returns them directly, post-commit.
        """
        self._maybe_snapshot()
        trc = self._tracer
        round_span = sched_span = None
        mark = 0
        if trc is not None:
            mark = trc.mark()
            round_span = trc.start("engine.round")
            sched_span = trc.start("engine.schedule",
                                   parent=round_span.context)
        with self._lock:
            if not any(self._queues.values()):
                return []
            now = self._clock()
            view = {name: tuple(queue)
                    for name, queue in self._queues.items() if queue}
            try:
                plan = self.policy.select(view, now)
                selected = list(plan.entries)
                expired = list(plan.expired)
            except Exception:  # noqa: BLE001 — a broken policy must not
                # wedge the server: degrade to the fair default (front of
                # every queue) so queued clients still get served.
                self.metrics.counter("engine.policy_errors").inc()
                selected = [queue[0] for queue in view.values()]
                expired = []
            # A policy may only return requests that are actually queued;
            # anything else (a buggy custom policy echoing stale objects)
            # is dropped here rather than served-but-not-dequeued.
            queued = {id(r) for queue in view.values() for r in queue}
            selected = [r for r in selected if id(r) in queued]
            expired = [r for r in expired if id(r) in queued]
            taken = {id(r) for r in selected} | {id(r) for r in expired}
            for queue in self._queues.values():
                if any(id(r) in taken for r in queue):
                    kept = [r for r in queue if id(r) not in taken]
                    queue.clear()
                    queue.extend(kept)
            self._update_queue_gauge()

        # Queue wait is only knowable at dequeue time; the histogram
        # records on every round, traced or not (the synthetic span
        # below is the traced-only part).
        dequeued_at = self._clock()
        waits = [max(0.0, dequeued_at - request.queued_at)
                 if request.queued_at else 0.0 for request in selected]
        queue_wait = self.metrics.histogram("engine.stage.queue_wait")
        for wait in waits:
            queue_wait.observe(wait)
        if trc is not None:
            sched = sched_span.finish(selected=len(selected),
                                      expired=len(expired))
            self.metrics.histogram("engine.stage.schedule").observe(sched.dur)
            # Measured on the scheduling clock, backdated on the wall
            # clock.
            wall = time.time()
            for request, wait in zip(selected, waits):
                if request.trace is not None:
                    trc.record_span(
                        "queue.wait", parent=request.trace,
                        ts=wall - wait, dur=wait,
                        attrs={"stream": request.stream,
                               "round": self.rounds})

        results: list[RoundResult] = []
        for request in expired:
            self.metrics.counter("engine.expired").inc()
            results.append(RoundResult(
                request=request, kind="error", code="expired",
                message=f"request for stream {request.stream!r} missed its "
                        f"deadline while queued; it was never served"))
        if not selected:
            if self.pipeline:
                self._enqueue_commit(results, trc, round_span)
                if trc is not None:
                    round_span.finish(round=self.rounds, streams=0,
                                      windows=0)
                return []
            self._commit_durability(results)
            if trc is not None:
                round_span.finish(round=self.rounds, streams=0, windows=0)
            return results

        start = time.perf_counter()
        windows = 0
        for wave in self._waves(selected, view):
            outcomes = self._execute_wave(wave, round_span=round_span)
            results.extend(outcomes)
            try:
                # Count served work from the outcomes (one score per
                # window), not from the raw request payloads — a request
                # whose windows never scored (bad shape, ragged list)
                # already carries a typed error result.
                windows += sum(
                    int(np.asarray(out.event.scores if out.kind == "event"
                                   else out.scores).shape[0])
                    for out in outcomes if out.kind != "error")
            except Exception:  # noqa: BLE001 — telemetry only: an odd
                pass           # custom-backend score shape must not lose
                               # the already-computed round results.
        try:
            self.metrics.counter("engine.requests").inc(len(selected))
            self._observe_round(time.perf_counter() - start, len(selected),
                                windows)
        except Exception:  # noqa: BLE001 — a metric name/kind collision
            pass           # on a shared registry is not worth hanging
                           # the callers awaiting these results.
        if self.pipeline:
            # Hand the batch to the committer and return immediately:
            # the caller's next run_round() overlaps this batch's fsync.
            self._enqueue_commit(results, trc, round_span)
            if trc is not None:
                finished = round_span.finish(round=self.rounds,
                                             streams=len(selected),
                                             windows=windows)
                self._check_slow_round(finished, trc, mark)
            return []
        if trc is None:
            self._commit_durability(results)
            return results

        # Traced commit: the durability barrier gets its own span, and
        # ``durability_trace`` hands the hook (repro.wal.WalDurability)
        # the context to parent wal.fsync spans under.  Each served
        # ingest also gets a per-request stage.durability echo — even
        # without a WAL (a ~0-duration span) so every request's stage
        # chain is complete for the trace checker.
        dur_span = trc.start("engine.durability", parent=round_span.context)
        self.durability_trace = dur_span.context
        try:
            self._commit_durability(results)
        finally:
            self.durability_trace = None
        committed = dur_span.finish(durable=self.durability is not None)
        self.metrics.histogram("engine.stage.durability") \
            .observe(committed.dur)
        for result in results:
            request = result.request
            if request.op == "ingest" and request.trace is not None:
                trc.record_span(
                    "stage.durability", parent=request.trace,
                    ts=committed.ts, dur=committed.dur,
                    attrs={"stream": request.stream,
                           "durable": self.durability is not None,
                           "outcome": result.kind})
        finished = round_span.finish(round=self.rounds,
                                     streams=len(selected),
                                     windows=windows)
        self._check_slow_round(finished, trc, mark)
        return results

    def _check_slow_round(self, finished, trc, mark) -> None:
        """Slow-round escalation: bump the counter and hand the round's
        span window to ``on_slow_round`` when the round overran."""
        if (self.slow_round_ms is None
                or finished.dur * 1e3 < self.slow_round_ms):
            return
        self.metrics.counter("engine.slow_rounds").inc()
        hook = self.on_slow_round
        if hook is not None:
            try:
                hook(trc.since(mark))
            except Exception:  # noqa: BLE001 — a broken dump hook
                # must not fail the round's already-computed results.
                self.metrics.counter("engine.trace_errors").inc()

    def _commit_durability(self, results: list[RoundResult]) -> None:
        """End-of-round durability barrier: advance each applied ingest's
        stream watermark, append skip records for requests that errored
        or expired (logged but never applied, so replay must not apply
        them either), then group-commit fsync — all *before* the results
        leave :meth:`run_round`, which is what makes the gateway's acks
        ack-after-append.

        A failed commit (ENOSPC, I/O error) must not turn into acks for
        requests that are not on disk: every would-be-acked ingest result
        in the round is converted to a typed ``durability`` error in
        place, and the engine latches — :meth:`submit` refuses further
        ingests — because retrying fsync on a file descriptor that
        already failed one is not reliable; the operator restarts and
        recovers from the durable prefix.  ``scores`` results still
        return normally: scoring is stateless and promises nothing about
        the log.
        """
        if self.durability is None:
            return
        self._commit_records(results, trace_parent=None)

    def _commit_records(self, results: list[RoundResult],
                        trace_parent=None) -> None:
        """The shared commit core (serial round thread *and* committer
        thread): watermark/skip records, then the group-commit fsync.

        On the serial path the fsync goes through ``durability.commit``,
        which may also snapshot — safe there because the round thread is
        quiescent between rounds.  On the pipelined path it goes through
        ``flush_only`` (fsync, no snapshot: a snapshot walks live fleet
        state the next round is already mutating) and a due snapshot is
        deferred to the round thread via ``_snapshot_due`` /
        :meth:`_maybe_snapshot`.  Custom durability hooks without
        ``flush_only`` get the plain ``commit`` call either way.
        """
        durability = self.durability
        with self._lock:
            failed = self._durability_failed
        if not failed:
            try:
                for result in results:
                    request = result.request
                    if request.op != "ingest" or request.wal_seq is None:
                        continue
                    if result.kind == "event":
                        durability.record_applied(request.stream,
                                                  request.wal_seq)
                    else:
                        durability.record_skip(request.wal_seq)
                flush_only = getattr(durability, "flush_only", None) \
                    if self.pipeline else None
                if flush_only is not None:
                    flush_only(trace_parent=trace_parent)
                    due = getattr(durability, "snapshot_due", None)
                    if due is not None and due(self.rounds):
                        with self._lock:
                            self._snapshot_due = True
                else:
                    durability.commit(self)
                return
            except Exception:  # noqa: BLE001 — fail the acks, keep going
                self.metrics.counter("engine.durability_errors").inc()
                with self._lock:
                    self._durability_failed = True
        # Latched (this round or a previous one): rounds draining the
        # already-admitted queue no longer touch the WAL — a descriptor
        # that failed one fsync cannot be trusted to report a later one
        # honestly — so their would-be acks fail too.
        for index, result in enumerate(results):
            if result.request.op != "ingest" or result.kind == "error":
                continue
            results[index] = RoundResult(
                request=result.request, kind="error", code="durability",
                message=f"the request for stream "
                        f"{result.request.stream!r} was served but its "
                        f"durability commit failed; it is NOT on disk "
                        f"and will not survive recovery — treat it as "
                        f"unacknowledged")

    # ------------------------------------------------------------------
    # Pipelined group commit: the committer thread
    # ------------------------------------------------------------------
    def _enqueue_commit(self, results: list[RoundResult], trc,
                        round_span) -> None:
        """Hand one round's results to the committer (FIFO).  Called on
        the round thread; starts the committer lazily on first use."""
        dur_span = None
        if trc is not None and round_span is not None:
            # Opened *here* so its parent is the committing round; the
            # committer finishes it after the fsync, and the durability
            # hook parents wal.fsync under its context.
            dur_span = trc.start("engine.durability",
                                 parent=round_span.context)
        if not results:
            return
        batch = _CommitBatch(
            results=results, handed_off=time.perf_counter(),
            dur_span=dur_span, round_index=self.rounds,
            wal_seqs=[result.request.wal_seq for result in results
                      if result.request.wal_seq is not None])
        with self._lock:
            if self._committer is None:
                self._commit_stop = False
                self._committer = Thread(target=self._committer_main,
                                         name="engine-committer",
                                         daemon=True)
                self._committer.start()
            self._commit_queue.append(batch)
            self.metrics.gauge("engine.commit_backlog") \
                .set(self._commit_backlog_locked())
            self._commit_cv.notify_all()

    def _commit_backlog_locked(self) -> int:  # repro: lock-held
        """Batches handed off but not yet committed (queued + active)."""
        return (len(self._commit_queue)
                + (1 if self._commit_active is not None else 0))

    def _committer_main(self) -> None:
        """Committer thread: pop batches FIFO and commit each outside
        the lock (the fsync must never block admission or scheduling)."""
        while True:
            with self._lock:
                while not self._commit_queue and not self._commit_stop:
                    self._commit_cv.wait()
                if not self._commit_queue:
                    return
                batch = self._commit_queue.popleft()
                self._commit_active = batch
                self.metrics.gauge("engine.commit_backlog") \
                    .set(self._commit_backlog_locked())
            try:
                self._commit_batch(batch)
            finally:
                with self._lock:
                    self._commit_active = None
                    self.metrics.gauge("engine.commit_backlog") \
                        .set(self._commit_backlog_locked())
                    self._commit_cv.notify_all()

    def _commit_batch(self, batch: _CommitBatch) -> None:
        """Commit one batch and deliver its results (committer thread).

        A durability failure here latches the engine and converts the
        batch's would-be acks exactly like the serial path — and because
        the latch is checked per batch, every batch queued *behind* the
        failure delivers ``durability`` errors too.
        """
        self.metrics.histogram("engine.stage.commit_wait") \
            .observe(time.perf_counter() - batch.handed_off)
        self.metrics.counter("engine.commit_batches").inc()
        dur_span = batch.dur_span
        results = batch.results
        if self.durability is not None:
            self._commit_records(
                results,
                trace_parent=dur_span.context if dur_span is not None
                else None)
        if dur_span is not None:
            committed = dur_span.finish(
                durable=self.durability is not None, pipelined=True)
            self.metrics.histogram("engine.stage.durability") \
                .observe(committed.dur)
            trc = self._tracer
            if trc is not None:
                for result in results:
                    request = result.request
                    if request.op == "ingest" and request.trace is not None:
                        trc.record_span(
                            "stage.durability", parent=request.trace,
                            ts=committed.ts, dur=committed.dur,
                            attrs={"stream": request.stream,
                                   "durable": self.durability is not None,
                                   "outcome": result.kind})
        callback = self.on_commit
        if callback is not None:
            try:
                callback(results)
            except Exception:  # noqa: BLE001 — a broken completion sink
                # must not wedge the committer; later batches still
                # commit and deliver.
                self.metrics.counter("engine.commit_errors").inc()

    def drain_commits(self, timeout: float | None = 60.0) -> bool:
        """Barrier: block until every handed-off batch has committed and
        delivered (a no-op when nothing is in flight).  Returns ``False``
        on timeout instead of raising — callers decide how hard to
        fail."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._commit_queue or self._commit_active is not None:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._commit_cv.wait(timeout=remaining)
        return True

    def stop_committer(self, timeout: float | None = 60.0) -> None:
        """Drain, then stop and join the committer thread (idempotent;
        the engine may start a fresh committer on later handoffs)."""
        self.drain_commits(timeout=timeout)
        with self._lock:
            self._commit_stop = True
            self._commit_cv.notify_all()
            committer = self._committer
            self._committer = None
        if committer is not None:
            committer.join(timeout=10.0)
        with self._lock:
            self._commit_stop = False

    def _maybe_snapshot(self) -> None:
        """Run a deferred snapshot on the round thread (pipelined mode).

        The committer only *flags* a due snapshot; taking it requires
        walking live fleet state, which is only safe here — between
        rounds, after a full commit drain, with the backend quiescent.
        """
        with self._lock:
            due = self._snapshot_due
        if not due or self.durability is None:
            return
        self.drain_commits()
        with self._lock:
            self._snapshot_due = False
            if self._durability_failed:
                return
        snapshot = getattr(self.durability, "snapshot", None)
        if snapshot is None:
            return
        try:
            snapshot(self)
        except Exception:  # noqa: BLE001 — same contract as a failed
            # commit: latch rather than keep acking against a log whose
            # truncation bookkeeping just failed.
            self.metrics.counter("engine.durability_errors").inc()
            with self._lock:
                self._durability_failed = True

    def min_pending_wal_seq(self) -> int | None:
        """Lowest durability-log seq still queued *or riding an
        unfsynced commit batch* (``None`` when neither holds one) — the
        snapshot truncation bound: segments holding a logged-but-not-yet-
        durable request must survive."""
        with self._lock:
            seqs = [request.wal_seq
                    for queue in self._queues.values()
                    for request in queue if request.wal_seq is not None]
            batches = list(self._commit_queue)
            if self._commit_active is not None:
                batches.append(self._commit_active)
            for batch in batches:
                seqs.extend(batch.wal_seqs)
        return min(seqs) if seqs else None

    @staticmethod
    def _waves(selected: list[EngineRequest],
               view: dict[str, tuple]) -> list[list[EngineRequest]]:
        """Partition a selection into waves of ≤1 request per stream,
        each stream's requests in queue (FIFO) order, streams ordered by
        first appearance in the policy's selection."""
        position = {id(request): index
                    for queue in view.values()
                    for index, request in enumerate(queue)}
        per_stream: dict[str, list[EngineRequest]] = {}
        for request in selected:
            per_stream.setdefault(request.stream, []).append(request)
        for requests in per_stream.values():
            requests.sort(key=lambda r: position.get(id(r), 0))
        waves: list[list[EngineRequest]] = []
        depth = 0
        while True:
            wave = [requests[depth] for requests in per_stream.values()
                    if len(requests) > depth]
            if not wave:
                return waves
            waves.append(wave)
            depth += 1

    def _execute_wave(self, wave: list[EngineRequest],
                      round_span=None) -> list[RoundResult]:
        """Score-then-ingest one wave (≤1 request per stream, so keying
        by stream name is unambiguous).

        The scoring pass is stateless (:meth:`score_only` semantics): if
        the coalesced forward fails — e.g. one request's windows have a
        frame_dim the models can't score, which shape checks at admission
        cannot know — each entry is re-scored alone so only the offending
        request errors while the rest of the wave proceeds.  Retrying is
        safe precisely because no deployment state was touched; the
        subsequent ingest dispatches the already-computed (bit-identical)
        slices.

        Backends exposing a fused ``serve_round`` (the sharded fleet)
        take a one-scatter fast path on untraced rounds: score and
        ingest ride a single ring round-trip per shard instead of two.
        Traced rounds keep the split commands so the per-stage span
        structure stays exact, and any fused failure falls back to the
        split path's per-entry isolation — bit parity either way,
        because scoring is batch-composition-independent.
        """
        trc = self._tracer if round_span is not None else None
        if trc is None:
            fused = getattr(self.backend, "serve_round", None)
            if fused is not None:
                return self._execute_wave_fused(wave, fused)
        shard_map = None
        if trc is not None:
            mapper = getattr(self.backend, "stream_shards", None)
            shard_map = mapper() if mapper is not None else None

        def _stage_echo(name_, request_, span_):
            # The wave runs as one coalesced backend call; each traced
            # request gets a same-interval echo under its own context,
            # with shard attribution when the backend knows it.
            attrs = {"stream": name_}
            if shard_map and name_ in shard_map:
                attrs["shard"] = shard_map[name_]
            trc.record_span(f"stage.{span_.name.split('.', 1)[1]}",
                            parent=request_.trace, ts=span_.ts,
                            dur=span_.dur, attrs=attrs)

        outcomes: dict[str, RoundResult] = {}
        by_stream = {request.stream: request for request in wave}
        arrivals = {name: request.windows
                    for name, request in by_stream.items()}
        score_span = None
        if trc is not None:
            score_span = trc.start("engine.score",
                                   parent=round_span.context,
                                   attrs={"streams": len(arrivals)})
        try:
            if score_span is not None:
                scored = self.backend.score(arrivals,
                                            trace=score_span.context)
            else:
                scored = self.backend.score(arrivals)
        except Exception:  # noqa: BLE001 — isolate the bad entry below
            scored = {}
            for name, request in by_stream.items():
                try:
                    scored[name] = self.backend.score(
                        {name: request.windows})[name]
                except Exception as exc:  # noqa: BLE001 — typed to caller
                    outcomes[name] = RoundResult(
                        request=request, kind="error", code="bad_request",
                        message=f"windows for stream {name!r} failed to "
                                f"score: {type(exc).__name__}: {exc}")
        if score_span is not None:
            done = score_span.finish(scored=len(scored))
            self.metrics.histogram("engine.stage.score").observe(done.dur)
            for name, request in by_stream.items():
                if request.trace is not None and name in scored:
                    _stage_echo(name, request, done)
        ingest = {name: request.windows
                  for name, request in by_stream.items()
                  if request.op == "ingest" and name in scored}
        if ingest:
            scores_map = {name: scored[name] for name in ingest}
            ingest_span = None
            if trc is not None:
                ingest_span = trc.start("engine.ingest",
                                        parent=round_span.context,
                                        attrs={"streams": len(ingest)})
            try:
                if ingest_span is not None:
                    events = self.backend.ingest(
                        ingest, scores=scores_map,
                        trace=ingest_span.context)
                else:
                    events = self.backend.ingest(ingest, scores=scores_map)
            except Exception as exc:  # noqa: BLE001 — typed to caller
                if ingest_span is not None:
                    ingest_span.finish(outcome="error")
                self.metrics.counter("engine.errors").inc()
                for name in ingest:
                    outcomes[name] = RoundResult(
                        request=by_stream[name], kind="error",
                        code="internal",
                        message=f"serving round failed: "
                                f"{type(exc).__name__}: {exc}")
            else:
                if ingest_span is not None:
                    done = ingest_span.finish(outcome="ok")
                    self.metrics.histogram("engine.stage.ingest") \
                        .observe(done.dur)
                    for name in ingest:
                        if by_stream[name].trace is not None:
                            _stage_echo(name, by_stream[name], done)
                for name, event in events.items():
                    outcomes[name] = RoundResult(
                        request=by_stream[name], kind="event", event=event)
        for name, request in by_stream.items():
            if request.op == "scores" and name in scored:
                outcomes[name] = RoundResult(
                    request=request, kind="scores", scores=scored[name])
        return [outcomes.get(request.stream) or RoundResult(
                    request=request, kind="error", code="internal",
                    message=f"round produced no result for stream "
                            f"{request.stream!r}")
                for request in wave]

    def _execute_wave_fused(self, wave: list[EngineRequest],
                            fused) -> list[RoundResult]:
        """One wave through the backend's fused ``serve_round`` scatter.

        Failure contract mirrors the split path exactly: a *clean*
        per-shard score failure (the shard ingested nothing) comes back
        as ``unscored`` streams, which re-run through the split
        per-entry isolation; a *raised* fused call is indeterminate for
        ingest — some shards may have applied their slice before
        another died — so ingest requests get the same typed
        ``internal`` error a raised split ingest produces, while
        stateless ``scores`` requests are retried solo.
        """
        outcomes: dict[str, RoundResult] = {}
        by_stream = {request.stream: request for request in wave}
        arrivals = {name: request.windows
                    for name, request in by_stream.items()}
        ingest_names = [name for name, request in by_stream.items()
                        if request.op == "ingest"]
        try:
            scored, events, unscored = fused(arrivals, ingest_names)
        except Exception as exc:  # noqa: BLE001 — typed to caller
            self.metrics.counter("engine.errors").inc()
            for name, request in by_stream.items():
                if request.op == "ingest":
                    outcomes[name] = RoundResult(
                        request=request, kind="error", code="internal",
                        message=f"serving round failed: "
                                f"{type(exc).__name__}: {exc}")
                else:
                    try:
                        solo = self.backend.score(
                            {name: request.windows})[name]
                    except Exception as solo_exc:  # noqa: BLE001
                        outcomes[name] = RoundResult(
                            request=request, kind="error",
                            code="bad_request",
                            message=f"windows for stream {name!r} failed "
                                    f"to score: "
                                    f"{type(solo_exc).__name__}: "
                                    f"{solo_exc}")
                    else:
                        outcomes[name] = RoundResult(
                            request=request, kind="scores", scores=solo)
            return [outcomes[request.stream] for request in wave]
        for name, event in events.items():
            outcomes[name] = RoundResult(
                request=by_stream[name], kind="event", event=event)
        for name, request in by_stream.items():
            if request.op == "scores" and name in scored:
                outcomes[name] = RoundResult(
                    request=request, kind="scores", scores=scored[name])
        if unscored:
            self._isolate_unscored(unscored, by_stream, outcomes)
        return [outcomes.get(request.stream) or RoundResult(
                    request=request, kind="error", code="internal",
                    message=f"round produced no result for stream "
                            f"{request.stream!r}")
                for request in wave]

    def _isolate_unscored(self, unscored: list[str],
                          by_stream: dict[str, EngineRequest],
                          outcomes: dict[str, RoundResult]) -> None:
        """Per-entry isolation for streams whose shard's coalesced score
        failed cleanly: solo-score each (bit-identical — batch
        composition never changes scores), then split-ingest the
        survivors with their precomputed slices."""
        solo_scored: dict[str, np.ndarray] = {}
        for name in unscored:
            request = by_stream[name]
            try:
                solo_scored[name] = self.backend.score(
                    {name: request.windows})[name]
            except Exception as exc:  # noqa: BLE001 — typed to caller
                outcomes[name] = RoundResult(
                    request=request, kind="error", code="bad_request",
                    message=f"windows for stream {name!r} failed to "
                            f"score: {type(exc).__name__}: {exc}")
        retry = {name: by_stream[name].windows for name in solo_scored
                 if by_stream[name].op == "ingest"}
        if retry:
            try:
                events = self.backend.ingest(
                    retry,
                    scores={name: solo_scored[name] for name in retry})
            except Exception as exc:  # noqa: BLE001 — typed to caller
                self.metrics.counter("engine.errors").inc()
                for name in retry:
                    outcomes[name] = RoundResult(
                        request=by_stream[name], kind="error",
                        code="internal",
                        message=f"serving round failed: "
                                f"{type(exc).__name__}: {exc}")
            else:
                for name, event in events.items():
                    outcomes[name] = RoundResult(
                        request=by_stream[name], kind="event", event=event)
        for name in solo_scored:
            if by_stream[name].op == "scores":
                outcomes[name] = RoundResult(
                    request=by_stream[name], kind="scores",
                    scores=solo_scored[name])

    # ------------------------------------------------------------------
    # Metrics / introspection
    # ------------------------------------------------------------------
    def _observe_round(self, elapsed: float, streams: int,
                       windows: int) -> None:
        self.rounds += 1
        self.metrics.counter("engine.rounds").inc()
        self.metrics.counter("engine.windows").inc(windows)
        self.metrics.histogram("engine.round_latency").observe(elapsed)
        self.metrics.gauge("engine.last_round_streams").set(streams)
        self.metrics.gauge("engine.last_round_windows").set(windows)

    def _update_queue_gauge(self) -> None:  # repro: lock-held
        self.metrics.gauge("engine.queue_depth").set(
            sum(len(queue) for queue in self._queues.values()))

    def stats(self, concurrent: bool = False) -> dict:
        """Engine-level summary for the ``stats`` op and the benchmark
        payloads: backend/policy names, rounds, queue depths, and the
        backend's coalescing counters (windows per forward).

        With ``concurrent=True`` (a caller on a different thread than
        the round runner, e.g. the gateway's ``stats`` op) backends whose
        counters aren't safe to read mid-round — the sharded backend's
        go over the worker pipes — are skipped instead of queried.
        """
        # The root package only defines metadata (no subpackage imports),
        # so this upward import cannot cycle; deferred anyway so the
        # engine module stays importable mid-bootstrap.
        from .. import __version__
        out = {
            "backend": self.backend.name,
            "policy": self.policy.name,
            "rounds": self.rounds,
            "queued": self.queued_depths(),
            "version": __version__,
            "started_at": self._started_monotonic,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
        }
        # Transport counters (sharded shm rings vs pipe fallbacks) are
        # plain parent-side attribute reads — safe from any thread, so
        # they're reported even on concurrent snapshots.
        transport = getattr(self.backend, "transport_stats", None)
        if transport is not None:
            info = transport()
            if info:
                out["transport"] = info
        if self.pipeline:
            with self._lock:
                backlog = self._commit_backlog_locked()
                queued_batches = len(self._commit_queue)
            out["pipeline"] = {
                "enabled": True,
                "commit_backlog": backlog,
                "committer_queue_depth": queued_batches,
                "commit_batches": int(
                    self.metrics.counter("engine.commit_batches").value),
            }
            fused = (out.get("transport") or {}).get("fused_rounds")
            if fused is not None:
                out["pipeline"]["fused_rounds"] = fused
        if concurrent and not self.backend.concurrent_safe_stats:
            return out
        batch = self.backend.batch_stats()
        if batch:
            forwards = int(batch.get("batches_run", 0))
            scored = int(batch.get("windows_scored", 0))
            out["coalesce"] = {
                **batch,
                "windows_per_forward": (scored / forwards) if forwards
                else 0.0,
            }
        return out
