"""Execution backends: where a serving round's compute actually runs.

The :class:`~repro.runtime.ServingEngine` round loop is backend-agnostic;
an :class:`ExecutionBackend` supplies the three primitives it composes —
``pull_round`` (gather from backend-owned streams and run one lock-step
round), ``score`` (stateless coalesced scoring), and ``ingest``
(dispatch score slices into deployment monitors).  Two backends ship:

:class:`InlineBackend`
    Single-process execution over a :class:`~repro.serving.DeploymentFleet`'s
    slots and :class:`~repro.serving.MicroBatcher` — the engine's round
    runs on the caller's thread, windows of streams sharing a scoring
    model coalescing into one forward.
:class:`ShardedBackend`
    Multi-process execution over a :class:`~repro.serving.ShardedFleet`'s
    worker pool — arrivals scatter to the owning shards (each shard
    micro-batches its slice concurrently), per-shard results merge back
    in stable stream order.  Inside each worker the shard's own
    ``DeploymentFleet`` runs the very same engine loop, so sharding
    distributes the canonical round rather than duplicating it.

Both backends produce bit-identical scores for identical per-stream
window sequences (shards own disjoint streams and models, and per-shard
coalescing keeps the row-stable GEMM guarantees) — the engine's parity
matrix locks this down for every backend × policy combination.
"""

from __future__ import annotations

import abc

import numpy as np

from .engine import FleetEvent, make_fleet_event
from ..errors import WindowShapeError

__all__ = ["ExecutionBackend", "InlineBackend", "ShardedBackend"]


class ExecutionBackend(abc.ABC):
    """The engine's view of a serving substrate."""

    #: Short name surfaced in ``stats`` payloads and benchmark artifacts.
    name: str = "backend"

    #: Whether :meth:`batch_stats` may be called from a thread other
    #: than the round runner's (plain attribute reads: yes; anything
    #: that talks to worker processes over their pipes: no).
    concurrent_safe_stats: bool = False

    @abc.abstractmethod
    def pull_round(self, batched: bool) -> list[FleetEvent]:
        """Gather every owned stream's next arrival batch and run one
        lock-step round over it (score then ingest); ``[]`` once all
        streams are exhausted."""

    @abc.abstractmethod
    def score(self, arrivals: dict) -> dict[str, np.ndarray]:
        """Stateless coalesced scoring of externally supplied windows;
        no deployment monitor is touched, so a failed or repeated call
        is safe.

        Backends that support tracing accept an optional ``trace``
        keyword (a :class:`repro.obs.TraceContext` to parent their
        internal spans under); the engine only passes it when a tracer
        is attached, so backends without the keyword still work
        untraced.
        """

    @abc.abstractmethod
    def ingest(self, arrivals: dict, scores: dict | None = None,
               batched: bool = True) -> dict[str, FleetEvent]:
        """Dispatch one round of externally supplied windows into the
        owning deployments.  ``scores`` carries precomputed slices (the
        score-then-ingest split); with ``scores=None`` the backend
        scores internally — coalesced when ``batched``, else one
        per-deployment forward each.  Same optional ``trace`` keyword
        contract as :meth:`score`."""

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.TraceRecorder` (or ``None``).

        The default just stores it; backends that execute work in other
        processes override this to relay worker-side spans back into
        the parent recorder."""
        self._tracer = tracer

    def stream_shards(self) -> dict | None:
        """``{stream name: shard index}`` when streams are partitioned
        across workers (for span shard attribution); ``None`` for
        single-process backends."""
        return None

    def batch_stats(self) -> dict | None:
        """Coalescing counters (``batches_run``/``windows_scored``) when
        the backend can report them cheaply; ``None`` otherwise."""
        return None

    def transport_stats(self) -> dict | None:
        """Cross-process transport counters (shared-memory ring traffic,
        pipe fallbacks) when the backend has a transport; ``None``
        otherwise.  Must be cheap and thread-safe — plain attribute
        reads, no worker round-trips — because ``engine.stats()``
        surfaces it on concurrent snapshots too."""
        return None

    def close(self) -> None:
        """Release backend resources (worker processes, sockets)."""


class InlineBackend(ExecutionBackend):
    """Execute rounds in-process over a ``DeploymentFleet``'s slots."""

    name = "inline"
    concurrent_safe_stats = True

    def __init__(self, fleet):
        self._fleet = fleet

    # -- internals -----------------------------------------------------
    def _slots(self):
        return self._fleet._slots

    def _gather(self, arrivals: dict):
        """Validate externally supplied arrivals and order them by slot
        attach order (the order rounds score in)."""
        slots_by_name = self._slots()
        unknown = sorted(set(arrivals) - set(slots_by_name))
        if unknown:
            raise KeyError(f"no stream named {unknown[0]!r} attached")
        slots = [slot for name, slot in slots_by_name.items()
                 if name in arrivals]
        windows = []
        for slot in slots:
            batch = np.asarray(arrivals[slot.name], dtype=np.float64)
            if batch.ndim != 3 or 0 in batch.shape:
                raise WindowShapeError(
                    f"stream {slot.name!r}: expected non-empty "
                    f"(B, T, frame_dim) windows, got shape {batch.shape}")
            windows.append(batch)
        return slots, windows

    def _coalesced(self, slots, windows) -> list[np.ndarray]:
        # Imported here, not at module level: repro.serving's modules
        # import repro.runtime, so the runtime package must not import
        # repro.serving back at import time.
        # repro: allow[layer-dag] the one engine->batcher lazy back-edge
        from ..serving.batcher import ScoreRequest
        return self._fleet.batcher.score(
            [ScoreRequest(slot.deployment.model, batch)
             for slot, batch in zip(slots, windows)])

    # -- ExecutionBackend ----------------------------------------------
    def pull_round(self, batched: bool) -> list[FleetEvent]:
        pulls = []
        for slot in self._slots().values():
            batch = slot.next_batch()
            if batch is not None:
                pulls.append((slot, batch))
        if not pulls:
            return []
        if batched:
            all_scores = self._coalesced(
                [slot for slot, _ in pulls],
                [getattr(batch, "windows", batch) for _, batch in pulls])
        else:
            all_scores = [None] * len(pulls)
        events = []
        for (slot, batch), scores in zip(pulls, all_scores):
            windows = getattr(batch, "windows", batch)
            log = slot.deployment.ingest(windows, scores=scores)
            events.append(make_fleet_event(slot, log, batch))
        return events

    def score(self, arrivals: dict,
              trace=None) -> dict[str, np.ndarray]:
        # ``trace`` is accepted but unused: inline work runs on the
        # engine's thread, so the engine's own stage spans already cover
        # it exactly.
        slots, windows = self._gather(arrivals)
        if not slots:
            return {}
        all_scores = self._coalesced(slots, windows)
        return {slot.name: scores
                for slot, scores in zip(slots, all_scores)}

    def ingest(self, arrivals: dict, scores: dict | None = None,
               batched: bool = True, trace=None) -> dict[str, FleetEvent]:
        slots, windows = self._gather(arrivals)
        if not slots:
            return {}
        if scores is not None:
            missing = [slot.name for slot in slots if slot.name not in scores]
            if missing:
                raise KeyError(f"no precomputed scores for stream "
                               f"{missing[0]!r}")
            all_scores = [np.asarray(scores[slot.name], dtype=np.float64)
                          for slot in slots]
        elif batched:
            all_scores = self._coalesced(slots, windows)
        else:
            all_scores = [None] * len(slots)
        events = {}
        for slot, batch, batch_scores in zip(slots, windows, all_scores):
            log = slot.deployment.ingest(batch, scores=batch_scores)
            events[slot.name] = make_fleet_event(slot, log)
        return events

    def batch_stats(self) -> dict:
        batcher = self._fleet.batcher
        return {"batches_run": batcher.batches_run,
                "windows_scored": batcher.windows_scored}


class ShardedBackend(ExecutionBackend):
    """Execute rounds across a ``ShardedFleet``'s worker processes."""

    name = "sharded"

    def __init__(self, fleet):
        self._fleet = fleet
        self._tracer = None

    def pull_round(self, batched: bool) -> list[FleetEvent]:
        # Every shard steps concurrently (each worker's fleet runs the
        # same engine loop over its own slots); events merge back in
        # stable (attach-order) stream order, matching the inline
        # backend's event order exactly.
        per_shard = self._fleet._broadcast(("step", batched))
        by_stream = {event.stream: event
                     for events in per_shard for event in events}
        return [by_stream[name] for name in self._fleet._order
                if name in by_stream]

    def score(self, arrivals: dict,
              trace=None) -> dict[str, np.ndarray]:
        return self._fleet._scatter(
            "score_only", arrivals,
            trace=trace if self._tracer is not None else None,
            span_sink=self._record_worker_spans)

    def ingest(self, arrivals: dict, scores: dict | None = None,
               batched: bool = True, trace=None) -> dict[str, FleetEvent]:
        return self._fleet._scatter(
            "ingest_round", arrivals, extra=(batched, scores),
            trace=trace if self._tracer is not None else None,
            span_sink=self._record_worker_spans)

    def serve_round(self, arrivals: dict,
                    ingest: list[str]) -> tuple[dict, dict, list[str]]:
        """Fused score+ingest wave: one scatter round-trip per shard
        instead of the split score/ingest pair.  The engine uses this on
        untraced rounds only — traced rounds keep the split commands so
        per-stage spans stay exact — and falls back to the split
        per-entry isolation path for any ``unscored`` streams.  Scores
        are bit-identical either way (same per-shard batch
        composition)."""
        return self._fleet.serve_round(arrivals, ingest)

    def _record_worker_spans(self, payloads) -> None:
        """Land shard-worker span dicts in the parent recorder."""
        tracer = self._tracer
        if tracer is not None and payloads:
            tracer.record_dicts(payloads)

    def stream_shards(self) -> dict | None:
        if self._fleet._closed:
            return None
        return self._fleet.assignment

    def batch_stats(self) -> dict | None:
        if self._fleet._closed:
            return None
        stats = self._fleet.batcher_stats()
        return {"batches_run": stats["batches_run"],
                "windows_scored": stats["windows_scored"]}

    def transport_stats(self) -> dict | None:
        # Parent-side counters only — no worker round-trip, so this is
        # safe on concurrent stats snapshots (unlike batch_stats).
        if self._fleet._closed:
            return None
        return self._fleet.transport_stats()

    def close(self) -> None:
        self._fleet.close()
