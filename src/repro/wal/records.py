"""Typed WAL records: what the durability log actually remembers.

Each record is a JSON-safe dict with a ``"kind"`` discriminator and the
``"seq"`` the log assigned at append time.  Five kinds exist:

``ingest``
    One accepted ingest request: stream name + its ``(B, T, frame_dim)``
    arrival windows.  The windows stay a float64 ndarray in the record;
    the log serializes them through the shared binary body codec
    (:mod:`repro.utils.binframe` — raw little-endian float64 buffers,
    same wire format as the gateway's binary frames) so replayed
    windows score to the very same bits.  Logs written by older
    versions carry base64 dicts instead; :func:`record_windows`
    decodes both.
``skip``
    Cancels one earlier ``ingest`` record (by its seq): the request was
    accepted and logged but never reached a deployment — it expired on
    its deadline or failed to score — so replay must not apply it.
``attach`` / ``detach``
    A stream joining or leaving the fleet mid-run.  The attach body is
    one slot entry in the fleet-checkpoint format (deployment payload
    with its model, stream config, cursor), the same self-describing
    shape :class:`~repro.serving.ShardedFleet` ships over worker pipes.
``snapshot``
    A whole-fleet checkpoint embedded in the log: the fleet payload
    (``fleet.to_dict()`` — the PR 3 self-describing checkpoint format),
    the :class:`~repro.serving.FleetInfra` seeds needed to rebuild it in
    a fresh process, and the per-stream applied watermark (the highest
    ingest seq each stream had dispatched into its deployment when the
    snapshot was taken).  Recovery rebuilds from the latest snapshot and
    replays only ingest records past each stream's watermark.

Records deliberately stay plain dicts on the wire (the log frames each
one as a JSON or binary body); the constructors and
:func:`validate_record` here are the single place their shapes are
defined.
"""

from __future__ import annotations

import numpy as np

from ..errors import RecoveryError
from ..utils.serialization import decode_array

__all__ = ["RECORD_KINDS", "ingest_record", "skip_record", "attach_record",
           "detach_record", "snapshot_record", "record_windows",
           "validate_record"]

RECORD_KINDS = ("ingest", "skip", "attach", "detach", "snapshot")

#: Required non-``seq`` fields per kind (shape validation for replay).
_REQUIRED = {
    "ingest": ("stream", "windows"),
    "skip": ("target",),
    "attach": ("entry",),
    "detach": ("stream",),
    "snapshot": ("fleet", "infra", "applied"),
}


def ingest_record(stream: str, windows: np.ndarray) -> dict:
    """One accepted ingest request's durable form.

    The windows ride as a float64 ndarray; the log picks their on-disk
    encoding (binary body by default, base64-in-JSON under
    ``WalConfig(codec="json")``).
    """
    return {"kind": "ingest", "stream": stream,
            "windows": np.ascontiguousarray(windows, dtype=np.float64)}


def record_windows(record: dict) -> np.ndarray:
    """An ``ingest`` record's windows (bit-exact round trip).

    Handles both encodings: an ndarray (binary-codec log, or a record
    that never left this process) and the legacy base64 dict written by
    pre-binary versions — old logs replay unchanged.
    """
    windows = record["windows"]
    if isinstance(windows, np.ndarray):
        return np.asarray(windows, dtype=np.float64)
    return decode_array(windows)


def skip_record(target_seq: int) -> dict:
    """Cancel the ``ingest`` record at ``target_seq`` during replay."""
    return {"kind": "skip", "target": int(target_seq)}


def attach_record(entry: dict) -> dict:
    """A stream joining the fleet; ``entry`` is one fleet-checkpoint slot
    entry (name, deployment payload with model, stream config, cursor)."""
    return {"kind": "attach", "entry": entry}


def detach_record(stream: str) -> dict:
    """A stream leaving the fleet."""
    return {"kind": "detach", "stream": stream}


def snapshot_record(fleet_payload: dict, infra_payload: dict,
                    applied: dict[str, int]) -> dict:
    """A whole-fleet checkpoint embedded in the log.

    ``applied`` maps stream name → highest ingest-record seq whose
    windows that stream's deployment had consumed when the snapshot was
    taken.  Because the engine preserves per-stream FIFO, the applied
    seqs of a stream are always a prefix of its logged seqs — one
    watermark per stream fully describes what the snapshot contains.
    """
    return {"kind": "snapshot", "fleet": fleet_payload,
            "infra": dict(infra_payload),
            "applied": {name: int(seq) for name, seq in applied.items()}}


def validate_record(record: dict) -> str:
    """Check a decoded record's shape; returns its kind.

    Raises :class:`~repro.errors.RecoveryError` on an unknown kind or a
    missing field — a structurally valid frame (length + CRC passed)
    holding a record replay cannot interpret means the log was written
    by an incompatible version, which silent skipping would turn into
    silently wrong recovered state.
    """
    kind = record.get("kind")
    if kind not in _REQUIRED:
        raise RecoveryError(
            f"unknown WAL record kind {kind!r} at seq "
            f"{record.get('seq')!r}; this log was written by an "
            f"incompatible version (known kinds: {', '.join(RECORD_KINDS)})")
    missing = [field for field in ("seq", *_REQUIRED[kind])
               if field not in record]
    if missing:
        raise RecoveryError(
            f"WAL {kind!r} record at seq {record.get('seq')!r} is missing "
            f"required field(s): {', '.join(missing)}")
    return kind
