"""repro.wal — durable write-ahead ingestion log with crash recovery.

Serving state in this repo was only as durable as its last explicit
checkpoint: kill a gateway mid-run and every acked ingest since the last
``save()`` is gone.  This package closes that gap with a classic
write-ahead log:

* :class:`WriteAheadLog` (:mod:`~repro.wal.log`) — append-only segmented
  log of CRC32-framed JSON records with group-commit fsync batching,
  segment rotation, and torn-tail repair on open.
* :mod:`~repro.wal.records` — the typed record shapes: accepted ingests
  (bit-exact window codec), skip markers, stream attach/detach, and
  snapshots that embed the self-describing fleet checkpoint.
* :class:`WalDurability` (:mod:`~repro.wal.durability`) — the hook a
  :class:`~repro.runtime.ServingEngine` calls to log accepted requests
  *before* they become schedulable and to fsync once per round before
  any ack resolves (log-before-schedule, ack-after-append).
* :class:`SnapshotManager` / :class:`SnapshotPolicy`
  (:mod:`~repro.wal.snapshot`) — periodic snapshot-then-truncate so
  replay cost stays bounded by rounds-since-snapshot, not uptime.
* :func:`recover_fleet` (:mod:`~repro.wal.recovery`) — latest snapshot +
  full-log watermark replay, rebuilding per-stream state bit-identically
  as either an inline or a sharded fleet.

Layering: ``repro.wal`` sits beside :mod:`repro.serving` (recovery
imports it); the runtime engine only ever sees the duck-typed
durability hook, and :mod:`repro.gateway` / the CLI wire the two
together.
"""

from .durability import WalDurability, infra_for_fleet
from .log import FRAME_HEADER, SegmentInfo, WalConfig, WriteAheadLog
from .records import (RECORD_KINDS, attach_record, detach_record,
                      ingest_record, record_windows, skip_record,
                      snapshot_record, validate_record)
from .recovery import RecoveryReport, read_records, recover_fleet
from .snapshot import SnapshotManager, SnapshotPolicy

__all__ = [
    "FRAME_HEADER",
    "RECORD_KINDS",
    "RecoveryReport",
    "SegmentInfo",
    "SnapshotManager",
    "SnapshotPolicy",
    "WalConfig",
    "WalDurability",
    "WriteAheadLog",
    "attach_record",
    "detach_record",
    "infra_for_fleet",
    "ingest_record",
    "read_records",
    "record_windows",
    "recover_fleet",
    "skip_record",
    "snapshot_record",
    "validate_record",
]
