"""Automatic snapshot-then-truncate: keeping the log short.

Replay cost grows with the log, so a durable fleet periodically embeds
a whole-fleet checkpoint (the PR 3 self-describing ``fleet.to_dict()``
payload) as a ``snapshot`` record and then deletes the segments its
watermark makes redundant.  :class:`SnapshotPolicy` decides *when*
(rounds served or log bytes accumulated since the last snapshot);
:class:`SnapshotManager` performs the write:

1. rotate — the snapshot starts a fresh segment, so everything before
   it forms whole deletable units;
2. append the snapshot record with an immediate fsync (a snapshot that
   is not durable must never justify deleting the records it covers);
3. truncate — delete closed segments every record of which is either
   applied (covered by the snapshot's per-stream watermark) or
   abandoned (skipped), i.e. all records below the lowest seq still
   *queued* in the engine.  Queued-but-unserved requests were logged
   before the snapshot but are not in it; cutting at the snapshot's own
   seq would silently drop them, which is exactly the loss this
   subsystem exists to prevent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .log import WriteAheadLog
from .records import snapshot_record
from ..errors import ConfigError

__all__ = ["SnapshotPolicy", "SnapshotManager"]


@dataclass(frozen=True)
class SnapshotPolicy:
    """When to snapshot: after ``every_rounds`` served rounds or once
    ``max_log_bytes`` of log accumulate since the last snapshot,
    whichever comes first (``None`` disables that trigger)."""

    every_rounds: int | None = 64
    max_log_bytes: int | None = 16 * 1024 * 1024

    def __post_init__(self):
        if self.every_rounds is not None and self.every_rounds < 1:
            raise ConfigError("every_rounds must be >= 1")
        if self.max_log_bytes is not None and self.max_log_bytes < 1:
            raise ConfigError("max_log_bytes must be >= 1")


class SnapshotManager:
    """Drives snapshot-then-truncate over one :class:`WriteAheadLog`."""

    def __init__(self, wal: WriteAheadLog,
                 policy: SnapshotPolicy | None = None):
        self.wal = wal
        self.policy = policy or SnapshotPolicy()
        self.snapshots_taken = 0
        self._rounds_at_last = 0
        self._bytes_at_last = wal.size_bytes

    def due(self, rounds: int) -> bool:
        """Whether the policy calls for a snapshot at ``rounds`` served
        rounds (and the log's current size)."""
        policy = self.policy
        if policy.every_rounds is not None \
                and rounds - self._rounds_at_last >= policy.every_rounds:
            return True
        return (policy.max_log_bytes is not None
                and self.wal.size_bytes - self._bytes_at_last
                >= policy.max_log_bytes)

    def snapshot(self, fleet_payload: dict, infra_payload: dict,
                 applied: dict[str, int], rounds: int,
                 pending_low=None) -> int:
        """Write one snapshot record and truncate what it covers.

        ``pending_low`` is the lowest WAL seq still queued in the engine
        (``None`` when the queues are empty): segments at or above it
        must survive truncation because their ingest records have not
        been applied yet.  Pass a zero-arg callable (e.g.
        ``engine.min_pending_wal_seq``) rather than a pre-read value
        whenever admission runs concurrently: it is evaluated *after*
        the snapshot record is durably appended, so every ingest whose
        seq falls below the snapshot's — appended under the engine's
        admission lock before it was enqueued — is visible to the read
        and bounds truncation.  A value read before the append races
        with admission: a request logged between the read and
        ``truncate_below`` would sit in a just-rotated closed segment
        and be deleted, losing an eventually-acked request.  Returns
        the snapshot record's seq.
        """
        start = time.perf_counter()
        self.wal.rotate()
        seq = self.wal.append(
            snapshot_record(fleet_payload, infra_payload, applied),
            sync=True)
        low = pending_low() if callable(pending_low) else pending_low
        cutoff = seq if low is None else min(low, seq)
        self.wal.truncate_below(cutoff)
        self.snapshots_taken += 1
        self._rounds_at_last = rounds
        self._bytes_at_last = self.wal.size_bytes
        self.wal.metrics.counter("wal.snapshots").inc()
        self.wal.metrics.histogram("wal.snapshot_latency").observe(
            time.perf_counter() - start)
        return seq
