"""The engine's durability hook: log before schedule, ack after fsync.

:class:`WalDurability` is the object a
:class:`~repro.runtime.ServingEngine` calls (duck-typed; the runtime
layer never imports this package) to make queued serving durable:

* :meth:`record_submit` — called inside ``engine.submit``'s critical
  section *after* admission control passes and *before* the request
  joins its queue, so exactly the accepted requests are logged (a
  backpressure-rejected request never touches the log) and per-stream
  log order equals per-stream queue order — which the engine's FIFO
  invariant turns into per-stream ingest order, the property replay
  depends on.
* :meth:`record_applied` / :meth:`record_skip` — called as each round's
  results materialize: applied seqs advance the per-stream watermark
  snapshots store; a request that errored (expired deadline, windows
  that cannot score) gets a ``skip`` record so replay will not apply
  what the live engine never did.
* :meth:`commit` — called at the end of every ``run_round`` *before*
  the results reach any caller: one group-commit fsync covering every
  request the round served (ack-after-append), then an automatic
  snapshot-then-truncate when the :class:`~repro.wal.SnapshotPolicy`
  says one is due.

Construction writes a genesis snapshot (an empty log cannot be
recovered without one), and refuses a WAL directory that already holds
records — silently appending a fresh fleet's log onto a crashed fleet's
history would make both unrecoverable; run ``repro recover`` first.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import DurabilityError
from ..metrics import MetricsRegistry
from .log import WalConfig, WriteAheadLog
from .records import (attach_record, detach_record, ingest_record,
                      skip_record)
from .snapshot import SnapshotManager, SnapshotPolicy

__all__ = ["WalDurability", "infra_for_fleet"]


def infra_for_fleet(fleet):
    """The :class:`~repro.serving.FleetInfra` that rebuilds ``fleet``'s
    shared infrastructure in a fresh process: a sharded fleet carries
    its own, an inline fleet derives one from its first slot's stream
    generator (the same rule :meth:`ShardedFleet.from_fleet` uses)."""
    from ..serving import FleetInfra
    infra = getattr(fleet, "infra", None)
    if infra is not None:
        return infra
    slots = getattr(fleet, "slots", None)
    if not slots:
        raise DurabilityError(
            "cannot derive FleetInfra for an empty fleet; attach at least "
            "one stream before enabling durability (or pass infra= "
            "explicitly)")
    generator = slots[0].stream.generator
    return FleetInfra.from_generator(generator.model.seed, generator)


class WalDurability:
    """WAL + snapshot lifecycle bound to one live fleet.

    Thread-safety follows the engine's: :meth:`record_submit` runs under
    the engine's admission lock (one appender at a time in submit
    order), while :meth:`record_applied`/:meth:`record_skip`/
    :meth:`commit` run on the single round-runner thread — or, in the
    engine's pipelined mode, on its single committer thread (with
    :meth:`flush_only` in place of :meth:`commit`); either way there is
    exactly one committing thread, and the log's own lock covers the
    cross-thread file access.  :meth:`snapshot` always runs on the round
    thread: the pipelined engine defers a due snapshot (reported by
    :meth:`snapshot_due`) to the gap between rounds, behind a full
    commit drain, because snapshotting walks live fleet state.
    """

    def __init__(self, fleet, directory: str | Path,
                 config: WalConfig | None = None,
                 policy: SnapshotPolicy | None = None,
                 metrics: MetricsRegistry | None = None,
                 infra=None, tracer=None):
        self.fleet = fleet
        self.wal = WriteAheadLog(directory, config=config, metrics=metrics,
                                 tracer=tracer)
        if self.wal.next_seq > 0:
            self.wal.close()
            raise DurabilityError(
                f"WAL directory {Path(directory)} already contains "
                f"records; run 'repro recover {Path(directory)}' to rebuild "
                "that fleet (and --save its checkpoint), or point the "
                "durable fleet at a fresh directory")
        self.infra = infra if infra is not None else infra_for_fleet(fleet)
        self.snapshots = SnapshotManager(self.wal, policy)
        self._applied: dict[str, int] = {}
        self._closed = False
        # Genesis: an empty log has nothing for recovery to rebuild from.
        self.snapshots.snapshot(self.fleet.to_dict(),
                                self.infra.to_payload(),
                                self._applied, rounds=0)

    # ------------------------------------------------------------------
    # Engine hook surface (duck-typed; see ServingEngine)
    # ------------------------------------------------------------------
    def record_submit(self, request) -> int:
        """Log one accepted ingest request; returns its WAL seq."""
        return self.wal.append(ingest_record(request.stream,
                                             request.windows))

    def record_applied(self, stream: str, seq: int) -> None:
        """Advance the stream's applied watermark (in-memory only — the
        watermark is persisted by the next snapshot; until then replay
        re-derives state by re-applying, which is exactly its job)."""
        current = self._applied.get(stream, -1)
        if seq > current:
            self._applied[stream] = seq

    def record_skip(self, seq: int) -> None:
        """Log that the ingest record at ``seq`` was accepted but never
        applied (expired or unscoreable) so replay skips it too."""
        self.wal.append(skip_record(seq))

    def record_attach(self, name: str, deployment, stream,
                      cursor: int = 0, done: bool = False) -> int:
        """Log a stream joining the fleet (call alongside ``fleet.add``).

        The entry is self-contained — model inlined rather than
        deduplicated like the checkpoint format — so replay can rebuild
        the slot without cross-record references.  Synced immediately:
        membership changes are rare and must not ride a group commit
        that may never flush.
        """
        from ..api.config import config_to_dict
        from ..gnn.checkpoint import deployment_to_dict
        entry = {
            "name": name,
            "model": deployment_to_dict(deployment.model),
            "deployment": deployment.to_dict(include_model=False),
            "stream_config": config_to_dict(stream.config),
            "cursor": int(cursor),
            "done": bool(done),
        }
        return self.wal.append(attach_record(entry), sync=True)

    def record_detach(self, stream: str) -> int:
        """Log a stream leaving the fleet (call alongside
        ``fleet.remove``); synced immediately, like attach."""
        return self.wal.append(detach_record(stream), sync=True)

    def commit(self, engine) -> None:
        """End-of-round barrier: fsync everything this round logged
        (before any ack leaves the building), then snapshot-and-truncate
        if the policy says it is time.

        A traced engine exposes the round's durability span context as
        ``engine.durability_trace`` for the duration of the commit, so
        the flush's ``wal.fsync`` span parents under it."""
        self.wal.flush(
            trace_parent=getattr(engine, "durability_trace", None))
        if self.snapshots.due(engine.rounds):
            self.snapshot(engine)

    def flush_only(self, trace_parent=None) -> None:
        """The pipelined engine's commit barrier: the group-commit fsync
        *without* the snapshot check.  Safe from the committer thread —
        it touches only the log (which has its own lock) — whereas a
        snapshot walks fleet state the next round may already be
        mutating; the engine polls :meth:`snapshot_due` and takes the
        snapshot itself on the round thread."""
        self.wal.flush(trace_parent=trace_parent)

    def snapshot_due(self, rounds: int) -> bool:
        """Whether the snapshot policy wants a snapshot after ``rounds``
        engine rounds (cheap, lock-free; see :meth:`flush_only`)."""
        return self.snapshots.due(rounds)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, engine=None) -> int:
        """Embed a whole-fleet checkpoint in the log and truncate the
        segments it makes redundant; returns the snapshot's seq.

        Must run on the round-runner thread (fleet state is only mutated
        by rounds, so between rounds it is stable).  ``engine`` supplies
        the lowest still-queued WAL seq, which bounds truncation —
        logged-but-unserved requests must survive.  The bound is passed
        as a callable so the manager reads it *after* the snapshot
        record is appended: admission holds the engine lock across
        append+enqueue, so a post-append read sees every ingest whose
        seq precedes the snapshot's, closing the window in which a
        concurrently admitted request could be truncated away.
        """
        pending_low = (engine.min_pending_wal_seq
                       if engine is not None else None)
        rounds = engine.rounds if engine is not None else 0
        return self.snapshots.snapshot(self.fleet.to_dict(),
                                       self.infra.to_payload(),
                                       dict(self._applied),
                                       rounds=rounds,
                                       pending_low=pending_low)

    @property
    def applied_watermarks(self) -> dict[str, int]:
        return dict(self._applied)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, engine=None) -> None:
        """Final flush (and a parting snapshot when the fleet is still
        alive, so a clean shutdown leaves a compact one-snapshot log),
        then close the log.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self.snapshot(engine)
        except Exception:  # noqa: BLE001 — the fleet may already be torn
            # down (closed shard workers); the flushed log alone is
            # enough for recovery, so never let shutdown fail here.
            try:
                self.wal.flush()
            except DurabilityError:
                pass
        self.wal.close()
