"""The append-only segmented write-ahead log.

:class:`WriteAheadLog` owns a directory of numbered segment files
(``00000001.wal``, ``00000002.wal``, ...) and appends CRC32-framed
records to the highest one.  Each frame is::

    [u32 payload length][u32 crc32(payload)][payload bytes]

little-endian, with the payload being one record dict (see
:mod:`repro.wal.records`) as either UTF-8 JSON or — when the record
carries ndarray fields and the log's codec is ``"binary"`` (the
default) — a :mod:`repro.utils.binframe` binary body, the same raw
little-endian float64 format the gateway's wire frames use.  The two
are distinguished per frame by the binary magic bytes, so one log may
mix them freely: old base64-JSON logs replay unchanged, and a log
reopened under a different codec keeps appending without conversion.
Sequence numbers are assigned at append time, strictly increasing
across segments and across process restarts.

Durability is group-committed: ``append`` buffers through the OS and
only fsyncs when ``fsync_batch`` appends have accumulated or the oldest
unflushed append is older than ``fsync_interval_ms`` (checked at append
time — this is a batching bound, not a timer); ``flush()`` forces the
fsync, and the serving engine calls it once per round *before* any
request is acknowledged, so an acked request is always on disk (one
fsync amortized over every request the round served).

Opening a log repairs its tail: a crash can tear the final frame (short
header, short payload, or a CRC mismatch from a partial page write), so
``open`` scans the last segment and truncates it back to the longest
valid prefix.  A bad frame anywhere *except* the final segment's tail is
not a torn write — appends only move forward — so it raises
:class:`~repro.errors.WalCorruptionError` instead of silently dropping
history.

Segments rotate at ``max_segment_bytes``; :meth:`truncate_below`
deletes whole closed segments whose records all precede a given seq,
which is how snapshot-then-truncate reclaims the log (see
:mod:`repro.wal.snapshot`).
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from threading import Lock

import numpy as np

from ..errors import ConfigError, DurabilityError, WalCorruptionError
from ..metrics import MetricsRegistry
from ..utils import binframe
from ..utils.serialization import encode_array, fsync_directory

__all__ = ["WalConfig", "SegmentInfo", "WriteAheadLog", "FRAME_HEADER"]

#: ``[u32 length][u32 crc32]`` little-endian frame header.
FRAME_HEADER = struct.Struct("<II")

_SEGMENT_SUFFIX = ".wal"


@dataclass(frozen=True)
class WalConfig:
    """Write-ahead log tuning knobs.

    ``fsync_batch`` / ``fsync_interval_ms`` shape group commit: an
    append fsyncs immediately once ``fsync_batch`` appends are pending
    or the oldest pending append is ``fsync_interval_ms`` old; between
    those bounds appends ride the OS buffer until the next ``flush()``
    (the engine flushes once per round, before acks go out).

    ``codec`` picks how records with ndarray fields (ingest windows)
    hit the disk: ``"binary"`` (default) frames them as raw float64
    binary bodies, ``"json"`` as base64-in-JSON — the format pre-binary
    versions wrote.  Reading is codec-blind either way.
    """

    fsync_batch: int = 64
    fsync_interval_ms: float = 50.0
    max_segment_bytes: int = 4 * 1024 * 1024
    codec: str = "binary"

    def __post_init__(self):
        if self.fsync_batch < 1:
            raise ConfigError("fsync_batch must be >= 1")
        if self.fsync_interval_ms < 0:
            raise ConfigError("fsync_interval_ms must be >= 0")
        if self.max_segment_bytes < 1024:
            raise ConfigError("max_segment_bytes must be >= 1024")
        if self.codec not in ("binary", "json"):
            raise ConfigError(f"codec must be 'binary' or 'json', "
                             f"got {self.codec!r}")


@dataclass
class SegmentInfo:
    """One segment file's index entry (maintained in memory)."""

    index: int
    path: Path
    first_seq: int | None = None   # None: no records yet
    last_seq: int | None = None
    size: int = 0


def _segment_path(directory: Path, index: int) -> Path:
    return directory / f"{index:08d}{_SEGMENT_SUFFIX}"


def _read_frames(path: Path):
    """Yield ``(offset, payload_bytes, valid)`` for every frame in a
    segment; the final yield may be ``valid=False`` with ``payload=None``
    (torn header/payload or CRC mismatch), after which iteration stops."""
    data = path.read_bytes()
    offset = 0
    total = len(data)
    while offset < total:
        if offset + FRAME_HEADER.size > total:
            yield offset, None, False
            return
        length, crc = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if end > total:
            yield offset, None, False
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            yield offset, None, False
            return
        yield offset, payload, True
        offset = end


class WriteAheadLog:
    """An append-only, segmented, CRC-framed record log (thread-safe).

    ``append``/``flush`` may be called from different threads (the
    gateway admits on the event loop while the round runner flushes);
    one internal lock serializes all file access.
    """

    def __init__(self, directory: str | Path, config: WalConfig | None = None,
                 metrics: MetricsRegistry | None = None, tracer=None):
        self.directory = Path(directory)
        self.config = config or WalConfig()
        self.metrics = metrics or MetricsRegistry()
        # Optional repro.obs.TraceRecorder: group-commit fsyncs become
        # ``wal.fsync`` spans (parented under the committing round's
        # durability span when flush() is handed one).
        self.tracer = tracer
        self._lock = Lock()
        self._segments: list[SegmentInfo] = []
        self._file = None              # repro: guarded-by[_lock]
        self._next_seq = 0
        self._pending = 0              # appends since last fsync; repro: guarded-by[_lock]
        self._oldest_pending = 0.0     # first's perf_counter; repro: guarded-by[_lock]
        self._closed = False           # repro: guarded-by[_lock]
        self.repaired_bytes = 0        # torn tail truncated at open
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise DurabilityError(
                f"cannot create WAL directory {self.directory}: {exc}")
        self._open_segments()
        self._update_gauges()

    # ------------------------------------------------------------------
    # Open / repair
    # ------------------------------------------------------------------
    def _open_segments(self) -> None:  # repro: lock-held
        paths = sorted(self.directory.glob(f"*{_SEGMENT_SUFFIX}"))
        try:
            indices = [int(path.stem) for path in paths]
        except ValueError as exc:
            raise DurabilityError(
                f"non-numeric segment file name in {self.directory}: {exc}")
        for position, (index, path) in enumerate(zip(indices, paths)):
            info = SegmentInfo(index=index, path=path)
            is_last = position == len(paths) - 1
            valid_end = 0
            for offset, payload, valid in _read_frames(path):
                if not valid:
                    if not is_last:
                        raise WalCorruptionError(
                            f"segment {path.name} has a truncated or "
                            f"CRC-invalid frame at offset {offset} but is "
                            f"not the final segment; the log's history is "
                            f"damaged (a torn write can only ever be at "
                            f"the final segment's tail)")
                    torn = path.stat().st_size - offset
                    with path.open("r+b") as handle:
                        handle.truncate(offset)
                        handle.flush()
                        os.fsync(handle.fileno())
                    self.repaired_bytes += torn
                    self.metrics.counter("wal.torn_bytes_truncated").inc(torn)
                    break
                record = self._decode(payload, path, offset)
                seq = int(record["seq"])
                if info.first_seq is None:
                    info.first_seq = seq
                info.last_seq = seq
                self._next_seq = max(self._next_seq, seq + 1)
                valid_end = offset + FRAME_HEADER.size + len(payload)
            info.size = valid_end
            self._segments.append(info)
        if not self._segments:
            self._segments.append(SegmentInfo(index=1,
                                              path=_segment_path(
                                                  self.directory, 1)))
        active = self._segments[-1]
        self._file = active.path.open("ab")

    def _encode_record(self, record: dict) -> bytes:
        """One record dict -> frame payload bytes, per the log's codec.

        Records without ndarray fields are always JSON (the binary body
        would just wrap the same JSON in a header); records with them
        go binary by default, or base64-in-JSON under ``codec="json"``.
        """
        has_arrays = any(isinstance(value, np.ndarray)
                         for value in record.values())
        if has_arrays and self.config.codec == "binary":
            try:
                return binframe.encode_payload(record)
            except binframe.BinaryFormatError as exc:
                raise DurabilityError(
                    f"cannot encode WAL record as a binary body: {exc}")
        if has_arrays:
            record = {key: (encode_array(value)
                            if isinstance(value, np.ndarray) else value)
                      for key, value in record.items()}
        return json.dumps(record).encode("utf-8")

    @staticmethod
    def _decode(payload: bytes, path: Path, offset: int) -> dict:
        if binframe.is_binary(payload):
            try:
                record, _ = binframe.decode_payload(payload)
            except binframe.BinaryFormatError as exc:
                raise WalCorruptionError(
                    f"segment {path.name} frame at offset {offset} passed "
                    f"its CRC but does not decode as a binary record: {exc}")
        else:
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise WalCorruptionError(
                    f"segment {path.name} frame at offset {offset} passed "
                    f"its CRC but does not decode as a JSON record: {exc}")
        if not isinstance(record, dict) or "seq" not in record:
            raise WalCorruptionError(
                f"segment {path.name} frame at offset {offset} decodes to "
                f"{type(record).__name__} without a 'seq' field")
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def size_bytes(self) -> int:
        return sum(segment.size for segment in self._segments)

    @property
    def segment_paths(self) -> list[Path]:
        return [segment.path for segment in self._segments]

    def _update_gauges(self) -> None:
        self.metrics.gauge("wal.segments").set(len(self._segments))
        self.metrics.gauge("wal.log_bytes").set(self.size_bytes)

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _check_open(self) -> None:  # repro: lock-held
        if self._closed:
            raise DurabilityError("write-ahead log is closed")

    def append(self, record: dict, sync: bool = False) -> int:
        """Frame and append one record; returns its assigned seq.

        The record dict is stamped with ``"seq"`` in place.  With
        ``sync`` the append fsyncs before returning regardless of the
        group-commit bounds.
        """
        start = time.perf_counter()
        with self._lock:
            self._check_open()
            seq = self._next_seq
            record["seq"] = seq
            payload = self._encode_record(record)
            frame = FRAME_HEADER.pack(len(payload),
                                      zlib.crc32(payload)) + payload
            active = self._segments[-1]
            if active.size and active.size + len(frame) \
                    > self.config.max_segment_bytes:
                self._rotate_locked()
                active = self._segments[-1]
            try:
                self._file.write(frame)
            except OSError as exc:
                raise DurabilityError(
                    f"WAL append to {active.path.name} failed: {exc}")
            self._next_seq = seq + 1
            if active.first_seq is None:
                active.first_seq = seq
            active.last_seq = seq
            active.size += len(frame)
            if self._pending == 0:
                self._oldest_pending = start
            self._pending += 1
            due = (sync
                   or self._pending >= self.config.fsync_batch
                   or (start - self._oldest_pending) * 1e3
                   >= self.config.fsync_interval_ms)
            if due:
                self._fsync_locked()
            self.metrics.counter("wal.records").inc()
            self._update_gauges()
        self.metrics.histogram("wal.append_latency").observe(
            time.perf_counter() - start)
        return seq

    def flush(self, trace_parent=None) -> None:
        """Force the pending group commit to disk (no-op when clean).

        ``trace_parent`` (a :class:`repro.obs.TraceContext`) parents the
        resulting ``wal.fsync`` span under the caller's durability span;
        without it a traced fsync records as its own root."""
        with self._lock:
            self._check_open()
            if self._pending:
                self._fsync_locked(trace_parent)

    def _fsync_locked(self, trace_parent=None) -> None:  # repro: lock-held
        pending = self._pending
        started = time.time()
        start = time.perf_counter()
        try:
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError as exc:
            raise DurabilityError(
                f"WAL fsync of {self._segments[-1].path.name} failed: {exc}")
        self._pending = 0
        elapsed = time.perf_counter() - start
        self.metrics.counter("wal.fsyncs").inc()
        self.metrics.histogram("wal.fsync_latency").observe(elapsed)
        if self.tracer is not None:
            self.tracer.record_span(
                "wal.fsync", parent=trace_parent, ts=started, dur=elapsed,
                attrs={"pending": pending,
                       "segment": self._segments[-1].path.name})

    # ------------------------------------------------------------------
    # Rotation / truncation
    # ------------------------------------------------------------------
    def rotate(self) -> Path:
        """Close the active segment and start a new one (e.g. so a
        snapshot record begins a fresh segment and everything before it
        becomes a deletable unit); returns the new segment's path."""
        with self._lock:
            self._check_open()
            return self._rotate_locked()

    def _rotate_locked(self) -> Path:  # repro: lock-held
        if self._pending:
            self._fsync_locked()
        self._file.close()
        index = self._segments[-1].index + 1
        info = SegmentInfo(index=index,
                           path=_segment_path(self.directory, index))
        self._segments.append(info)
        self._file = info.path.open("ab")
        fsync_directory(self.directory)
        self._update_gauges()
        return info.path

    def truncate_below(self, seq: int) -> int:
        """Delete closed segments whose records *all* precede ``seq``;
        returns how many segments were removed.  The active segment is
        never deleted.  Empty closed segments (rotation artifacts) are
        reclaimed too."""
        removed = 0
        with self._lock:
            self._check_open()
            kept: list[SegmentInfo] = []
            for segment in self._segments[:-1]:
                deletable = segment.last_seq is None or segment.last_seq < seq
                if deletable:
                    try:
                        segment.path.unlink()
                    except FileNotFoundError:
                        pass
                    removed += 1
                else:
                    kept.append(segment)
            self._segments = kept + [self._segments[-1]]
            if removed:
                fsync_directory(self.directory)
                self.metrics.counter("wal.segments_truncated").inc(removed)
            self._update_gauges()
        return removed

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self):
        """Yield every record dict in log order (all segments).

        Reads the files as they are on disk; call :meth:`flush` first
        when replaying a log this process is still appending to.
        """
        for segment in list(self._segments):
            if not segment.path.exists():
                continue
            for offset, payload, valid in _read_frames(segment.path):
                if not valid:
                    # The tail was repaired at open; a bad frame now can
                    # only be unflushed buffered bytes (same process) —
                    # stop, exactly as a post-crash open would.
                    return
                yield self._decode(payload, segment.path, offset)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            # Checked under the lock: an unlocked fast-path check lets
            # two racing closers both enter, double-fsyncing and
            # double-closing the active segment file.
            if self._closed:
                return
            if self._pending:
                self._fsync_locked()
            self._closed = True
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
