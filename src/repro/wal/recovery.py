"""Crash recovery: latest snapshot + suffix replay → the fleet again.

:func:`recover_fleet` rebuilds a durable fleet from its WAL directory:

1. **Open** the log — :class:`~repro.wal.WriteAheadLog` repairs a torn
   tail (truncate at the first invalid frame of the final segment) as
   part of opening, so a SIGKILL mid-append costs at most the unsynced
   suffix, never the log.
2. **Locate** the newest ``snapshot`` record and rebuild the fleet from
   its embedded checkpoint (the PR 3 self-describing ``fleet.to_dict()``
   payload) using the :class:`~repro.serving.FleetInfra` seeds stored
   beside it — inline by default, sharded when ``shards`` is given; the
   two rebuilds score bit-identically.
3. **Replay** the whole retained log in seq order against the snapshot's
   per-stream applied watermarks: an ``ingest`` record applies iff its
   seq is above its stream's watermark and not cancelled by a ``skip``
   record; ``attach``/``detach`` records re-play membership changes —
   but only those *after* the snapshot's seq (earlier ones are already
   reflected in its fleet payload, and replaying them under
   detach-then-reattach churn would regress a snapshotted stream to
   stale attach-time state).  Replay scans the *entire* retained log,
   not just the
   suffix after the snapshot — truncation keeps any segment holding a
   still-pending (queued-but-unapplied) request, and such records
   precede the snapshot record in log order.

Each surviving ingest record replays as its own single-stream round
(``fleet.ingest_round({stream: windows})``): scores are batch-
composition independent and the engine preserves per-stream FIFO, so
the replayed scores are bit-identical to what the live fleet produced
(or would have produced — un-acked tail requests that were appended but
never served now get served).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import RecoveryError
from ..metrics import MetricsRegistry
from .log import WriteAheadLog
from .records import record_windows, validate_record

__all__ = ["RecoveryReport", "read_records", "recover_fleet"]


@dataclass
class RecoveryReport:
    """What one :func:`recover_fleet` run did, for logs and tests."""

    wal_dir: str
    records: int = 0            #: total structurally valid records read
    snapshot_seq: int | None = None
    replayed: int = 0           #: ingest records applied during replay
    covered: int = 0            #: ingest records the snapshot already held
    skipped: int = 0            #: ingest records cancelled by skip records
    orphaned: int = 0           #: ingest records for streams not attached
    attached: int = 0           #: attach records applied
    detached: int = 0           #: detach records applied
    duration: float = 0.0
    #: per-stream replayed score arrays, in replay (= original) order
    scores: dict[str, list[np.ndarray]] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"recovered {self.wal_dir}: {self.records} records, "
                f"snapshot@{self.snapshot_seq}, {self.replayed} replayed, "
                f"{self.covered} in snapshot, {self.skipped} skipped, "
                f"{self.orphaned} orphaned, {self.duration * 1e3:.1f} ms")


def read_records(wal_dir: str | Path) -> list[dict]:
    """All structurally valid records in ``wal_dir``, in seq order
    (repairing a torn tail as a side effect of opening the log)."""
    with WriteAheadLog(wal_dir) as wal:
        records = list(wal.replay())
    for record in records:
        validate_record(record)
    return records


def _rebuild_fleet(snapshot: dict, shards: int | None,
                   metrics: MetricsRegistry | None):
    """The fleet a snapshot record describes, inline or sharded."""
    from ..serving import DeploymentFleet, FleetInfra, ShardedFleet
    infra = FleetInfra.from_payload(snapshot["infra"])
    if shards is not None:
        fleet = ShardedFleet.from_dict(snapshot["fleet"], shards=shards,
                                       infra=infra)
        if metrics is not None:
            fleet.engine.metrics = metrics
        return fleet, infra
    embedding, generator = infra.build()
    fleet = DeploymentFleet.from_dict(snapshot["fleet"], embedding,
                                      generator)
    if metrics is not None:
        fleet.engine.metrics = metrics
    return fleet, infra


def _attach_entry(fleet, entry: dict, embedding, generator) -> None:
    """Re-attach one stream from an ``attach`` record's self-contained
    slot entry (model inlined, unlike the deduplicated checkpoint)."""
    from ..api.config import config_from_dict
    from ..api.deployment import Deployment
    from ..data.streams import TrendShiftConfig, TrendShiftStream
    from ..gnn.checkpoint import deployment_from_dict
    model = deployment_from_dict(entry["model"], embedding)
    deployment = Deployment.from_dict(entry["deployment"], embedding,
                                      model=model)
    stream = TrendShiftStream(
        generator,
        config_from_dict(TrendShiftConfig, entry["stream_config"]))
    fleet.add(entry["name"], deployment, stream)


def recover_fleet(wal_dir: str | Path, shards: int | None = None,
                  metrics: MetricsRegistry | None = None):
    """Rebuild the fleet a WAL directory describes.

    Returns ``(fleet, report)``.  ``shards=None`` rebuilds an in-process
    :class:`~repro.serving.DeploymentFleet`; an integer rebuilds a
    :class:`~repro.serving.ShardedFleet` over that many worker
    processes — either way the recovered per-stream state is
    bit-identical, so pick whichever the restarted service runs.

    Raises :class:`~repro.errors.RecoveryError` when the directory holds
    no snapshot record (a WAL written by :class:`~repro.wal.
    WalDurability` always starts with a genesis snapshot, so this means
    the directory is empty or not a WAL).
    """
    registry = metrics or MetricsRegistry()
    start = time.perf_counter()
    report = RecoveryReport(wal_dir=str(wal_dir))
    records = read_records(wal_dir)
    report.records = len(records)

    snapshot = None
    skips: set[int] = set()
    for record in records:
        if record["kind"] == "snapshot":
            snapshot = record
        elif record["kind"] == "skip":
            skips.add(int(record["target"]))
    if snapshot is None:
        raise RecoveryError(
            f"no snapshot record in {Path(wal_dir)}; not a recoverable "
            "WAL directory (durable fleets always write a genesis "
            "snapshot at startup)")
    report.snapshot_seq = int(snapshot["seq"])

    fleet, infra = _rebuild_fleet(snapshot, shards, metrics)
    embedding, generator = infra.build()
    applied = {name: int(seq) for name, seq in snapshot["applied"].items()}

    for record in records:
        kind = record["kind"]
        if kind == "ingest":
            seq, stream = int(record["seq"]), record["stream"]
            if seq in skips:
                report.skipped += 1
            elif seq <= applied.get(stream, -1):
                report.covered += 1
            elif stream in fleet:
                events = fleet.ingest_round(
                    {stream: record_windows(record)})
                report.scores.setdefault(stream, []).append(
                    events[stream].scores)
                report.replayed += 1
            else:
                # The stream left the fleet before this request could be
                # served; the live engine never acked it (acks follow the
                # round), so dropping it here loses nothing durable.
                report.orphaned += 1
        elif kind in ("attach", "detach"):
            # Membership records at or below the snapshot seq are
            # already reflected in the snapshot's fleet payload (they
            # sync-append before fleet state mutates, so the snapshot,
            # taken later, saw them).  They must be ignored, not
            # replayed-if-absent: under detach-then-reattach churn a
            # retained pre-snapshot detach would remove the snapshotted
            # stream and the matching attach would resurrect it with
            # stale attach-time state, while its at-or-below-watermark
            # ingests stay "covered" and never re-apply — a recovered
            # stream strictly staler than the snapshot.
            if int(record["seq"]) <= report.snapshot_seq:
                continue
            if kind == "attach" and record["entry"]["name"] not in fleet:
                _attach_entry(fleet, record["entry"], embedding, generator)
                report.attached += 1
            elif kind == "detach" and record["stream"] in fleet:
                fleet.remove(record["stream"])
                report.detached += 1

    report.duration = time.perf_counter() - start
    registry.counter("wal.recoveries").inc()
    registry.histogram("wal.recovery_latency").observe(report.duration)
    return fleet, report
