"""Result formatting: paper-style series and tables for the benchmarks.

Every benchmark prints the rows/series the corresponding paper artifact
reports, through these helpers, so `pytest benchmarks/ --benchmark-only`
regenerates a textual version of each figure and table.
"""

from __future__ import annotations

import numpy as np

from .experiments import RetrievalDriftResult, TrendShiftResult

__all__ = ["format_trend_shift", "format_retrieval_drift", "ascii_series"]


def ascii_series(values: list[float], width: int = 40,
                 low: float = 0.0, high: float = 1.0) -> list[str]:
    """Render a numeric series as simple ASCII bars (one line per value)."""
    lines = []
    for v in values:
        filled = int(round((v - low) / max(high - low, 1e-12) * width))
        filled = min(max(filled, 0), width)
        lines.append("#" * filled + "." * (width - filled) + f" {v:.3f}")
    return lines


def format_trend_shift(result: TrendShiftResult, categories: int = 4) -> str:
    """Fig. 5-style report: per-category AUC, adaptive vs static."""
    means = result.category_means(categories)
    lines = [
        f"Fig.5 panel — {result.initial_class} -> {result.shifted_class} "
        f"({result.shift_strength} shift)",
        f"shift at stream step {result.shift_step}; "
        f"{result.token_updates} token updates, {result.pruned_nodes} nodes pruned",
        "",
        f"{'Category':<10} {'With adaptation':>16} {'Without adaptation':>20}",
    ]
    for i, (a, s) in enumerate(zip(means["adaptive"], means["static"]), start=1):
        lines.append(f"{'Cat ' + str(i):<10} {a:>16.3f} {s:>20.3f}")
    lines.append("")
    lines.append(f"final adaptive-vs-static gap: {result.final_gap:+.3f}")
    pre = [a for st, a in zip(result.steps, result.auc_adaptive)
           if st < result.shift_step]
    if pre:
        lines.append(f"pre-shift AUC (initial anomaly): {np.mean(pre):.3f}")
    return "\n".join(lines)


def format_retrieval_drift(result: RetrievalDriftResult,
                           max_snapshots: int = 10) -> str:
    """Fig. 6-style report: relative position + retrieved words over iterations."""
    traj = result.trajectory
    positions = traj.relative_position()
    lines = [
        f"Fig.6 — node {result.tracked_node_text!r} drifting "
        f"'{traj.initial_word}' -> '{traj.target_word}'",
        "",
        f"{'iteration':>10} {'rel.pos (0=init, 1=target)':>28}  nearest words",
    ]
    count = len(traj.iterations)
    stride = max(count // max_snapshots, 1)
    for idx in range(0, count, stride):
        iteration = traj.iterations[idx]
        words = ", ".join(result.retrieved_words.get(iteration, [])[:4])
        lines.append(f"{iteration:>10} {positions[idx]:>28.3f}  {words}")
    lines.append("")
    lines.append(f"net drift toward '{traj.target_word}': {result.net_drift:+.3f}")
    return "\n".join(lines)
