"""Evaluation metrics implemented from scratch (no sklearn dependency).

The paper's headline metric is frame-level ROC AUC on the UCF-Crime test
split — standard for video anomaly detection.  We also provide the ROC
curve itself and average precision for richer reporting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_curve", "roc_auc", "average_precision", "score_statistics"]


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must have the same length")
    if scores.size == 0:
        raise ValueError("empty inputs")
    unique = set(np.unique(labels).tolist())
    if not unique <= {0, 1}:
        raise ValueError(f"labels must be binary 0/1, got {sorted(unique)}")
    return scores, labels.astype(np.int64)


def roc_curve(scores: np.ndarray, labels: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve (fpr, tpr, thresholds), ties handled by score grouping."""
    scores, labels = _validate(scores, labels)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both positive and negative samples")
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    # Indices where the score changes: one ROC point per distinct threshold.
    distinct = np.where(np.diff(sorted_scores))[0]
    thresholds_idx = np.concatenate([distinct, [labels.size - 1]])
    tps = np.cumsum(sorted_labels)[thresholds_idx]
    fps = (thresholds_idx + 1) - tps
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[thresholds_idx]])
    return fpr, tpr, thresholds


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Equivalent to trapezoidal integration of the ROC curve but exact under
    ties (ties contribute 1/2).
    """
    scores, labels = _validate(scores, labels)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs both positive and negative samples")
    # Midranks handle ties exactly.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[labels == 1].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve)."""
    scores, labels = _validate(scores, labels)
    n_pos = int(labels.sum())
    if n_pos == 0:
        raise ValueError("average_precision needs at least one positive")
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    tps = np.cumsum(sorted_labels)
    precision = tps / np.arange(1, labels.size + 1)
    return float((precision * sorted_labels).sum() / n_pos)


def score_statistics(scores: np.ndarray) -> dict[str, float]:
    """Summary statistics of an anomaly-score sample (used by the monitor tests)."""
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if scores.size == 0:
        raise ValueError("empty scores")
    return {
        "mean": float(scores.mean()),
        "std": float(scores.std()),
        "min": float(scores.min()),
        "max": float(scores.max()),
        "median": float(np.median(scores)),
    }
