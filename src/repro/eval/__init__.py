"""Metrics, experiment harnesses, and reporting for the paper's evaluation."""

from .experiments import (
    EfficiencyExperiment,
    EfficiencyResult,
    ExperimentConfig,
    ExperimentContext,
    RetrievalDriftExperiment,
    RetrievalDriftResult,
    TrendShiftExperiment,
    TrendShiftResult,
)
from .metrics import average_precision, roc_auc, roc_curve, score_statistics
from .reporting import ascii_series, format_retrieval_drift, format_trend_shift

__all__ = [
    "roc_auc",
    "roc_curve",
    "average_precision",
    "score_statistics",
    "ExperimentConfig",
    "ExperimentContext",
    "TrendShiftExperiment",
    "TrendShiftResult",
    "RetrievalDriftExperiment",
    "RetrievalDriftResult",
    "EfficiencyExperiment",
    "EfficiencyResult",
    "format_trend_shift",
    "format_retrieval_drift",
    "ascii_series",
]
