"""Experiment harnesses for every table and figure in the paper's evaluation.

* :class:`TrendShiftExperiment`  -> Fig. 5 (A: weak shift, B: strong shift)
* :class:`RetrievalDriftExperiment` -> Fig. 6 (interpretable drift)
* :class:`EfficiencyExperiment` -> Table I (cloud baseline vs edge adaptation)

All harnesses share an :class:`ExperimentContext` that assembles the full
stack (ontology -> embedding model -> LLM oracle -> mission KG -> trained
decision model) deterministically from a seed.  ``ExperimentContext`` is
now a thin backwards-compatible shim over :class:`repro.api.Pipeline`;
new code should use the :mod:`repro.api` facade directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..adaptation.controller import AdaptationConfig, ContinuousAdaptationController
from ..adaptation.retrieval import DriftTrajectory, InterpretableKGRetrieval
from ..concepts.ontology import ConceptOntology
from ..data.streams import TrendShiftConfig, TrendShiftStream
from ..data.synthetic import FrameGenerator
from ..data.ucf_crime import SyntheticUCFCrime
from ..embedding.joint_space import JointEmbeddingModel
from ..gnn.pipeline import MissionGNNModel
from ..kg.graph import ReasoningKG
from .metrics import roc_auc

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "TrendShiftExperiment",
    "TrendShiftResult",
    "RetrievalDriftExperiment",
    "RetrievalDriftResult",
    "EfficiencyExperiment",
    "EfficiencyResult",
]


@dataclass
class ExperimentConfig:
    """Shared stack configuration (scaled-down defaults; all knobs exposed)."""

    seed: int = 7
    kg_depth: int = 3
    window: int = 8
    frames_per_video: int = 40
    dataset_scale: float = 0.15
    train_steps: int = 400
    train_batch: int = 32
    train_lr: float = 1e-3
    train_normal_videos: int = 20
    train_anomaly_videos: int = 8
    eval_normal_windows: int = 40
    eval_anomaly_windows: int = 20


class ExperimentContext:
    """Backwards-compatible view of :class:`repro.api.Pipeline`.

    Historically this class hand-built and cached the whole stack; it now
    delegates everything to a :class:`~repro.api.Pipeline` (whose model
    registry replaced the old per-mission state-dict cache).  Existing
    call sites keep working; new code should construct a ``Pipeline``.
    """

    def __init__(self, config: ExperimentConfig | None = None):
        # repro: allow[layer-dag] compat shim wraps the higher-level
        from ..api.config import ReproConfig
        # repro: allow[layer-dag] Pipeline; lazy so eval stays below api
        from ..api.pipeline import Pipeline
        self.pipeline = Pipeline(ReproConfig(experiment=config
                                             or ExperimentConfig()))

    @classmethod
    def from_pipeline(cls, pipeline) -> "ExperimentContext":
        """Wrap an existing pipeline without rebuilding anything."""
        context = cls.__new__(cls)
        context.pipeline = pipeline
        return context

    @property
    def config(self) -> ExperimentConfig:
        return self.pipeline.config.experiment

    @property
    def ontology(self) -> ConceptOntology:
        return self.pipeline.ontology

    @property
    def embedding_model(self) -> JointEmbeddingModel:
        return self.pipeline.embedding_model

    @property
    def generator(self) -> FrameGenerator:
        return self.pipeline.generator

    @property
    def dataset(self) -> SyntheticUCFCrime:
        return self.pipeline.dataset

    # ------------------------------------------------------------------
    def generate_kg(self, mission: str) -> ReasoningKG:
        """Mission KG via the LLM oracle (cached structurally, fresh tokens)."""
        return self.pipeline.generate_kg(mission)

    def train_model(self, mission: str) -> MissionGNNModel:
        """Cloud-side training for a mission; served from the model registry."""
        return self.pipeline.train(mission)

    # ------------------------------------------------------------------
    def train_windows(self, mission: str) -> tuple[np.ndarray, np.ndarray]:
        return self.pipeline.train_windows(mission)

    def normal_anchors(self, mission: str, count: int = 60) -> np.ndarray:
        return self.pipeline.normal_anchors(mission, count=count)

    def eval_windows(self, anomaly_class: str,
                     seed_tag: str = "eval") -> tuple[np.ndarray, np.ndarray]:
        """Balanced held-out windows of one anomaly class vs normal."""
        return self.pipeline.eval_windows(anomaly_class, seed_tag=seed_tag)


# ----------------------------------------------------------------------
# Fig. 5: adaptation to anomaly trend shifts
# ----------------------------------------------------------------------
@dataclass
class TrendShiftResult:
    """Per-step AUC traces for one scenario."""

    initial_class: str
    shifted_class: str
    shift_strength: str
    shift_step: int
    steps: list[int] = field(default_factory=list)
    auc_adaptive: list[float] = field(default_factory=list)
    auc_static: list[float] = field(default_factory=list)
    pruned_nodes: int = 0
    token_updates: int = 0

    def category_means(self, categories: int = 4) -> dict[str, list[float]]:
        """Bucket post-shift steps into the paper's plot categories."""
        post = [i for i, s in enumerate(self.steps) if s >= self.shift_step]
        buckets = np.array_split(np.asarray(post), categories)
        return {
            "adaptive": [float(np.mean([self.auc_adaptive[i] for i in b]))
                         for b in buckets if len(b)],
            "static": [float(np.mean([self.auc_static[i] for i in b]))
                       for b in buckets if len(b)],
        }

    @property
    def final_gap(self) -> float:
        """Adaptive minus static AUC, averaged over the last quarter."""
        quarter = max(len(self.steps) // 4, 1)
        return (float(np.mean(self.auc_adaptive[-quarter:]))
                - float(np.mean(self.auc_static[-quarter:])))


class TrendShiftExperiment:
    """Reproduces one panel of Fig. 5.

    Runs the *same* trend-shift stream twice — once through the continuous
    adaptation controller, once with a static KG — and records test AUC
    against the currently-active anomaly class at every step.
    """

    def __init__(self, context: ExperimentContext,
                 stream_config: TrendShiftConfig | None = None,
                 adaptation_config: AdaptationConfig | None = None):
        self.context = context
        self.stream_config = stream_config or TrendShiftConfig(
            window=context.config.window)
        self.adaptation_config = adaptation_config

    def run(self) -> TrendShiftResult:
        ctx = self.context
        scfg = self.stream_config
        result = TrendShiftResult(
            initial_class=scfg.initial_class,
            shifted_class=scfg.shifted_class,
            shift_strength=scfg.shift_strength,
            shift_step=scfg.steps_before_shift)

        eval_sets = {
            cls: ctx.eval_windows(cls)
            for cls in (scfg.initial_class, scfg.shifted_class)
        }

        adaptive_model = ctx.train_model(scfg.initial_class)
        static_model = ctx.train_model(scfg.initial_class)
        controller = ContinuousAdaptationController(
            adaptive_model, self.adaptation_config,
            normal_anchor_windows=ctx.normal_anchors(scfg.initial_class))

        stream = TrendShiftStream(ctx.generator, scfg)
        for batch in stream:
            controller.process_batch(batch.windows)
            windows, labels = eval_sets[batch.active_class]
            result.steps.append(batch.step)
            result.auc_adaptive.append(
                roc_auc(adaptive_model.anomaly_scores(windows), labels))
            result.auc_static.append(
                roc_auc(static_model.anomaly_scores(windows), labels))
        result.pruned_nodes = controller.total_pruned
        result.token_updates = controller.update_count
        return result


# ----------------------------------------------------------------------
# Fig. 6: interpretable retrieval drift
# ----------------------------------------------------------------------
@dataclass
class RetrievalDriftResult:
    """Tracked-node drift between the initial and target concept words."""

    tracked_node_text: str
    trajectory: DriftTrajectory | None = None
    retrieved_words: dict[int, list[str]] = field(default_factory=dict)

    @property
    def net_drift(self) -> float:
        """Change in relative position (positive = moved toward the target)."""
        positions = self.trajectory.relative_position()
        return float(positions[-1] - positions[0]) if len(positions) >= 2 else 0.0


class RetrievalDriftExperiment:
    """Reproduces Fig. 6: a Stealing-KG node drifting toward Robbery concepts.

    Tracks the node whose initial text is ``tracked_word`` (default
    "sneaky", the example in the paper) through a Stealing -> Robbery
    adaptation run, recording token-space distances to the initial word and
    the target word ("firearm") plus the retrieved nearest words.
    """

    def __init__(self, context: ExperimentContext,
                 initial_class: str = "Stealing", shifted_class: str = "Robbery",
                 tracked_word: str = "sneaky", target_word: str = "firearm",
                 stream_config: TrendShiftConfig | None = None,
                 adaptation_config: AdaptationConfig | None = None,
                 metric: str = "euclidean"):
        self.context = context
        self.initial_class = initial_class
        self.shifted_class = shifted_class
        self.tracked_word = tracked_word
        self.target_word = target_word
        self.stream_config = stream_config or TrendShiftConfig(
            initial_class=initial_class, shifted_class=shifted_class,
            window=context.config.window)
        if adaptation_config is None:
            # The paper runs ~900 token-update iterations for Fig. 6; this
            # qualitative experiment therefore adapts more aggressively and
            # continuously (maintenance trickle on) than the Fig. 5 runs.
            from ..adaptation.monitor import MonitorConfig
            from ..adaptation.token_update import TokenUpdateConfig
            adaptation_config = AdaptationConfig(
                monitor=MonitorConfig(window=72, lag=36, min_k=6,
                                      trigger_threshold=0.02),
                update=TokenUpdateConfig(learning_rate=0.08, inner_steps=4),
                adaptation_rounds=8)
        self.adaptation_config = adaptation_config
        self.metric = metric

    def run(self) -> RetrievalDriftResult:
        ctx = self.context
        model = ctx.train_model(self.initial_class)
        kg = model.kgs[0]
        tracked = next((n for n in kg.concept_nodes()
                        if n.text == self.tracked_word), None)
        if tracked is None:  # fall back to any level-1 node
            tracked = kg.nodes_at_level(1)[0]
        tracked_id = tracked.node_id

        table = ctx.embedding_model.token_table
        initial_vec = table.embed_text(tracked.text)
        target_vec = table.embed_text(self.target_word)

        result = RetrievalDriftResult(tracked_node_text=tracked.text)
        result.trajectory = DriftTrajectory(initial_word=tracked.text,
                                            target_word=self.target_word)
        retrieval = InterpretableKGRetrieval(table, metric=self.metric)
        controller = ContinuousAdaptationController(
            model, self.adaptation_config,
            normal_anchor_windows=ctx.normal_anchors(self.initial_class))

        def snapshot(iteration: int) -> None:
            node = kg.node(tracked_id) if tracked_id in [
                n.node_id for n in kg.concept_nodes()] else None
            if node is None or node.token_embeddings is None:
                return
            pooled = node.token_embeddings.mean(axis=0)
            result.trajectory.record(iteration, pooled, initial_vec, target_vec)
            hits = retrieval.retrieve_node(kg, tracked_id)
            result.retrieved_words[iteration] = hits.top_words(per_token=1)

        snapshot(0)
        stream = TrendShiftStream(ctx.generator, self.stream_config)
        for batch in stream:
            controller.process_batch(batch.windows)
            snapshot(controller.update_count)
        return result


# ----------------------------------------------------------------------
# Table I: computational efficiency (AUC part; costs live in repro.edge)
# ----------------------------------------------------------------------
@dataclass
class EfficiencyResult:
    """Measured mean AUC for the two maintenance strategies."""

    auc_baseline: float
    auc_proposed: float
    phase_aucs_baseline: list[float] = field(default_factory=list)
    phase_aucs_proposed: list[float] = field(default_factory=list)
    kg_regenerations_baseline: int = 0
    edge_updates_proposed: int = 0


class EfficiencyExperiment:
    """Reproduces Table I's operational-performance rows.

    Scenario (paper Section IV-D): the anomaly trend alternates between two
    classes several times a month.  The *baseline* regenerates the mission
    KG in the cloud (and retrains the decision model) at every change; the
    *proposed* method keeps the original deployment and adapts its KG token
    embeddings on the edge.  We measure the mean test AUC over all phases
    for both strategies.
    """

    def __init__(self, context: ExperimentContext,
                 class_a: str = "Stealing", class_b: str = "Robbery",
                 alternations: int = 4, steps_per_phase: int = 10,
                 adaptation_config: AdaptationConfig | None = None):
        self.context = context
        self.class_a = class_a
        self.class_b = class_b
        self.alternations = alternations
        self.steps_per_phase = steps_per_phase
        self.adaptation_config = adaptation_config

    def run(self) -> EfficiencyResult:
        ctx = self.context
        phases = [self.class_a if i % 2 == 0 else self.class_b
                  for i in range(self.alternations)]
        eval_sets = {cls: ctx.eval_windows(cls) for cls in set(phases)}

        # Proposed: one deployment, continuous edge adaptation across phases.
        proposed = ctx.train_model(phases[0])
        controller = ContinuousAdaptationController(
            proposed, self.adaptation_config,
            normal_anchor_windows=ctx.normal_anchors(phases[0]))
        proposed_aucs: list[float] = []
        step_counter = 0
        for phase_class in phases:
            stream = TrendShiftStream(ctx.generator, TrendShiftConfig(
                initial_class=phase_class, shifted_class=phase_class,
                steps_before_shift=self.steps_per_phase, steps_after_shift=0,
                window=ctx.config.window, seed=ctx.config.seed + step_counter))
            for batch in stream:
                controller.process_batch(batch.windows)
            windows, labels = eval_sets[phase_class]
            proposed_aucs.append(roc_auc(proposed.anomaly_scores(windows), labels))
            step_counter += self.steps_per_phase

        # Baseline: fresh cloud KG + retrained model per phase.
        baseline_aucs: list[float] = []
        for phase_class in phases:
            model = ctx.train_model(phase_class)
            windows, labels = eval_sets[phase_class]
            baseline_aucs.append(roc_auc(model.anomaly_scores(windows), labels))

        return EfficiencyResult(
            auc_baseline=float(np.mean(baseline_aucs)),
            auc_proposed=float(np.mean(proposed_aucs)),
            phase_aucs_baseline=baseline_aucs,
            phase_aucs_proposed=proposed_aucs,
            kg_regenerations_baseline=len(phases),
            edge_updates_proposed=controller.update_count)
