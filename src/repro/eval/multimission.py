"""Multi-mission evaluation: several anomaly types, one deployment.

The paper's decision model supports ``n`` anomaly types (one KG each, an
``n+1``-way head with per-type posteriors ``p_{i|A}``); its experiments use
single missions.  This harness exercises the multi-KG path end to end:
train one model over several mission KGs and evaluate both the binary
anomaly AUC per class and the type-classification accuracy among
anomalies — the capability a multi-camera deployment would rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gnn.decision import DecisionModel
from ..gnn.pipeline import MissionGNNConfig, MissionGNNModel
from ..gnn.training import DecisionModelTrainer, TrainingConfig
from ..nn.tensor import no_grad
from ..utils.rng import derive_rng
from .experiments import ExperimentContext
from .metrics import roc_auc

__all__ = ["MultiMissionResult", "MultiMissionExperiment"]


@dataclass
class MultiMissionResult:
    """Per-class detection AUC plus anomaly-type classification accuracy."""

    missions: list[str]
    auc_per_class: dict[str, float] = field(default_factory=dict)
    type_accuracy: float = float("nan")
    type_confusion: np.ndarray | None = None

    @property
    def mean_auc(self) -> float:
        return float(np.mean(list(self.auc_per_class.values())))

    def summary(self) -> str:
        lines = [f"missions: {', '.join(self.missions)}"]
        for mission, auc in self.auc_per_class.items():
            lines.append(f"  {mission:<14} detection AUC: {auc:.3f}")
        lines.append(f"  mean AUC: {self.mean_auc:.3f}")
        lines.append(f"  anomaly-type accuracy: {self.type_accuracy:.3f}")
        return "\n".join(lines)


class MultiMissionExperiment:
    """Trains and evaluates one model over several mission KGs."""

    def __init__(self, context: ExperimentContext, missions: list[str],
                 train_steps: int | None = None):
        if len(missions) < 2:
            raise ValueError("multi-mission needs at least two missions")
        if len(set(missions)) != len(missions):
            raise ValueError("missions must be distinct")
        self.context = context
        self.missions = list(missions)
        self.train_steps = train_steps

    # ------------------------------------------------------------------
    def build_model(self) -> MissionGNNModel:
        ctx = self.context
        kgs = [ctx.generate_kg(mission) for mission in self.missions]
        return MissionGNNModel(kgs, ctx.embedding_model, MissionGNNConfig(
            temporal_window=ctx.config.window, seed=ctx.config.seed))

    def training_data(self) -> tuple[np.ndarray, np.ndarray]:
        """Windows labeled 0 = normal, i = mission i's anomaly (1-based)."""
        ctx = self.context
        all_windows, all_labels = [], []
        for type_index, mission in enumerate(self.missions, start=1):
            windows, labels = ctx.train_windows(mission)
            relabeled = np.where(labels > 0, type_index, 0)
            if type_index > 1:
                # Keep normals from the first mission only (identical
                # normal distribution; avoids duplicating them per class).
                keep = relabeled > 0
                windows, relabeled = windows[keep], relabeled[keep]
            all_windows.append(windows)
            all_labels.append(relabeled)
        return np.concatenate(all_windows), np.concatenate(all_labels)

    # ------------------------------------------------------------------
    def run(self) -> MultiMissionResult:
        ctx = self.context
        model = self.build_model()
        windows, labels = self.training_data()
        steps = self.train_steps or ctx.config.train_steps
        DecisionModelTrainer(model, TrainingConfig(
            steps=steps, batch_size=ctx.config.train_batch,
            learning_rate=ctx.config.train_lr, seed=ctx.config.seed)).train(
            windows, labels)

        result = MultiMissionResult(missions=self.missions)
        # Per-class binary detection AUC.
        for mission in self.missions:
            eval_windows, eval_labels = ctx.eval_windows(mission)
            scores = model.anomaly_scores(eval_windows)
            result.auc_per_class[mission] = roc_auc(scores, eval_labels)

        # Anomaly-type classification among anomalous windows.
        rng = derive_rng(ctx.config.seed, "multimission-type-eval")
        per_class = 12
        type_windows, type_labels = [], []
        for type_index, mission in enumerate(self.missions):
            for _ in range(per_class):
                type_windows.append(np.stack([
                    ctx.generator.anomaly_frame(mission, rng)
                    for _ in range(ctx.config.window)]))
                type_labels.append(type_index)
        type_windows = np.stack(type_windows)
        type_labels = np.asarray(type_labels)
        with no_grad():
            probs = model(type_windows).softmax(axis=-1).numpy()
        posterior = DecisionModel.anomaly_type_posterior(probs)
        predictions = posterior.argmax(axis=-1)
        result.type_accuracy = float((predictions == type_labels).mean())
        n = len(self.missions)
        confusion = np.zeros((n, n), dtype=np.int64)
        for truth, pred in zip(type_labels, predictions):
            confusion[truth, pred] += 1
        result.type_confusion = confusion
        return result
