"""The hierarchical reasoning knowledge graph (paper Section III-B).

A reasoning KG is a hierarchical DAG:

* every node carries a short concept text and a level;
* edges connect nodes at level ``i`` only to nodes at level ``i+1``;
* level 0 holds the single **sensor node** (receives the encoded frame);
* levels ``1..depth`` hold reasoning concepts;
* level ``depth+1`` holds the single **embedding node** (emits the final
  reasoning embedding).

Besides structure, each concept node owns a *learnable token-embedding
matrix* — the per-node CoOp-style vectors, initialized from the frozen
vocabulary table, that continuous KG adaptive learning updates on the edge
device.  The sensor and embedding nodes have no tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..embedding.joint_space import JointEmbeddingModel
from .errors import KGStructureError, UnknownNodeError

__all__ = ["KGNode", "ReasoningKG"]

SENSOR_TEXT = "<sensor>"
EMBEDDING_TEXT = "<embedding>"


@dataclass
class KGNode:
    """A node of the reasoning KG.

    ``token_ids`` / ``token_embeddings`` are None for the sensor and
    embedding nodes.  ``token_embeddings`` has shape (n_tokens, token_dim)
    and is the adaptation target.
    """

    node_id: int
    text: str
    level: int
    token_ids: list[int] | None = None
    token_embeddings: np.ndarray | None = None

    @property
    def is_sensor(self) -> bool:
        return self.text == SENSOR_TEXT

    @property
    def is_embedding(self) -> bool:
        return self.text == EMBEDDING_TEXT

    @property
    def is_concept(self) -> bool:
        return not (self.is_sensor or self.is_embedding)


class ReasoningKG:
    """Mutable hierarchical DAG with strict level-(i -> i+1) edges.

    The class supports the paper's three structural operations — node
    alternating happens implicitly via token updates; node *pruning* and
    node *creating* are :meth:`prune_node` and :meth:`create_node`.
    """

    def __init__(self, mission: str, depth: int):
        if depth < 1:
            raise KGStructureError("reasoning depth must be >= 1")
        self.mission = mission
        self.depth = depth
        self._nodes: dict[int, KGNode] = {}
        self._edges: set[tuple[int, int]] = set()
        self._next_id = 0
        self.sensor_id: int | None = None
        self.embedding_id: int | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, text: str, level: int) -> int:
        """Add a concept node; returns its id."""
        if not 1 <= level <= self.depth:
            raise KGStructureError(
                f"concept nodes must sit at level 1..{self.depth}, got {level}")
        if any(n.text == text and n.is_concept for n in self._nodes.values()):
            raise KGStructureError(f"concept {text!r} already present in the KG")
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = KGNode(node_id=node_id, text=text, level=level)
        return node_id

    def add_edge(self, source: int, target: int) -> None:
        src = self.node(source)
        dst = self.node(target)
        if dst.level != src.level + 1:
            raise KGStructureError(
                f"edge {src.text!r}(L{src.level}) -> {dst.text!r}(L{dst.level}) "
                "violates the level i -> i+1 rule")
        self._edges.add((source, target))

    def attach_terminals(self) -> None:
        """Attach the sensor node (level 0) and embedding node (level depth+1).

        The sensor node connects to every level-1 node; every level-`depth`
        node connects to the embedding node.  This finalizes generation
        (last step of the paper's Fig. 3 procedure).
        """
        if self.sensor_id is not None:
            raise KGStructureError("terminals already attached")
        sensor = KGNode(node_id=self._next_id, text=SENSOR_TEXT, level=0)
        self._next_id += 1
        embedding = KGNode(node_id=self._next_id, text=EMBEDDING_TEXT,
                           level=self.depth + 1)
        self._next_id += 1
        self._nodes[sensor.node_id] = sensor
        self._nodes[embedding.node_id] = embedding
        self.sensor_id = sensor.node_id
        self.embedding_id = embedding.node_id
        for node in list(self._nodes.values()):
            if node.level == 1:
                self._edges.add((sensor.node_id, node.node_id))
            if node.level == self.depth and node.is_concept:
                self._edges.add((node.node_id, embedding.node_id))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> KGNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def has_concept(self, text: str) -> bool:
        return any(n.text == text and n.is_concept for n in self._nodes.values())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def nodes(self) -> list[KGNode]:
        return [self._nodes[i] for i in sorted(self._nodes)]

    def concept_nodes(self) -> list[KGNode]:
        return [n for n in self.nodes() if n.is_concept]

    def edges(self) -> list[tuple[int, int]]:
        return sorted(self._edges)

    def nodes_at_level(self, level: int) -> list[KGNode]:
        return [n for n in self.nodes() if n.level == level]

    def edges_at_level(self, level: int) -> list[tuple[int, int]]:
        """Edges whose *target* sits at ``level`` (the paper's E(l))."""
        return [(s, d) for (s, d) in self.edges()
                if self._nodes[d].level == level]

    def in_degree(self, node_id: int) -> int:
        return sum(1 for (_, d) in self._edges if d == node_id)

    def out_degree(self, node_id: int) -> int:
        return sum(1 for (s, _) in self._edges if s == node_id)

    def predecessors(self, node_id: int) -> list[int]:
        return sorted(s for (s, d) in self._edges if d == node_id)

    def successors(self, node_id: int) -> list[int]:
        return sorted(d for (s, d) in self._edges if s == node_id)

    # ------------------------------------------------------------------
    # Token embeddings (the adaptation target)
    # ------------------------------------------------------------------
    def initialize_tokens(self, model: JointEmbeddingModel) -> None:
        """Tokenize every concept node and copy in its vocab embeddings.

        After this call each concept node owns an independent, learnable
        ``token_embeddings`` matrix (paper Fig. 4(A): "Token Updating"
        starts from the tokenized initial KG).
        """
        for node in self.concept_nodes():
            ids = model.tokenizer.encode(node.text)
            if not ids:
                ids = [model.tokenizer.token_to_id[model.tokenizer.UNK]]
            node.token_ids = ids
            node.token_embeddings = model.token_table.lookup(ids).copy()

    def tokens_initialized(self) -> bool:
        return all(n.token_embeddings is not None for n in self.concept_nodes())

    # ------------------------------------------------------------------
    # Structural adaptation ops (paper Fig. 4 B/C)
    # ------------------------------------------------------------------
    def prune_node(self, node_id: int) -> KGNode:
        """Remove a concept node and all its edges (paper: Node Pruning)."""
        node = self.node(node_id)
        if not node.is_concept:
            raise KGStructureError("cannot prune the sensor or embedding node")
        self._edges = {(s, d) for (s, d) in self._edges
                       if s != node_id and d != node_id}
        del self._nodes[node_id]
        return node

    def create_node(self, level: int, token_dim: int, n_tokens: int,
                    rng: np.random.Generator,
                    text: str | None = None,
                    edge_probability: float = 0.5,
                    token_bank: np.ndarray | None = None,
                    bank_noise: float = 0.1) -> int:
        """Create a fresh node with random tokens and random edges.

        Paper Fig. 4(C): after pruning, "a new node with a random token
        embedding is created at the same level as the pruned node, along
        with random edge connections".  When ``token_bank`` (the frozen
        vocabulary embedding table) is provided, the random embedding is a
        random sample of vocabulary token vectors plus noise — random, but
        inside the embedding manifold the frozen GNN was trained on.
        Without a bank, rows are isotropic unit Gaussians.  Random edges go
        to/from a random subset of adjacent-level nodes (at least one each
        side when available, so the node participates in reasoning).
        """
        if not 1 <= level <= self.depth:
            raise KGStructureError(f"level must be 1..{self.depth}")
        node_id = self._next_id
        self._next_id += 1
        if token_bank is not None:
            if token_bank.ndim != 2 or token_bank.shape[1] != token_dim:
                raise ValueError("token_bank must be (vocab, token_dim)")
            picks = rng.integers(0, token_bank.shape[0], size=n_tokens)
            embeddings = (token_bank[picks]
                          + bank_noise * rng.normal(size=(n_tokens, token_dim)))
        else:
            embeddings = rng.normal(0.0, 1.0, size=(n_tokens, token_dim))
            embeddings /= np.linalg.norm(embeddings, axis=1, keepdims=True)
        node = KGNode(node_id=node_id,
                      text=text or f"<new-node-{node_id}>",
                      level=level,
                      token_ids=[],
                      token_embeddings=embeddings)
        self._nodes[node_id] = node

        def _connect(candidates: list[KGNode], incoming: bool) -> None:
            if not candidates:
                return
            mask = rng.random(len(candidates)) < edge_probability
            if not mask.any():
                mask[rng.integers(len(candidates))] = True
            for candidate, keep in zip(candidates, mask):
                if not keep:
                    continue
                if incoming:
                    self._edges.add((candidate.node_id, node_id))
                else:
                    self._edges.add((node_id, candidate.node_id))

        _connect(self.nodes_at_level(level - 1), incoming=True)
        _connect(self.nodes_at_level(level + 1), incoming=False)
        return node_id

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise KGStructureError on failure."""
        for (s, d) in self._edges:
            if s not in self._nodes or d not in self._nodes:
                raise KGStructureError(f"edge ({s},{d}) references a missing node")
            if self._nodes[d].level != self._nodes[s].level + 1:
                raise KGStructureError(
                    f"edge ({s},{d}) connects level {self._nodes[s].level} "
                    f"to level {self._nodes[d].level}")
        texts = [n.text for n in self.concept_nodes()]
        if len(texts) != len(set(texts)):
            raise KGStructureError("duplicate concept texts present")
        if self.sensor_id is not None:
            if self.in_degree(self.sensor_id) != 0:
                raise KGStructureError("sensor node must have no incoming edges")
            if self.out_degree(self.embedding_id) != 0:
                raise KGStructureError("embedding node must have no outgoing edges")

    def summary(self) -> str:
        lines = [f"ReasoningKG(mission={self.mission!r}, depth={self.depth}, "
                 f"nodes={self.num_nodes}, edges={self.num_edges})"]
        for level in range(0, self.depth + 2):
            nodes = self.nodes_at_level(level)
            if nodes:
                names = ", ".join(n.text for n in nodes)
                lines.append(f"  L{level}: {names}")
        return "\n".join(lines)
