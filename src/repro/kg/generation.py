"""Mission-specific reasoning-KG generation (paper Fig. 3).

The pipeline:

1. **Initial reasoning nodes** — the LLM proposes level-1 key indicators.
2. **Expansion loop** per level: node generation -> edge generation ->
   error detection (duplicated concepts, invalid edges) -> bounded error
   correction loop -> prune leftovers if the loop exhausts its budget.
3. **Terminal attachment** — sensor node and embedding node complete the KG.

The generator never trusts the oracle: every proposal passes through
explicit validation, mirroring the paper's framework which must defend
against LLM mistakes (including mistakes introduced *during correction*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..llm.oracle import EdgeProposal, SyntheticLLM
from .errors import DuplicatedConcept, InvalidEdge, KGError
from .graph import ReasoningKG

__all__ = ["KGGenerationConfig", "KGGenerationReport", "KGGenerator"]


@dataclass
class KGGenerationConfig:
    """Knobs for the generation loop.

    ``depth`` is the number of reasoning levels d (the GNN then has d+2
    layers).  ``max_correction_iterations`` bounds the error-correction loop
    as in the paper; on exhaustion, problematic nodes/edges are pruned.
    """

    depth: int = 3
    initial_nodes: int = 4
    nodes_per_level: int = 5
    max_correction_iterations: int = 5


@dataclass
class KGGenerationReport:
    """What happened during generation — used by tests and the edge cost model."""

    mission: str
    errors_detected: list[KGError] = field(default_factory=list)
    corrections_applied: int = 0
    nodes_pruned: int = 0
    edges_pruned: int = 0
    llm_calls: int = 0


class KGGenerator:
    """Drives the oracle through the Fig. 3 procedure."""

    def __init__(self, oracle: SyntheticLLM, config: KGGenerationConfig | None = None):
        self.oracle = oracle
        self.config = config or KGGenerationConfig()

    # ------------------------------------------------------------------
    # Error detection (paper: Duplicated Concepts and Invalid Edges)
    # ------------------------------------------------------------------
    @staticmethod
    def detect_errors(existing: dict[str, int], proposals: list[str],
                      edges: list[EdgeProposal], level: int) -> list[KGError]:
        """Validate a proposed expansion of ``level + 1``.

        ``existing`` maps already-accepted concept text -> its level.
        """
        errors: list[KGError] = []
        seen: set[str] = set()
        for concept in proposals:
            if concept in existing:
                errors.append(DuplicatedConcept(
                    description=f"concept {concept!r} already at level "
                                f"{existing[concept]}",
                    concept=concept, existing_level=existing[concept]))
            elif concept in seen:
                errors.append(DuplicatedConcept(
                    description=f"concept {concept!r} proposed twice",
                    concept=concept, existing_level=level + 1))
            seen.add(concept)
        valid_sources = {t for t, lv in existing.items() if lv == level}
        proposal_set = set(proposals)
        for edge in edges:
            src_level = existing.get(edge.source, None)
            if edge.source in valid_sources and edge.target in proposal_set:
                continue
            errors.append(InvalidEdge(
                description=f"edge {edge.source!r} -> {edge.target!r} does not "
                            f"connect level {level} to level {level + 1}",
                source=edge.source, target=edge.target,
                source_level=src_level if src_level is not None else -1,
                target_level=level + 1))
        return errors

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, mission: str) -> tuple[ReasoningKG, KGGenerationReport]:
        """Generate the full reasoning KG for ``mission``."""
        cfg = self.config
        report = KGGenerationReport(mission=mission)
        kg = ReasoningKG(mission=mission, depth=cfg.depth)

        initial = self.oracle.generate_initial_nodes(mission, count=cfg.initial_nodes)
        report.llm_calls += 1
        # The initial proposals may contain duplicates among themselves.
        accepted: dict[str, int] = {}
        for concept in initial:
            if concept not in accepted:
                kg.add_node(concept, level=1)
                accepted[concept] = 1

        for level in range(1, cfg.depth):
            current = [text for text, lv in accepted.items() if lv == level]
            proposals = self.oracle.generate_next_nodes(
                mission, current, level, count=cfg.nodes_per_level,
                forbidden=set(accepted))
            report.llm_calls += 1
            edges = self.oracle.generate_edges(
                mission, level, sources=current, targets=proposals,
                older_concepts=[t for t, lv in accepted.items() if lv < level])
            report.llm_calls += 1

            proposals, edges = self._correction_loop(
                mission, level, accepted, proposals, edges, report)

            next_level = level + 1
            for concept in proposals:
                kg.add_node(concept, level=next_level)
                accepted[concept] = next_level
            proposal_set = set(proposals)
            text_to_id = {n.text: n.node_id for n in kg.concept_nodes()}
            added_pairs: set[tuple[str, str]] = set()
            for edge in edges:
                if edge.target not in proposal_set or (edge.source, edge.target) in added_pairs:
                    continue
                kg.add_edge(text_to_id[edge.source], text_to_id[edge.target])
                added_pairs.add((edge.source, edge.target))
            # Guarantee connectivity: any orphan new node gets pruned
            # (framework fallback when correction could not wire it).
            for concept in list(proposals):
                node_id = text_to_id[concept]
                if kg.in_degree(node_id) == 0:
                    kg.prune_node(node_id)
                    del accepted[concept]
                    report.nodes_pruned += 1

        kg.attach_terminals()
        kg.validate()
        return kg, report

    # ------------------------------------------------------------------
    # Bounded correction loop
    # ------------------------------------------------------------------
    def _correction_loop(self, mission: str, level: int,
                         accepted: dict[str, int], proposals: list[str],
                         edges: list[EdgeProposal],
                         report: KGGenerationReport,
                         ) -> tuple[list[str], list[EdgeProposal]]:
        cfg = self.config
        for _ in range(cfg.max_correction_iterations):
            errors = self.detect_errors(accepted, proposals, edges, level)
            if not errors:
                return proposals, edges
            report.errors_detected.extend(errors)
            valid_sources = [t for t, lv in accepted.items() if lv == level]
            older = [t for t, lv in accepted.items() if lv < level]
            for error in errors:
                if isinstance(error, DuplicatedConcept):
                    forbidden = set(accepted) | set(proposals)
                    replacement = self.oracle.correct_duplicate(
                        mission, error.concept, forbidden)
                    report.llm_calls += 1
                    # Replace the *last* occurrence of the duplicate.
                    indices = [i for i, p in enumerate(proposals)
                               if p == error.concept]
                    if not indices:
                        continue
                    index = indices[-1]
                    if replacement is not None:
                        old = proposals[index]
                        proposals[index] = replacement
                        edges = [EdgeProposal(e.source, replacement)
                                 if e.target == old and indices.count(index)
                                 else e for e in edges]
                        report.corrections_applied += 1
                elif isinstance(error, InvalidEdge):
                    fixed = self.oracle.correct_edge(
                        level, error.target, valid_sources, older)
                    report.llm_calls += 1
                    edges = [e for e in edges
                             if not (e.source == error.source and e.target == error.target)]
                    if fixed is not None:
                        edges.append(fixed)
                        report.corrections_applied += 1
        # Budget exhausted: prune whatever is still broken (paper fallback).
        errors = self.detect_errors(accepted, proposals, edges, level)
        bad_concepts = {e.concept for e in errors if isinstance(e, DuplicatedConcept)}
        bad_edges = {(e.source, e.target) for e in errors if isinstance(e, InvalidEdge)}
        if bad_concepts:
            report.nodes_pruned += len(bad_concepts)
            proposals = [p for p in proposals if p not in bad_concepts]
            edges = [e for e in edges if e.target not in bad_concepts]
        if bad_edges:
            report.edges_pruned += len(bad_edges)
            edges = [e for e in edges if (e.source, e.target) not in bad_edges]
        return proposals, edges
