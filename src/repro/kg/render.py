"""ASCII rendering of reasoning KGs.

Terminal-friendly views of the hierarchical DAG for the CLI, examples and
debugging: a level-by-level tree showing each node's parents, and a compact
adjacency view.  The paper stresses that the adapted KG stays
"human-readable"; these renderers are the reading glasses.
"""

from __future__ import annotations

from .graph import ReasoningKG

__all__ = ["render_levels", "render_adjacency"]


def render_levels(kg: ReasoningKG, max_width: int = 78) -> str:
    """Level-by-level rendering with per-node parent lists.

    Example output::

        L0  <sensor>
        L1  sneaky                    <- <sensor>
        ...
    """
    lines: list[str] = []
    text_of = {n.node_id: n.text for n in kg.nodes()}
    for level in range(kg.depth + 2):
        nodes = kg.nodes_at_level(level)
        if not nodes:
            continue
        for i, node in enumerate(nodes):
            prefix = f"L{level} " if i == 0 else "   "
            parents = [text_of[p] for p in kg.predecessors(node.node_id)]
            line = f"{prefix} {node.text}"
            if parents:
                arrows = " <- " + ", ".join(parents)
                if len(line) + len(arrows) > max_width:
                    arrows = f" <- ({len(parents)} parents)"
                line += arrows
            lines.append(line)
    return "\n".join(lines)


def render_adjacency(kg: ReasoningKG) -> str:
    """Compact ``source -> target`` edge listing grouped by source level."""
    text_of = {n.node_id: n.text for n in kg.nodes()}
    lines: list[str] = []
    for level in range(kg.depth + 1):
        edges = [(s, d) for (s, d) in kg.edges()
                 if kg.node(s).level == level]
        if not edges:
            continue
        lines.append(f"-- level {level} -> {level + 1} --")
        by_source: dict[int, list[int]] = {}
        for s, d in edges:
            by_source.setdefault(s, []).append(d)
        for s in sorted(by_source):
            targets = ", ".join(text_of[d] for d in sorted(by_source[s]))
            lines.append(f"  {text_of[s]} -> {targets}")
    return "\n".join(lines)
