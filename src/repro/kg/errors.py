"""Error types for KG generation and validation.

The paper's expansion loop (Fig. 3) checks each new level for exactly two
error classes: *Duplicated Concepts* (a node repeating a concept already
present at a previous level) and *Invalid Edges* (edges violating the rule
that edges connect level i only to level i+1).  We model both as structured
records so the error-correction loop can act on them, plus exceptions for
hard invariant violations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "KGError",
    "DuplicatedConcept",
    "InvalidEdge",
    "KGStructureError",
    "UnknownNodeError",
]


class KGStructureError(ValueError):
    """Raised when an operation would break the hierarchical DAG invariants."""


class UnknownNodeError(KeyError):
    """Raised when referencing a node id that is not in the graph."""


@dataclass(frozen=True)
class KGError:
    """Base class for detectable generation errors."""

    description: str


@dataclass(frozen=True)
class DuplicatedConcept(KGError):
    """A proposed concept duplicates one already present at any level."""

    concept: str = ""
    existing_level: int = -1


@dataclass(frozen=True)
class InvalidEdge(KGError):
    """A proposed edge does not connect consecutive levels."""

    source: str = ""
    target: str = ""
    source_level: int = -1
    target_level: int = -1
