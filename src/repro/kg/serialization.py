"""Reasoning-KG persistence.

Deployment (paper Fig. 2C) ships the cloud-generated KG — structure plus
token embeddings — to the edge device.  We serialize to a single JSON file
with embedded base64 float arrays so a deployment is one artifact.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

import numpy as np

from ..utils.serialization import atomic_write_json
from .graph import EMBEDDING_TEXT, SENSOR_TEXT, KGNode, ReasoningKG

__all__ = ["save_kg", "load_kg", "kg_to_dict", "kg_from_dict"]


def _encode_array(array: np.ndarray) -> dict:
    return {
        "shape": list(array.shape),
        "data": base64.b64encode(array.astype(np.float64).tobytes()).decode("ascii"),
    }


def _decode_array(payload: dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    return np.frombuffer(raw, dtype=np.float64).reshape(payload["shape"]).copy()


def kg_to_dict(kg: ReasoningKG) -> dict:
    """Convert a KG (including token embeddings) to a JSON-safe dict."""
    nodes = []
    for node in kg.nodes():
        entry: dict = {"id": node.node_id, "text": node.text, "level": node.level}
        if node.token_ids is not None:
            entry["token_ids"] = list(node.token_ids)
        if node.token_embeddings is not None:
            entry["token_embeddings"] = _encode_array(node.token_embeddings)
        nodes.append(entry)
    return {
        "mission": kg.mission,
        "depth": kg.depth,
        "sensor_id": kg.sensor_id,
        "embedding_id": kg.embedding_id,
        "nodes": nodes,
        "edges": [list(e) for e in kg.edges()],
    }


def kg_from_dict(payload: dict) -> ReasoningKG:
    """Rebuild a KG from :func:`kg_to_dict` output; validates invariants."""
    kg = ReasoningKG(mission=payload["mission"], depth=int(payload["depth"]))
    max_id = -1
    for entry in payload["nodes"]:
        node = KGNode(node_id=int(entry["id"]), text=entry["text"],
                      level=int(entry["level"]))
        if "token_ids" in entry:
            node.token_ids = [int(i) for i in entry["token_ids"]]
        if "token_embeddings" in entry:
            node.token_embeddings = _decode_array(entry["token_embeddings"])
        kg._nodes[node.node_id] = node
        max_id = max(max_id, node.node_id)
        if node.text == SENSOR_TEXT:
            kg.sensor_id = node.node_id
        elif node.text == EMBEDDING_TEXT:
            kg.embedding_id = node.node_id
    kg._next_id = max_id + 1
    for source, target in payload["edges"]:
        kg._edges.add((int(source), int(target)))
    kg.validate()
    return kg


def save_kg(kg: ReasoningKG, path: str | Path) -> None:
    atomic_write_json(path, kg_to_dict(kg))


def load_kg(path: str | Path) -> ReasoningKG:
    return kg_from_dict(json.loads(Path(path).read_text()))
