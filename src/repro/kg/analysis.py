"""Knowledge-graph analysis: statistics and adaptation diffing.

Operational tooling around the reasoning KG:

* :func:`kg_statistics` — structural metrics (level widths, density,
  reachability) used to sanity-check generated KGs and to monitor
  structural drift during deployment;
* :class:`KGDiff` — compares two snapshots of a KG (e.g. at deployment
  time vs after a month of adaptation): which nodes were pruned/created
  and how far each surviving node's token embeddings moved.  This is the
  quantitative companion of the paper's qualitative Fig. 6.

networkx is used for the graph-theoretic measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .graph import ReasoningKG

__all__ = ["kg_statistics", "KGDiff", "diff_kgs", "to_networkx"]


def to_networkx(kg: ReasoningKG) -> nx.DiGraph:
    """Convert a reasoning KG to a networkx DiGraph (node attrs: text, level)."""
    graph = nx.DiGraph()
    for node in kg.nodes():
        graph.add_node(node.node_id, text=node.text, level=node.level)
    graph.add_edges_from(kg.edges())
    return graph


def kg_statistics(kg: ReasoningKG) -> dict:
    """Structural metrics of a reasoning KG.

    Returns level widths, edge density per level transition, the fraction
    of concept nodes on a sensor->embedding path, and the mean fan-in.
    """
    graph = to_networkx(kg)
    stats: dict = {
        "num_nodes": kg.num_nodes,
        "num_edges": kg.num_edges,
        "depth": kg.depth,
        "level_widths": {level: len(kg.nodes_at_level(level))
                         for level in range(kg.depth + 2)},
    }
    if kg.sensor_id is not None and kg.embedding_id is not None:
        reachable_from_sensor = nx.descendants(graph, kg.sensor_id)
        reaching_embedding = nx.ancestors(graph, kg.embedding_id)
        on_path = reachable_from_sensor & reaching_embedding
        concepts = [n.node_id for n in kg.concept_nodes()]
        stats["on_path_fraction"] = (
            len(on_path & set(concepts)) / len(concepts) if concepts else 0.0)
        stats["is_dag"] = nx.is_directed_acyclic_graph(graph)
        path_lengths = []
        try:
            path_lengths = [len(p) - 1 for p in nx.all_simple_paths(
                graph, kg.sensor_id, kg.embedding_id)]
        except nx.NetworkXNoPath:  # pragma: no cover - degenerate KG
            pass
        stats["num_reasoning_paths"] = len(path_lengths)
    in_degrees = [kg.in_degree(n.node_id) for n in kg.concept_nodes()]
    stats["mean_fan_in"] = float(np.mean(in_degrees)) if in_degrees else 0.0
    return stats


@dataclass
class NodeDrift:
    """Token-embedding movement of one surviving node between snapshots."""

    node_id: int
    text: str
    level: int
    l2_distance: float
    cosine_to_original: float


@dataclass
class KGDiff:
    """Structural + embedding changes between two KG snapshots."""

    pruned: list[str] = field(default_factory=list)
    created: list[str] = field(default_factory=list)
    drifts: list[NodeDrift] = field(default_factory=list)
    edges_removed: int = 0
    edges_added: int = 0

    @property
    def max_drift(self) -> NodeDrift | None:
        return max(self.drifts, key=lambda d: d.l2_distance, default=None)

    @property
    def mean_drift(self) -> float:
        return float(np.mean([d.l2_distance for d in self.drifts])) \
            if self.drifts else 0.0

    def summary(self) -> str:
        lines = [
            f"pruned nodes:   {len(self.pruned)} {self.pruned}",
            f"created nodes:  {len(self.created)} {self.created}",
            f"edges removed/added: {self.edges_removed}/{self.edges_added}",
            f"mean token drift (L2): {self.mean_drift:.4f}",
        ]
        top = self.max_drift
        if top is not None:
            lines.append(f"most-drifted node: {top.text!r} "
                         f"(L{top.level}, L2={top.l2_distance:.4f}, "
                         f"cos-to-original={top.cosine_to_original:.3f})")
        return "\n".join(lines)


def diff_kgs(before: ReasoningKG, after: ReasoningKG) -> KGDiff:
    """Diff two snapshots of the *same* deployment's KG."""
    before_ids = {n.node_id: n for n in before.concept_nodes()}
    after_ids = {n.node_id: n for n in after.concept_nodes()}
    diff = KGDiff(
        pruned=[before_ids[i].text for i in sorted(set(before_ids) - set(after_ids))],
        created=[after_ids[i].text for i in sorted(set(after_ids) - set(before_ids))],
    )
    before_edges = set(before.edges())
    after_edges = set(after.edges())
    diff.edges_removed = len(before_edges - after_edges)
    diff.edges_added = len(after_edges - before_edges)

    for node_id in sorted(set(before_ids) & set(after_ids)):
        old = before_ids[node_id].token_embeddings
        new = after_ids[node_id].token_embeddings
        if old is None or new is None or old.shape != new.shape:
            continue
        l2 = float(np.linalg.norm(new - old))
        denom = max(np.linalg.norm(old.mean(axis=0))
                    * np.linalg.norm(new.mean(axis=0)), 1e-12)
        cosine = float(old.mean(axis=0) @ new.mean(axis=0) / denom)
        diff.drifts.append(NodeDrift(
            node_id=node_id, text=before_ids[node_id].text,
            level=before_ids[node_id].level,
            l2_distance=l2, cosine_to_original=cosine))
    return diff
