"""Hierarchical reasoning knowledge graphs: structure, generation, persistence."""

from .errors import (
    DuplicatedConcept,
    InvalidEdge,
    KGError,
    KGStructureError,
    UnknownNodeError,
)
from .graph import KGNode, ReasoningKG
from .generation import KGGenerationConfig, KGGenerationReport, KGGenerator
from .analysis import KGDiff, diff_kgs, kg_statistics, to_networkx
from .render import render_adjacency, render_levels
from .serialization import kg_from_dict, kg_to_dict, load_kg, save_kg

__all__ = [
    "ReasoningKG",
    "KGNode",
    "KGGenerator",
    "KGGenerationConfig",
    "KGGenerationReport",
    "KGError",
    "DuplicatedConcept",
    "InvalidEdge",
    "KGStructureError",
    "UnknownNodeError",
    "save_kg",
    "kg_statistics",
    "KGDiff",
    "diff_kgs",
    "to_networkx",
    "render_levels",
    "render_adjacency",
    "load_kg",
    "kg_to_dict",
    "kg_from_dict",
]
