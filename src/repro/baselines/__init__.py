"""Classical anomaly-detection baselines over the joint embedding space.

The paper compares against its own cloud-update baseline; these detectors
add the standard non-KG reference points a reviewer would ask for: given
the same frozen frame embeddings, how far does MissionGNN-style reasoning
actually move the needle over (a) distance-to-normal one-class detection,
(b) k-nearest-neighbour scoring, and (c) a plain supervised MLP?

All baselines consume *frame windows* through the same
``fit(windows, labels)`` / ``anomaly_scores(windows)`` interface as
:class:`repro.gnn.MissionGNNModel`, so harnesses can swap them in directly.
"""

from .classical import KNNDetector, MahalanobisDetector, NearestCentroidDetector
from .mlp import MLPClassifierBaseline

__all__ = [
    "NearestCentroidDetector",
    "MahalanobisDetector",
    "KNNDetector",
    "MLPClassifierBaseline",
]
