"""Supervised MLP baseline on pooled joint-space embeddings.

A two-layer perceptron trained with the same optimizer family as the main
model but with no KG, no GNN, and no temporal transformer — the ceiling a
"just use the embeddings" approach reaches.  Comparing it against
MissionGNN isolates the contribution of structured reasoning, and — more
importantly for this paper — it has no token embeddings, so it *cannot* be
adapted on the edge without touching model weights.
"""

from __future__ import annotations

import numpy as np

from ..embedding.joint_space import JointEmbeddingModel
from ..nn.layers import Dense, Module, ReLU, Sequential
from ..nn.losses import cross_entropy
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..utils.rng import derive_rng

__all__ = ["MLPClassifierBaseline"]


class MLPClassifierBaseline(Module):
    """Binary normal/anomalous classifier over pooled window embeddings."""

    def __init__(self, embedding_model: JointEmbeddingModel,
                 hidden_dim: int = 64, seed: int = 7):
        super().__init__()
        self.embedding_model = embedding_model
        rng = derive_rng(seed, "mlp-baseline")
        self.net = Sequential(
            Dense(embedding_model.joint_dim, hidden_dim, rng),
            ReLU(),
            Dense(hidden_dim, 2, rng),
        )
        self._fitted = False

    def _embed(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (B, T, frame_dim), got {windows.shape}")
        batch, length, frame_dim = windows.shape
        flat = self.embedding_model.encode_image(
            windows.reshape(batch * length, frame_dim))
        return flat.reshape(batch, length, -1).mean(axis=1)

    def fit(self, windows: np.ndarray, labels: np.ndarray,
            steps: int = 200, batch_size: int = 32,
            learning_rate: float = 1e-3, seed: int = 7) -> "MLPClassifierBaseline":
        embeddings = self._embed(windows)
        labels = np.asarray(labels, dtype=np.int64).clip(0, 1)
        if embeddings.shape[0] == 0:
            raise ValueError("empty training set")
        optimizer = Adam(list(self.parameters()), lr=learning_rate)
        rng = derive_rng(seed, "mlp-trainer")
        normal_idx = np.flatnonzero(labels == 0)
        anomaly_idx = np.flatnonzero(labels == 1)
        self.train()
        for _ in range(steps):
            if normal_idx.size and anomaly_idx.size:
                half = max(batch_size // 2, 1)
                idx = np.concatenate([
                    rng.choice(normal_idx, half, replace=normal_idx.size < half),
                    rng.choice(anomaly_idx, half, replace=anomaly_idx.size < half)])
            else:
                idx = rng.choice(embeddings.shape[0],
                                 min(batch_size, embeddings.shape[0]),
                                 replace=False)
            logits = self.net(Tensor(embeddings[idx]))
            loss = cross_entropy(logits, labels[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        self.eval()
        self._fitted = True
        return self

    def anomaly_scores(self, windows: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("baseline is not fitted; call fit() first")
        embeddings = self._embed(windows)
        with no_grad():
            probs = self.net(Tensor(embeddings)).softmax(axis=-1)
        return probs.numpy()[:, 1]
