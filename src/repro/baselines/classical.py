"""Classical (non-learned / lazily-learned) anomaly detectors.

Each detector embeds frame windows with the frozen image encoder, pools
over time, and scores by geometry in the joint space:

* :class:`NearestCentroidDetector` — distance to the mean of normal
  embeddings (the simplest one-class rule);
* :class:`MahalanobisDetector` — covariance-corrected distance to the
  normal distribution (shrinkage-regularized);
* :class:`KNNDetector` — mean distance to the k nearest normal training
  embeddings (a strong classical one-class baseline).

All are *one-class*: they fit on normal windows only and ignore anomaly
labels, mirroring how such detectors are deployed.
"""

from __future__ import annotations

import numpy as np

from ..embedding.joint_space import JointEmbeddingModel

__all__ = ["NearestCentroidDetector", "MahalanobisDetector", "KNNDetector"]


class _EmbeddingDetector:
    """Shared plumbing: encode windows -> pooled joint-space embeddings."""

    def __init__(self, embedding_model: JointEmbeddingModel):
        self.embedding_model = embedding_model
        self._fitted = False

    def _embed(self, windows: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (B, T, frame_dim), got {windows.shape}")
        batch, length, frame_dim = windows.shape
        flat = self.embedding_model.encode_image(
            windows.reshape(batch * length, frame_dim))
        return flat.reshape(batch, length, -1).mean(axis=1)

    def _normals(self, windows: np.ndarray, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels)
        normals = self._embed(windows)[labels == 0]
        if normals.shape[0] == 0:
            raise ValueError("one-class baselines need at least one normal window")
        return normals

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("detector is not fitted; call fit() first")


class NearestCentroidDetector(_EmbeddingDetector):
    """Score = Euclidean distance to the centroid of normal embeddings."""

    def fit(self, windows: np.ndarray, labels: np.ndarray) -> "NearestCentroidDetector":
        self._centroid = self._normals(windows, labels).mean(axis=0)
        self._fitted = True
        return self

    def anomaly_scores(self, windows: np.ndarray) -> np.ndarray:
        self._check_fitted()
        embeddings = self._embed(windows)
        return np.linalg.norm(embeddings - self._centroid[None, :], axis=1)


class MahalanobisDetector(_EmbeddingDetector):
    """Score = Mahalanobis distance to the normal distribution.

    Uses Ledoit-Wolf-style shrinkage toward the scaled identity so the
    covariance stays invertible with few normal samples.
    """

    def __init__(self, embedding_model: JointEmbeddingModel,
                 shrinkage: float = 0.1):
        super().__init__(embedding_model)
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        self.shrinkage = shrinkage

    def fit(self, windows: np.ndarray, labels: np.ndarray) -> "MahalanobisDetector":
        normals = self._normals(windows, labels)
        self._mean = normals.mean(axis=0)
        centered = normals - self._mean
        dim = normals.shape[1]
        cov = centered.T @ centered / max(normals.shape[0] - 1, 1)
        target = np.trace(cov) / dim * np.eye(dim)
        cov = (1 - self.shrinkage) * cov + self.shrinkage * target
        self._precision = np.linalg.pinv(cov)
        self._fitted = True
        return self

    def anomaly_scores(self, windows: np.ndarray) -> np.ndarray:
        self._check_fitted()
        centered = self._embed(windows) - self._mean[None, :]
        return np.sqrt(np.maximum(
            np.einsum("bi,ij,bj->b", centered, self._precision, centered), 0.0))


class KNNDetector(_EmbeddingDetector):
    """Score = mean Euclidean distance to the k nearest normal embeddings."""

    def __init__(self, embedding_model: JointEmbeddingModel, k: int = 5):
        super().__init__(embedding_model)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def fit(self, windows: np.ndarray, labels: np.ndarray) -> "KNNDetector":
        self._bank = self._normals(windows, labels)
        self._fitted = True
        return self

    def anomaly_scores(self, windows: np.ndarray) -> np.ndarray:
        self._check_fitted()
        embeddings = self._embed(windows)
        k = min(self.k, self._bank.shape[0])
        distances = np.linalg.norm(
            embeddings[:, None, :] - self._bank[None, :, :], axis=2)
        nearest = np.partition(distances, k - 1, axis=1)[:, :k]
        return nearest.mean(axis=1)
