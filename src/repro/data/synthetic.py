"""Synthetic surveillance frame and video generation.

Frames are generated *in the concept space*: a frame showing anomaly class
``c`` renders a noisy mixture of ``c``'s concept vectors (weighted toward
the class anchor); a normal frame renders a mixture of normal-activity
concepts.  The joint embedding model's image encoder inverts the rendering,
so encoded frames land near the text embeddings of the concepts they
depict — the alignment property the real pipeline gets from ImageBind.

Videos follow UCF-Crime's structure: *untrimmed* sequences, mostly normal,
with one contiguous anomaly segment in anomalous videos, and per-frame
ground-truth labels for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..concepts.ontology import ANOMALY_CLASSES
from ..embedding.joint_space import JointEmbeddingModel

__all__ = ["FrameGenerator", "Video", "make_windows"]


def _normalize(v: np.ndarray) -> np.ndarray:
    return v / max(np.linalg.norm(v), 1e-12)


@dataclass
class Video:
    """An untrimmed synthetic video.

    Attributes
    ----------
    frames:
        (num_frames, frame_dim) raw frame features.
    labels:
        (num_frames,) ints — 0 for normal frames, 1 for anomalous frames.
    anomaly_class:
        The anomaly depicted in the anomalous segment, or None.
    segment:
        (start, stop) frame range of the anomaly, or None.
    """

    frames: np.ndarray
    labels: np.ndarray
    anomaly_class: str | None = None
    segment: tuple[int, int] | None = None

    @property
    def num_frames(self) -> int:
        return self.frames.shape[0]

    @property
    def is_anomalous(self) -> bool:
        return self.anomaly_class is not None


class FrameGenerator:
    """Renders class-conditioned synthetic frames through the joint model."""

    def __init__(self, embedding_model: JointEmbeddingModel, seed: int = 7,
                 anchor_weight: float = 1.0, normal_anchor_weight: float = 0.15,
                 concept_weight: float = 0.8,
                 concepts_per_frame: int = 3, semantic_noise: float = 0.35,
                 sensor_noise: float = 0.35):
        self.model = embedding_model
        self.seed = seed
        self.anchor_weight = anchor_weight
        self.normal_anchor_weight = normal_anchor_weight
        self.concept_weight = concept_weight
        self.concepts_per_frame = concepts_per_frame
        self.semantic_noise = semantic_noise
        self.sensor_noise = sensor_noise
        ontology = embedding_model.concept_space.ontology
        self._class_concepts = {
            name: [c.text for c in ontology.concepts_for_class(name)]
            for name in ANOMALY_CLASSES
        }
        self._normal_concepts = [c.text for c in ontology.normal_concepts()]
        self._pool_matrices: dict[tuple[str, ...], np.ndarray] = {}

    def _pool_matrix(self, pool: list[str]) -> np.ndarray:
        """Concept vectors for ``pool`` stacked once (batched mixture path)."""
        key = tuple(pool)
        if key not in self._pool_matrices:
            space = self.model.concept_space
            self._pool_matrices[key] = np.stack(
                [space.concept_vector(text) for text in pool])
        return self._pool_matrices[key]

    # ------------------------------------------------------------------
    def _mixture(self, anchor: np.ndarray, pool: list[str],
                 rng: np.random.Generator,
                 anchor_weight: float | None = None) -> np.ndarray:
        space = self.model.concept_space
        if anchor_weight is None:
            anchor_weight = self.anchor_weight
        semantic = anchor_weight * anchor
        k = min(self.concepts_per_frame, len(pool))
        for index in rng.choice(len(pool), size=k, replace=False):
            semantic = semantic + (self.concept_weight / k) * space.concept_vector(
                pool[index])
        semantic = semantic + self.semantic_noise * rng.normal(size=space.dim)
        return _normalize(semantic)

    def anomaly_frame(self, anomaly_class: str, rng: np.random.Generator) -> np.ndarray:
        """One raw frame feature depicting ``anomaly_class``."""
        if anomaly_class not in self._class_concepts:
            raise KeyError(f"unknown anomaly class: {anomaly_class!r}")
        semantic = self._mixture(
            self.model.concept_space.class_anchor(anomaly_class),
            self._class_concepts[anomaly_class], rng)
        return self.model.render_semantic(semantic, rng=rng, noise=self.sensor_noise)

    def normal_frame(self, rng: np.random.Generator) -> np.ndarray:
        """One raw frame feature of normal surveillance activity."""
        semantic = self._mixture(self.model.concept_space.normal_anchor(),
                                 self._normal_concepts, rng,
                                 anchor_weight=self.normal_anchor_weight)
        return self.model.render_semantic(semantic, rng=rng, noise=self.sensor_noise)

    # ------------------------------------------------------------------
    # Batched generation (bit-identical to the per-frame methods)
    # ------------------------------------------------------------------
    def _frames_batch(self, count: int, anchor: np.ndarray, pool: list[str],
                      rng: np.random.Generator,
                      anchor_weight: float) -> np.ndarray:
        """``count`` frames in bulk, bit-identical to ``count`` sequential
        single-frame calls on the same generator state.

        Bit-exactness constrains the implementation: the RNG draws stay in
        the original per-frame interleaved order (concept choice, semantic
        noise, sensor noise — ``choice`` consumes a data-dependent amount
        of the bit stream, so draws cannot be hoisted across frames), and
        row norms / renders stay per-row (batched reductions and GEMMs
        accumulate in a different order).  Everything else — the mixture
        accumulation, noise application, normalization — is elementwise
        and vectorizes exactly.
        """
        space = self.model.concept_space
        dim = space.dim
        frame_dim = self.model.frame_dim
        if count == 0:
            return np.empty((0, frame_dim))
        k = min(self.concepts_per_frame, len(pool))
        choices = np.empty((count, k), dtype=np.intp)
        semantic_noise = np.empty((count, dim))
        sensor_noise = (np.empty((count, frame_dim))
                        if self.sensor_noise > 0 else None)
        for index in range(count):
            choices[index] = rng.choice(len(pool), size=k, replace=False)
            semantic_noise[index] = rng.normal(size=dim)
            if sensor_noise is not None:
                sensor_noise[index] = rng.normal(0.0, self.sensor_noise,
                                                 size=frame_dim)
        pool_matrix = self._pool_matrix(pool)
        semantics = np.tile(anchor_weight * anchor, (count, 1))
        for pick in range(k):
            semantics = semantics + (self.concept_weight / k) * pool_matrix[
                choices[:, pick]]
        semantics = semantics + self.semantic_noise * semantic_noise
        norms = np.empty(count)
        for index in range(count):
            norms[index] = max(np.linalg.norm(semantics[index]), 1e-12)
        semantics = semantics / norms[:, None]
        frames = self.model.render_semantics(semantics)
        if sensor_noise is not None:
            frames = frames + sensor_noise
        return frames

    def anomaly_frames(self, anomaly_class: str, count: int,
                       rng: np.random.Generator) -> np.ndarray:
        """``count`` raw frames of ``anomaly_class``, bit-identical to
        ``count`` sequential :meth:`anomaly_frame` calls."""
        if anomaly_class not in self._class_concepts:
            raise KeyError(f"unknown anomaly class: {anomaly_class!r}")
        return self._frames_batch(
            count, self.model.concept_space.class_anchor(anomaly_class),
            self._class_concepts[anomaly_class], rng, self.anchor_weight)

    def normal_frames(self, count: int,
                      rng: np.random.Generator) -> np.ndarray:
        """``count`` raw normal frames, bit-identical to ``count``
        sequential :meth:`normal_frame` calls."""
        return self._frames_batch(
            count, self.model.concept_space.normal_anchor(),
            self._normal_concepts, rng, self.normal_anchor_weight)

    # ------------------------------------------------------------------
    def normal_video(self, num_frames: int, rng: np.random.Generator) -> Video:
        frames = np.stack([self.normal_frame(rng) for _ in range(num_frames)])
        return Video(frames=frames, labels=np.zeros(num_frames, dtype=np.int64))

    def anomalous_video(self, anomaly_class: str, num_frames: int,
                        rng: np.random.Generator,
                        min_segment: float = 0.2, max_segment: float = 0.6) -> Video:
        """Untrimmed video: normal lead-in, anomaly segment, normal tail."""
        seg_len = int(num_frames * rng.uniform(min_segment, max_segment))
        seg_len = max(seg_len, 1)
        start = int(rng.integers(0, num_frames - seg_len + 1))
        stop = start + seg_len
        frames, labels = [], np.zeros(num_frames, dtype=np.int64)
        for t in range(num_frames):
            if start <= t < stop:
                frames.append(self.anomaly_frame(anomaly_class, rng))
                labels[t] = 1
            else:
                frames.append(self.normal_frame(rng))
        return Video(frames=np.stack(frames), labels=labels,
                     anomaly_class=anomaly_class, segment=(start, stop))


def make_windows(video: Video, window: int,
                 stride: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Slice a video into (num_windows, T, frame_dim) with last-frame labels.

    The temporal model scores the *last* frame of each window (the paper's
    f'_t corresponds to frame t given frames t-T+1..t), so each window takes
    the label of its final frame.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if video.num_frames < window:
        raise ValueError(f"video has {video.num_frames} frames < window {window}")
    starts = range(0, video.num_frames - window + 1, stride)
    windows = np.stack([video.frames[s:s + window] for s in starts])
    labels = np.array([video.labels[s + window - 1] for s in starts], dtype=np.int64)
    return windows, labels
