"""SyntheticUCFCrime: the UCF-Crime-shaped evaluation dataset.

UCF-Crime (Sultani et al., 2018) has 1 900 untrimmed surveillance videos
over 13 anomaly classes: a training split of 800 normal + 810 anomalous
videos and a testing split of 150 normal + 140 anomalous videos.  This
module reproduces that schema synthetically with a ``scale`` knob (the
experiments use a fraction of the full 1 900 videos to stay laptop-fast;
``scale=1.0`` yields the paper-exact counts).

Videos are materialized lazily and cached, so constructing the dataset is
cheap and experiments touch only the classes they use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..concepts.ontology import ANOMALY_CLASSES
from ..utils.rng import derive_rng
from .synthetic import FrameGenerator, Video, make_windows

__all__ = ["UCFCrimeSplit", "SyntheticUCFCrime"]

# Paper-exact split sizes.
_TRAIN_NORMAL, _TRAIN_ANOMALOUS = 800, 810
_TEST_NORMAL, _TEST_ANOMALOUS = 150, 140


@dataclass(frozen=True)
class _VideoKey:
    split: str           # "train" | "test"
    kind: str            # "normal" | anomaly class name
    index: int


@dataclass
class UCFCrimeSplit:
    """Video keys belonging to one split."""

    normal: list[_VideoKey]
    anomalous: list[_VideoKey]

    @property
    def num_videos(self) -> int:
        return len(self.normal) + len(self.anomalous)


class SyntheticUCFCrime:
    """Lazily-materialized synthetic UCF-Crime.

    Parameters
    ----------
    generator:
        Class-conditioned frame generator.
    scale:
        Fraction of the full 1 900-video corpus to expose (>= one video per
        anomaly class is always kept).
    frames_per_video:
        Length of each untrimmed video.
    seed:
        Determinism root — every video is a pure function of (seed, key).
    """

    def __init__(self, generator: FrameGenerator, scale: float = 1.0,
                 frames_per_video: int = 48, seed: int = 7):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.generator = generator
        self.scale = scale
        self.frames_per_video = frames_per_video
        self.seed = seed
        self._cache: dict[_VideoKey, Video] = {}

        def scaled(count: int, minimum: int = 1) -> int:
            return max(int(round(count * scale)), minimum)

        def anomaly_keys(split: str, total: int) -> list[_VideoKey]:
            per_class = max(total // len(ANOMALY_CLASSES), 1)
            keys = []
            for name in ANOMALY_CLASSES:
                keys.extend(_VideoKey(split, name, i) for i in range(per_class))
            return keys

        self.train = UCFCrimeSplit(
            normal=[_VideoKey("train", "normal", i)
                    for i in range(scaled(_TRAIN_NORMAL))],
            anomalous=anomaly_keys("train", scaled(_TRAIN_ANOMALOUS,
                                                   len(ANOMALY_CLASSES))))
        self.test = UCFCrimeSplit(
            normal=[_VideoKey("test", "normal", i)
                    for i in range(scaled(_TEST_NORMAL))],
            anomalous=anomaly_keys("test", scaled(_TEST_ANOMALOUS,
                                                  len(ANOMALY_CLASSES))))

    # ------------------------------------------------------------------
    # Video materialization
    # ------------------------------------------------------------------
    def video(self, key: _VideoKey) -> Video:
        if key not in self._cache:
            rng = derive_rng(self.seed, "video", key.split, key.kind, key.index)
            if key.kind == "normal":
                self._cache[key] = self.generator.normal_video(
                    self.frames_per_video, rng)
            else:
                self._cache[key] = self.generator.anomalous_video(
                    key.kind, self.frames_per_video, rng)
        return self._cache[key]

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Task views
    # ------------------------------------------------------------------
    def _split(self, name: str) -> UCFCrimeSplit:
        if name == "train":
            return self.train
        if name == "test":
            return self.test
        raise ValueError("split must be 'train' or 'test'")

    def class_videos(self, split: str, anomaly_class: str,
                     limit: int | None = None) -> list[Video]:
        """Anomalous videos of one class in a split."""
        if anomaly_class not in ANOMALY_CLASSES:
            raise KeyError(f"unknown anomaly class: {anomaly_class!r}")
        keys = [k for k in self._split(split).anomalous if k.kind == anomaly_class]
        if limit is not None:
            keys = keys[:limit]
        return [self.video(k) for k in keys]

    def normal_videos(self, split: str, limit: int | None = None) -> list[Video]:
        keys = self._split(split).normal
        if limit is not None:
            keys = keys[:limit]
        return [self.video(k) for k in keys]

    def mission_windows(self, split: str, anomaly_class: str, window: int,
                        stride: int = 4, normal_videos: int | None = None,
                        anomaly_videos: int | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Binary windows for a single-mission task.

        Returns ``(windows, labels)`` where label 1 marks windows whose last
        frame lies inside an anomaly segment of ``anomaly_class``; label 0
        covers both normal-video windows and normal frames of anomalous
        videos (untrimmed, as in UCF-Crime).
        """
        all_windows, all_labels = [], []
        for video in self.normal_videos(split, limit=normal_videos):
            windows_, labels_ = make_windows(video, window, stride)
            all_windows.append(windows_)
            all_labels.append(labels_)
        for video in self.class_videos(split, anomaly_class, limit=anomaly_videos):
            windows_, labels_ = make_windows(video, window, stride)
            all_windows.append(windows_)
            all_labels.append(labels_)
        return np.concatenate(all_windows), np.concatenate(all_labels)
