"""Synthetic UCF-Crime-shaped data: frames, videos, splits, trend-shift streams."""

from .streams import StreamBatch, TrendShiftConfig, TrendShiftStream
from .synthetic import FrameGenerator, Video, make_windows
from .ucf_crime import SyntheticUCFCrime, UCFCrimeSplit

__all__ = [
    "FrameGenerator",
    "Video",
    "make_windows",
    "SyntheticUCFCrime",
    "UCFCrimeSplit",
    "TrendShiftStream",
    "TrendShiftConfig",
    "StreamBatch",
]
