"""Deployment-time data streams with anomaly-trend shifts (paper Fig. 5).

``TrendShiftStream`` simulates what an edge camera sees after deployment:
a continuing mixture of normal activity and the *current* target anomaly,
where the target switches from an initial class to a new one at a
configured step — a *weak* shift when the classes share a semantic cluster
(Stealing -> Robbery) and a *strong* shift otherwise (Stealing ->
Explosion).  The stream yields frame windows in arrival order, which is
exactly what the continuous-adaptation monitor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..concepts.ontology import ConceptOntology
from ..utils.rng import derive_rng
from .synthetic import FrameGenerator

__all__ = ["TrendShiftConfig", "StreamBatch", "TrendShiftStream"]


@dataclass
class TrendShiftConfig:
    """Stream shape.

    ``steps_before_shift`` adaptation steps see ``initial_class``; the
    remaining ``steps_after_shift`` see ``shifted_class``.  Each step
    delivers ``windows_per_step`` windows with ``anomaly_fraction`` of them
    anomalous (frame windows are homogeneous: all-normal or all-anomalous
    frames, approximating the anomaly segments of untrimmed footage).
    """

    initial_class: str = "Stealing"
    shifted_class: str = "Robbery"
    steps_before_shift: int = 8
    steps_after_shift: int = 16
    windows_per_step: int = 24
    anomaly_fraction: float = 0.3
    window: int = 8
    seed: int = 7

    @property
    def total_steps(self) -> int:
        return self.steps_before_shift + self.steps_after_shift

    @property
    def shift_strength(self) -> str:
        return ConceptOntology.shift_strength(self.initial_class, self.shifted_class)


@dataclass
class StreamBatch:
    """One adaptation step's worth of arrivals.

    ``labels`` are ground truth for *evaluation only* — the edge device
    never sees them (it pseudo-labels via the score monitor).
    """

    step: int
    active_class: str
    windows: np.ndarray          # (n, T, frame_dim)
    labels: np.ndarray           # (n,) 0 normal / 1 anomalous
    is_post_shift: bool


class TrendShiftStream:
    """Iterable over :class:`StreamBatch` objects."""

    def __init__(self, generator: FrameGenerator, config: TrendShiftConfig):
        self.generator = generator
        self.config = config

    def active_class_at(self, step: int) -> str:
        cfg = self.config
        return cfg.initial_class if step < cfg.steps_before_shift else cfg.shifted_class

    def batch(self, step: int) -> StreamBatch:
        """Deterministically materialize the batch for ``step``.

        Frames are generated in bulk through the generator's batched path,
        which is bit-identical to the original per-frame loop (locked by
        golden-value tests over the default seeds): windows here dominate
        stream-generation cost at fleet scale, where every serving round
        materializes arrivals for dozens of streams.
        """
        cfg = self.config
        if not 0 <= step < cfg.total_steps:
            raise IndexError(f"step {step} outside [0, {cfg.total_steps})")
        active = self.active_class_at(step)
        rng = derive_rng(cfg.seed, "stream", step)
        n_anomalous = int(round(cfg.windows_per_step * cfg.anomaly_fraction))
        n_normal = cfg.windows_per_step - n_anomalous
        frame_dim = self.generator.model.frame_dim
        normal = self.generator.normal_frames(
            n_normal * cfg.window, rng).reshape(n_normal, cfg.window, frame_dim)
        anomalous = self.generator.anomaly_frames(
            active, n_anomalous * cfg.window,
            rng).reshape(n_anomalous, cfg.window, frame_dim)
        windows = np.concatenate([normal, anomalous])
        labels = np.concatenate([np.zeros(n_normal, dtype=np.int64),
                                 np.ones(n_anomalous, dtype=np.int64)])
        order = rng.permutation(cfg.windows_per_step)
        return StreamBatch(
            step=step,
            active_class=active,
            windows=windows[order],
            labels=labels[order],
            is_post_shift=step >= cfg.steps_before_shift)

    def __iter__(self):
        for step in range(self.config.total_steps):
            yield self.batch(step)

    def __len__(self) -> int:
        return self.config.total_steps
