"""Sharded multi-process fleet serving.

:class:`~repro.serving.DeploymentFleet` coalesces N streams into batched
forwards, but the whole fleet still runs in one Python process on one
core: throughput is capped by a single GEMM queue no matter how many
cameras attach.  :class:`ShardedFleet` partitions a fleet across worker
processes — deterministic round-robin shard assignment in stream attach
order — runs one :class:`~repro.serving.MicroBatcher` per shard, and
merges per-round :class:`~repro.serving.FleetEvent` lists back in stable
stream order.

Scores are bit-identical to single-process batched serving: shards own
disjoint streams and disjoint model instances, per-shard coalescing keeps
the row-stable GEMM guarantees, and model/stream state crosses the
process boundary through the existing fleet checkpoint format
(``to_dict``/``from_dict`` are the wire format), whose round-trip is
exact.  Workers are spawn-safe: each child rebuilds the frozen joint
embedding model and frame generator from seeds and the fleet from its
shard's checkpoint payload, so nothing unpicklable is ever shipped.

A whole sharded fleet checkpoints to a *single* file in the plain fleet
format (plus a ``"shards"`` hint), so ``DeploymentFleet.load`` can open a
sharded checkpoint and vice versa.

Like :class:`~repro.serving.DeploymentFleet`, the sharded fleet is a
facade over :class:`~repro.runtime.ServingEngine` — here with a
:class:`~repro.runtime.ShardedBackend` that scatters rounds across the
worker pool, while each worker's in-process fleet runs the same engine
loop over its own shard.

Parent<->worker payloads ride per-shard :mod:`multiprocessing.shared_memory`
ring buffers (:mod:`repro.serving.shm_ring`); the pipe is the control
plane — a ``("shm", length)`` doorbell per message (which also provides
the happens-before edge that makes the lock-free SPSC rings safe under
the fleet's strict request/response alternation), ``("inline", payload)``
fallbacks for messages that outsize a ring, and error/``stop``
signaling.  :meth:`ShardedFleet.transport_stats` counts ring traffic
and pipe fallbacks; ``ring_bytes=0`` turns the rings off entirely.
"""

from __future__ import annotations

import inspect
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..api.config import config_from_dict, config_to_dict
from ..api.deployment import Deployment
from ..data.streams import TrendShiftConfig, TrendShiftStream
from ..data.synthetic import FrameGenerator
from ..errors import (CheckpointError, ConfigError, FleetError,
                      StateError, WorkerError, WorkerStartupError)
from ..obs.trace import new_span_id
from ..runtime.engine import FleetEvent, ServingEngine
from ..utils.serialization import atomic_write_json
from .batcher import ScoreRequest
from .fleet import FLEET_FORMAT_VERSION, DeploymentFleet, build_fleet
from .shm_ring import (DEFAULT_RING_BYTES, RingBuffer, RingError,
                       dumps_message, loads_message)

__all__ = ["FleetInfra", "ShardedFleet", "build_sharded_fleet",
           "partition_fleet_payload"]

#: FrameGenerator hyperparameters that shape generated frames; they must
#: match between the parent's streams and the workers' rebuilt generator
#: or sharded scores silently diverge from single-process serving.
_GENERATOR_PARAMS = ("anchor_weight", "normal_anchor_weight",
                     "concept_weight", "concepts_per_frame",
                     "semantic_noise", "sensor_noise")


def _generator_param_defaults() -> dict:
    signature = inspect.signature(FrameGenerator.__init__)
    return {name: signature.parameters[name].default
            for name in _GENERATOR_PARAMS}


@dataclass(frozen=True)
class FleetInfra:
    """Seeds + hyperparameters from which a worker rebuilds the shared
    infrastructure.

    The joint embedding model and the synthetic frame generator are
    infrastructure shipped once, not per deployment (see
    :meth:`Deployment.load`); across a process boundary "shipped" means
    rebuilt deterministically from seeds.  ``generator_params`` carries
    any non-default :class:`~repro.data.FrameGenerator` hyperparameters
    (which shape the frames streams emit); stream *contents* do not
    depend on the generator's own seed, so that one is carried for
    fidelity, not determinism.
    """

    embedding_seed: int = 7
    generator_seed: int = 7
    generator_params: dict = field(default_factory=dict)

    @classmethod
    def from_pipeline(cls, pipeline) -> "FleetInfra":
        return cls.from_generator(pipeline.config.experiment.seed,
                                  pipeline.generator)

    @classmethod
    def from_generator(cls, embedding_seed: int,
                       generator: FrameGenerator) -> "FleetInfra":
        return cls(embedding_seed=embedding_seed,
                   generator_seed=generator.seed,
                   generator_params={name: getattr(generator, name)
                                     for name in _GENERATOR_PARAMS})

    def effective_generator_params(self) -> dict:
        return {**_generator_param_defaults(), **self.generator_params}

    def build(self):
        """(embedding_model, frame_generator) for one process."""
        from ..embedding.joint_space import build_default_embedding_model
        embedding = build_default_embedding_model(seed=self.embedding_seed)
        return embedding, FrameGenerator(embedding, seed=self.generator_seed,
                                         **self.generator_params)

    def to_payload(self) -> dict:
        return {"embedding_seed": self.embedding_seed,
                "generator_seed": self.generator_seed,
                "generator_params": dict(self.generator_params)}

    @classmethod
    def from_payload(cls, payload: dict) -> "FleetInfra":
        return cls(embedding_seed=int(payload["embedding_seed"]),
                   generator_seed=int(payload["generator_seed"]),
                   generator_params=dict(payload.get("generator_params")
                                         or {}))


def _empty_fleet_payload(max_batch_windows: int | None) -> dict:
    return {"fleet_format_version": FLEET_FORMAT_VERSION,
            "models": [], "slots": [],
            "max_batch_windows": max_batch_windows, "rounds": 0}


def partition_fleet_payload(payload: dict, shards: int) -> list[dict]:
    """Split a whole-fleet checkpoint payload into per-shard payloads.

    Slots are assigned round-robin in stored (= attach) order; each shard
    payload keeps only the models its slots reference, with indices
    remapped, so shared models keep coalescing *within* a shard.
    """
    if shards < 1:
        raise ConfigError("need at least one shard")
    parts = []
    for shard in range(shards):
        entries = [dict(entry) for index, entry in enumerate(payload["slots"])
                   if index % shards == shard]
        model_map: dict[int, int] = {}
        models = []
        for entry in entries:
            old = entry["model_index"]
            if old not in model_map:
                model_map[old] = len(models)
                models.append(payload["models"][old])
            entry["model_index"] = model_map[old]
        parts.append({"fleet_format_version": FLEET_FORMAT_VERSION,
                      "models": models, "slots": entries,
                      "max_batch_windows": payload.get("max_batch_windows"),
                      "rounds": int(payload.get("rounds", 0))})
    return parts


def _shard_worker_main(conn, payload_json: str, infra_payload: dict,
                       ring_names: tuple[str, str] | None = None) -> None:
    """One shard's process: a private DeploymentFleet behind a pipe.

    Module-level so the ``spawn`` start method can import it; every
    request is answered with ``("ok", result)`` or ``("error", message)``
    — worker exceptions surface in the parent instead of killing the
    shard.  Startup failures (bad payload, embedding-fingerprint
    mismatch) are relayed as a ``("fatal", message)`` reply so the
    parent's next request reports the real cause rather than a bare
    EOFError.

    With ``ring_names`` the payload bytes of every request and reply
    ride the parent's shared-memory rings (see
    :mod:`repro.serving.shm_ring`); the pipe carries only transport
    tokens — ``("shm", length)`` doorbells or ``("inline", payload)``
    fallbacks for messages that outsize the ring.
    """
    ring_in = ring_out = None

    def reply(payload: tuple) -> None:
        if ring_out is not None:
            blob = dumps_message(payload)
            if ring_out.write(blob):
                conn.send(("shm", len(blob)))
                return
        conn.send(("inline", payload))

    try:
        if ring_names is not None:
            # (parent->worker, worker->parent), named from the parent's
            # point of view; attaching never unlinks (see RingBuffer).
            ring_in = RingBuffer.attach(ring_names[0])
            ring_out = RingBuffer.attach(ring_names[1])
        embedding, generator = FleetInfra.from_payload(infra_payload).build()
        fleet = DeploymentFleet.from_dict(json.loads(payload_json),
                                          embedding, generator)
    except Exception as exc:  # noqa: BLE001 — relayed to the parent
        try:
            conn.send(("inline", ("fatal", f"worker startup failed: "
                                           f"{type(exc).__name__}: {exc}")))
        finally:
            conn.close()
        return
    bench_rounds: list[list[np.ndarray]] | None = None
    models_by_token: dict[str, object] = {}  # "add"-shipped shared models

    def execute(command: str, args: list):
        """Run one worker command and return its result (dispatch is a
        function so the ``traced`` wrapper below can time any inner
        command without duplicating the table)."""
        nonlocal bench_rounds
        if command == "step":
            return fleet.step(batched=args[0])
        if command == "add":
            entry = args[0]
            # Streams sharing a scoring model in the parent keep
            # sharing it here (the parent ships each model once per
            # shard, keyed by token), so the shard's micro-batcher
            # still coalesces them and snapshots store the model once.
            token = entry.get("model_token")
            deployment = Deployment.from_dict(
                entry["deployment"], embedding,
                model=models_by_token.get(token))
            if token is not None:
                models_by_token[token] = deployment.model
            stream = TrendShiftStream(
                generator,
                config_from_dict(TrendShiftConfig,
                                 entry["stream_config"]))
            slot = fleet.add(entry["name"], deployment, stream)
            slot.cursor = int(entry.get("cursor", 0))
            slot.done = bool(entry.get("done", False))
            return None
        if command == "remove":
            return fleet.remove(args[0]).to_dict(include_model=True)
        if command == "ingest_round":
            arrivals, batched, scores = args
            if scores is not None:
                scores = {name: scores[name] for name in arrivals}
            return fleet.ingest_round(arrivals, batched=batched,
                                      scores=scores)
        if command == "score_only":
            return fleet.score_only(args[0])
        if command == "serve_round":
            # Fused score+ingest: one ring round-trip per wave instead
            # of two.  ``args`` is (arrivals, ingest_names): score every
            # arrival, then ingest the named subset with its precomputed
            # slices — identical per-shard batch composition (and so
            # bit-identical scores) to the split score_only/ingest_round
            # pair.  A clean score failure ingests nothing and reports
            # score_error so the parent falls back to per-entry
            # isolation for this shard's streams only.
            arrivals, ingest_names = args
            try:
                scored = fleet.score_only(arrivals)
            except Exception as exc:  # noqa: BLE001 — relayed as data,
                # not an error reply: the other shards' fused results
                # are still good.
                return {"scores": None, "events": None,
                        "score_error": f"{type(exc).__name__}: {exc}"}
            todo = {name: arrivals[name] for name in ingest_names}
            events = fleet.ingest_round(
                todo, batched=True,
                scores={name: scored[name] for name in todo}) \
                if todo else {}
            return {"scores": scored, "events": events,
                    "score_error": None}
        if command == "snapshot":
            return fleet.to_dict()
        if command == "stats":
            return {"batches_run": fleet.batcher.batches_run,
                    "windows_scored": fleet.batcher.windows_scored}
        if command == "prime":
            bench_rounds = [
                [np.asarray(slot.stream.batch(index).windows,
                            dtype=np.float64) for slot in fleet.slots]
                for index in range(args[0])]
            return (sum(w.shape[0] for w in bench_rounds[0])
                    if bench_rounds and fleet.slots else 0)
        if command == "score_round":
            if bench_rounds is None:
                raise StateError("score_round before prime")
            windows = bench_rounds[args[0]]
            scores = fleet.batcher.score(
                [ScoreRequest(slot.deployment.model, w)
                 for slot, w in zip(fleet.slots, windows)])
            return {slot.name: s
                    for slot, s in zip(fleet.slots, scores)}
        raise ConfigError(f"unknown worker command {command!r}")

    span_names = {"score_only": "shard.score", "ingest_round": "shard.ingest"}
    while True:
        try:
            token = conn.recv()
        except EOFError:
            break
        try:
            kind = token[0] if isinstance(token, tuple) and token else None
            if kind == "shm":
                message = loads_message(ring_in.read(token[1]))
            elif kind == "inline":
                message = token[1]
            else:
                raise RingError(f"unexpected transport token {token!r}")
        except RingError as exc:
            reply(("error", f"shared-memory transport failure: {exc}"))
            continue
        command, *args = message
        if command == "stop":
            reply(("ok", None))
            break
        try:
            if command == "traced":
                # ("traced", {trace_id, parent_id, shard}, inner_message):
                # execute the inner command timed, and ship the span dict
                # back with the result so it lands in the parent recorder
                # with shard attribution.  Wall-clock ``ts`` keeps worker
                # spans on the parent's timeline.
                tinfo, inner = args
                inner_command, *inner_args = inner
                started = time.time()
                t0 = time.perf_counter()
                inner_result = execute(inner_command, inner_args)
                attrs = {"shard": tinfo.get("shard"), "pid": os.getpid()}
                if inner_args and isinstance(inner_args[0], dict):
                    attrs["streams"] = len(inner_args[0])
                result = {"result": inner_result, "spans": [{
                    "name": span_names.get(inner_command,
                                           f"shard.{inner_command}"),
                    "trace_id": tinfo["trace_id"],
                    "span_id": new_span_id(),
                    "parent_id": tinfo["parent_id"],
                    "ts": started,
                    "dur": time.perf_counter() - t0,
                    "attrs": attrs,
                }]}
            else:
                result = execute(command, args)
            reply(("ok", result))
        except Exception as exc:  # noqa: BLE001 — relayed to the parent
            reply(("error", f"{type(exc).__name__}: {exc}"))
    for ring in (ring_in, ring_out):
        if ring is not None:
            ring.close()
    conn.close()


class ShardedFleet:
    """A :class:`DeploymentFleet` partitioned across worker processes.

    Mirrors the single-process fleet's surface — ``add``/``remove``,
    ``step``/``serve``, ``save``/``load`` — while each shard scores its
    streams in its own process.  Streams must be
    :class:`~repro.data.TrendShiftStream` instances (anything attached
    has to survive the serialized trip to its worker).

    Use as a context manager, or call :meth:`close` when done; worker
    processes otherwise linger until garbage collection.
    """

    def __init__(self, shards: int, infra: FleetInfra | None = None,
                 max_batch_windows: int | None = None,
                 ring_bytes: int | None = None):
        if shards < 1:
            raise ConfigError("need at least one shard")
        self.shards = shards
        self.infra = infra or FleetInfra()
        self.max_batch_windows = max_batch_windows
        self._order: list[str] = []        # global attach order
        self._assignment: dict[str, int] = {}
        self._attach_counter = 0           # round-robin cursor
        # Model identity tracking for add(): streams sharing a model ship
        # it once per shard (the strong reference pins the id() for the
        # fleet's lifetime so tokens can never alias a recycled object).
        self._model_tokens: dict[int, tuple[str, object]] = {}
        self._shipped_models: set[tuple[int, str]] = set()
        self._local_embedding = None       # lazily built for remove()
        self._conns: list = []
        self._procs: list = []
        self._closed = False
        self._init_transport(ring_bytes)
        self._init_engine()
        self._start_workers([_empty_fleet_payload(max_batch_windows)
                             for _ in range(shards)])

    def _init_transport(self, ring_bytes: int | None) -> None:
        """Per-shard shared-memory ring state.  ``ring_bytes`` sizes each
        direction's ring (``None`` = default, ``0`` = pure pipe)."""
        self._ring_bytes = DEFAULT_RING_BYTES if ring_bytes is None \
            else int(ring_bytes)
        if self._ring_bytes < 0:
            raise ConfigError("ring_bytes must be >= 0")
        self._rings_out: list[RingBuffer | None] = []  # parent -> worker
        self._rings_in: list[RingBuffer | None] = []   # worker -> parent
        self._transport_counters = {"shm_messages": 0, "shm_bytes": 0,
                                    "pipe_fallbacks": 0, "fused_rounds": 0}

    def _init_engine(self, policy=None, metrics=None) -> None:
        from ..runtime.backends import ShardedBackend
        self.engine = ServingEngine(ShardedBackend(self), policy=policy,
                                    metrics=metrics)

    @property
    def rounds(self) -> int:
        """Serving rounds run so far (counted by the engine)."""
        return self.engine.rounds

    @rounds.setter
    def rounds(self, value: int) -> None:
        self.engine.rounds = int(value)

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _start_workers(self, payloads: list[dict]) -> None:
        context = multiprocessing.get_context("spawn")
        infra_payload = self.infra.to_payload()
        for payload in payloads:
            to_worker = from_worker = None
            if self._ring_bytes:
                try:
                    to_worker = RingBuffer.create(self._ring_bytes)
                    from_worker = RingBuffer.create(self._ring_bytes)
                except (OSError, ValueError):
                    # No usable /dev/shm: serve over the pipe alone.
                    if to_worker is not None:
                        to_worker.close()
                        to_worker.unlink()
                    to_worker = from_worker = None
            ring_names = None if to_worker is None \
                else (to_worker.name, from_worker.name)
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, json.dumps(payload), infra_payload,
                      ring_names),
                daemon=True)
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
            self._rings_out.append(to_worker)
            self._rings_in.append(from_worker)

    def _check_open(self) -> None:
        if self._closed:
            raise FleetError("fleet is closed")

    def _encode(self, shard: int, message: tuple) -> bytes | None:
        """This shard's ring framing for ``message`` (``None`` on a
        pure-pipe shard, which sends the object inline)."""
        return dumps_message(message) if self._rings_out[shard] is not None \
            else None

    def _post(self, shard: int, message: tuple, blob: bytes | None) -> None:
        # A send to a dead worker fails; its queued "fatal" reply (or an
        # EOF) is still waiting on the recv side, which reports the cause.
        #
        # The payload rides this shard's shared-memory ring when it
        # fits (the pipe carries only a ("shm", length) doorbell) and
        # falls back to an inline pipe message otherwise — capacity
        # bounds latency, never correctness.
        conn = self._conns[shard]
        ring = self._rings_out[shard]
        try:
            if ring is not None and blob is not None:
                if ring.write(blob):
                    self._transport_counters["shm_messages"] += 1
                    self._transport_counters["shm_bytes"] += len(blob)
                    conn.send(("shm", len(blob)))
                    return
                self._transport_counters["pipe_fallbacks"] += 1
            conn.send(("inline", message))
        except (BrokenPipeError, OSError, RingError):
            pass

    def _send(self, shard: int, message: tuple) -> None:
        self._post(shard, message, self._encode(shard, message))

    def _post_all(self, messages: dict[int, tuple]) -> None:
        """Scatter sends with encoding hoisted out of the send loop:
        every shard's pickle/binframe blob is built *before* the first
        doorbell rings, so the workers start as close to simultaneously
        as possible instead of shard N+1 waiting out shard N's encode."""
        blobs = {shard: self._encode(shard, message)
                 for shard, message in messages.items()}
        for shard, message in messages.items():
            self._post(shard, message, blobs[shard])

    def _recv(self, shard: int) -> tuple:
        try:
            token = self._conns[shard].recv()
        except EOFError:
            return ("error", "worker process died unexpectedly")
        kind = token[0] if isinstance(token, tuple) and token else None
        if kind == "inline":
            return token[1]
        if kind == "shm":
            ring = self._rings_in[shard]
            if ring is None:
                return ("error", "worker sent a shared-memory doorbell "
                                 "but this fleet has no ring attached")
            try:
                reply = loads_message(ring.read(token[1]))
                self._transport_counters["shm_messages"] += 1
                self._transport_counters["shm_bytes"] += int(token[1])
                return reply
            except RingError as exc:
                return ("error",
                        f"shared-memory transport failure: {exc}")
        return ("error", f"unexpected transport token {token!r}")

    @staticmethod
    def _worker_error(shard: int, status: str, value) -> WorkerError:
        """Typed exception for one shard's non-``ok`` reply: startup
        failures (the worker's ``fatal`` relay) get the narrower
        :class:`~repro.errors.WorkerStartupError`."""
        cls = WorkerStartupError if status == "fatal" else WorkerError
        return cls(f"shard {shard}: {value}", shard=shard)

    def _receive(self, shard: int):
        status, value = self._recv(shard)
        if status != "ok":
            raise self._worker_error(shard, status, value)
        return value

    def _request(self, shard: int, message: tuple):
        self._check_open()
        self._send(shard, message)
        return self._receive(shard)

    def _broadcast(self, message: tuple) -> list:
        """Send to every shard first, then collect — shards overlap.

        Every reply is drained before any error is raised; bailing on the
        first failure would leave later shards' replies queued and
        desynchronize the next command.
        """
        self._check_open()
        # One message → one encode, reused for every ring shard.
        blob = dumps_message(message) \
            if any(ring is not None for ring in self._rings_out) else None
        for shard in range(len(self._conns)):
            self._post(shard, message, blob)
        replies = [self._recv(shard) for shard in range(len(self._conns))]
        failed = [(shard, status, value)
                  for shard, (status, value) in enumerate(replies)
                  if status != "ok"]
        if failed:
            # One shard's startup failure outranks run-of-the-mill errors:
            # it is the root cause the others' broken pipes follow from.
            shard, status, value = next(
                (f for f in failed if f[1] == "fatal"), failed[0])
            cls = WorkerStartupError if status == "fatal" else WorkerError
            raise cls("; ".join(f"shard {s}: {v}" for s, _, v in failed),
                      shard=shard)
        return [value for _, value in replies]

    def close(self) -> None:
        """Shut down the worker processes (idempotent).

        Shared-memory segments are closed and unlinked *after* the
        workers are down — even workers that died mid-command — so a
        closed fleet never leaks ``/dev/shm`` entries.
        """
        if self._closed:
            return
        self._closed = True
        for shard, conn in enumerate(self._conns):
            try:
                # "stop" is control-plane: always inline on the pipe.
                conn.send(("inline", ("stop",)))
                self._recv(shard)
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for ring in (*self._rings_out, *self._rings_in):
            if ring is not None:
                ring.close()
                ring.unlink()
        self._conns = []
        self._procs = []
        self._rings_out = []
        self._rings_in = []

    def __enter__(self) -> "ShardedFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter may be tearing down
            pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def add(self, name: str, deployment: Deployment, stream) -> int:
        """Attach a stream; returns the shard index it was assigned to.

        Assignment is deterministic round-robin over the attach sequence.
        Reloading a checkpoint re-derives assignments round-robin over
        the *stored* stream order — the same layout unless streams were
        removed mid-run, in which case the layout may shift (scores are
        unaffected either way; shards are disjoint).
        """
        self._check_open()
        if name in self._assignment:
            raise ConfigError(f"stream {name!r} already attached")
        if not isinstance(stream, TrendShiftStream):
            raise ConfigError(
                f"stream {name!r} is not a TrendShiftStream; only "
                "checkpointable streams can cross the process boundary")
        expected = self.infra.effective_generator_params()
        actual = {param: getattr(stream.generator, param)
                  for param in _GENERATOR_PARAMS}
        if actual != expected:
            raise ConfigError(
                f"stream {name!r} was built over a FrameGenerator whose "
                f"hyperparameters {actual} differ from this fleet's "
                f"FleetInfra {expected}; workers would regenerate "
                "different frames and scores would silently diverge — "
                "construct the fleet with FleetInfra.from_generator(...) "
                "over this stream's generator")
        shard = self._attach_counter % self.shards
        self._attach_counter += 1
        key = id(deployment.model)
        if key not in self._model_tokens:
            self._model_tokens[key] = (f"model-{len(self._model_tokens)}",
                                       deployment.model)
        token = self._model_tokens[key][0]
        ship_model = (shard, token) not in self._shipped_models
        entry = {"name": name,
                 "deployment": deployment.to_dict(include_model=ship_model),
                 "model_token": token,
                 "stream_config": config_to_dict(stream.config),
                 "cursor": 0, "done": False}
        self._request(shard, ("add", entry))
        self._shipped_models.add((shard, token))
        self._assignment[name] = shard
        self._order.append(name)
        return shard

    def remove(self, name: str) -> Deployment:
        """Detach a stream; returns its deployment, rebuilt locally."""
        shard = self._assignment.get(name)
        if shard is None:
            raise KeyError(f"no stream named {name!r} attached")
        payload = self._request(shard, ("remove", name))
        del self._assignment[name]
        self._order.remove(name)
        if self._local_embedding is None:
            self._local_embedding, _ = self.infra.build()
        return Deployment.from_dict(payload, self._local_embedding)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._assignment

    @property
    def names(self) -> list[str]:
        return list(self._order)

    @property
    def assignment(self) -> dict[str, int]:
        """Stream name -> shard index."""
        return dict(self._assignment)

    def batcher_stats(self) -> dict:
        """Summed micro-batcher counters across shards."""
        stats = self._broadcast(("stats",))
        return {"batches_run": sum(s["batches_run"] for s in stats),
                "windows_scored": sum(s["windows_scored"] for s in stats)}

    def transport_stats(self) -> dict:
        """Parent<->worker transport counters: messages/bytes over the
        shared-memory rings and how often a message outsized its ring
        and fell back to the pipe (surfaced through ``engine.stats()``
        and the gateway ``stats`` op)."""
        shm = any(ring is not None for ring in self._rings_out)
        return {"transport": "shm" if shm else "pipe",
                "ring_bytes": self._ring_bytes if shm else 0,
                **self._transport_counters}

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def step(self, batched: bool = True) -> list[FleetEvent]:
        """One serving round: every shard steps concurrently; events are
        merged back in stable (attach-order) stream order, matching the
        single-process fleet's event order exactly."""
        return self.engine.step(batched=batched)

    def serve(self, max_rounds: int | None = None, batched: bool = True):
        """Yield per-round event lists until every stream is exhausted
        (or ``max_rounds`` rounds have run)."""
        return self.engine.serve(max_rounds=max_rounds, batched=batched)

    def _scatter(self, command: str, arrivals: dict, extra: tuple = (),
                 trace=None, span_sink=None):
        """Partition a per-stream mapping by shard assignment, send each
        involved shard its slice (all sends before any recv, so shards
        overlap), and merge the per-shard dict replies.

        With ``trace`` (a :class:`repro.obs.TraceContext`) each shard's
        message is wrapped as ``("traced", info, inner)`` so the worker
        times the inner command and ships its span dicts back alongside
        the result; collected spans go to ``span_sink`` after the merge.
        Untraced scatters are wire-identical to before.
        """
        self._check_open()
        per_shard: dict[int, dict] = {}
        for name, value in arrivals.items():
            shard = self._assignment.get(name)
            if shard is None:
                raise KeyError(f"no stream named {name!r} attached")
            per_shard.setdefault(shard, {})[name] = value
        shards = sorted(per_shard)
        messages: dict[int, tuple] = {}
        for shard in shards:
            message = (command, per_shard[shard], *extra)
            if trace is not None:
                message = ("traced",
                           {"trace_id": trace.trace_id,
                            "parent_id": trace.span_id,
                            "shard": shard}, message)
            messages[shard] = message
        self._post_all(messages)
        merged: dict = {}
        spans: list[dict] = []
        failed: list[tuple[int, str, object]] = []
        for shard in shards:
            status, value = self._recv(shard)
            if status != "ok":
                failed.append((shard, status, value))
            else:
                if trace is not None:
                    spans.extend(value.get("spans") or ())
                    value = value["result"]
                merged.update(value)
        if failed:
            shard, status, value = next(
                (f for f in failed if f[1] == "fatal"), failed[0])
            cls = WorkerStartupError if status == "fatal" else WorkerError
            raise cls("; ".join(f"shard {s}: {v}" for s, _, v in failed),
                      shard=shard)
        if spans and span_sink is not None:
            span_sink(spans)
        return merged

    def ingest_round(self, arrivals: dict, batched: bool = True,
                     scores: dict | None = None) -> dict:
        """One serving round over externally supplied arrival windows;
        the sharded twin of :meth:`DeploymentFleet.ingest_round` (each
        involved shard micro-batches its own slice concurrently).

        Unlike the single-process fleet, a multi-shard round is not
        atomic: each shard scores-then-ingests its own slice, so if one
        shard fails (worker death) the other shards' streams have
        already ingested their windows.  Callers must treat a raised
        round as indeterminate and must not blindly re-send the same
        windows, or surviving streams double-ingest.  Pre-validating
        windows with :meth:`score_only` (stateless, safely retryable)
        and passing the result as ``scores`` confines ingest-time
        failures to genuine worker crashes.
        """
        return self.engine.ingest_round(arrivals, batched=batched,
                                        scores=scores)

    def score_only(self, arrivals: dict) -> dict:
        """Score externally supplied windows without feeding any
        monitor; the sharded twin of :meth:`DeploymentFleet.score_only`."""
        return self.engine.score_only(arrivals)

    def serve_round(self, arrivals: dict,
                    ingest: list[str]) -> tuple[dict, dict, list[str]]:
        """Fused score+ingest scatter: one ring round-trip per involved
        shard instead of the split ``score_only`` + ``ingest_round``
        pair.  Returns ``(scored, events, unscored)`` — per-stream score
        arrays, per-stream :class:`FleetEvent` results for the ``ingest``
        subset, and the streams of any shard whose coalesced score
        failed *cleanly* (that shard ingested nothing, so the caller can
        retry those streams through the split per-entry isolation path).

        Each shard scores its slice with the same batch composition the
        split scatter produces, so scores are bit-identical.  Raises
        :class:`~repro.errors.WorkerError` only on worker death — like a
        raised :meth:`ingest_round`, an indeterminate outcome the caller
        must not blindly re-send.
        """
        self._check_open()
        per_shard: dict[int, dict] = {}
        for name, value in arrivals.items():
            shard = self._assignment.get(name)
            if shard is None:
                raise KeyError(f"no stream named {name!r} attached")
            per_shard.setdefault(shard, {})[name] = value
        ingest_set = set(ingest)
        shards = sorted(per_shard)
        self._post_all({
            shard: ("serve_round", per_shard[shard],
                    [name for name in per_shard[shard]
                     if name in ingest_set])
            for shard in shards})
        self._transport_counters["fused_rounds"] += 1
        scored: dict = {}
        events: dict = {}
        unscored: list[str] = []
        failed: list[tuple[int, str, object]] = []
        for shard in shards:
            status, value = self._recv(shard)
            if status != "ok":
                failed.append((shard, status, value))
            elif value["score_error"] is not None:
                unscored.extend(per_shard[shard])
            else:
                scored.update(value["scores"])
                events.update(value["events"])
        if failed:
            shard, status, value = next(
                (f for f in failed if f[1] == "fatal"), failed[0])
            cls = WorkerStartupError if status == "fatal" else WorkerError
            raise cls("; ".join(f"shard {s}: {v}" for s, _, v in failed),
                      shard=shard)
        return scored, events, unscored

    # ------------------------------------------------------------------
    # Benchmark hooks (see serving.bench.run_shard_benchmark)
    # ------------------------------------------------------------------
    def prime(self, rounds: int) -> int:
        """Pre-materialize ``rounds`` arrival rounds inside each worker so
        :meth:`score_round` times scoring only; returns windows/round."""
        return sum(self._broadcast(("prime", rounds)))

    def score_round(self, index: int) -> dict[str, np.ndarray]:
        """Score a primed round on every shard concurrently (no monitor
        feeding); returns per-stream score arrays."""
        merged: dict[str, np.ndarray] = {}
        for scores in self._broadcast(("score_round", index)):
            merged.update(scores)
        return merged

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Whole-fleet snapshot in the plain fleet format (slots in global
        attach order, models concatenated across shards) plus a
        ``"shards"`` hint; loadable by :class:`DeploymentFleet` too."""
        snapshots = self._broadcast(("snapshot",))
        models: list[dict] = []
        slots_by_name: dict[str, dict] = {}
        for snapshot in snapshots:
            offset = len(models)
            models.extend(snapshot["models"])
            for entry in snapshot["slots"]:
                entry = dict(entry)
                entry["model_index"] += offset
                slots_by_name[entry["name"]] = entry
        return {"fleet_format_version": FLEET_FORMAT_VERSION,
                "models": models,
                "slots": [slots_by_name[name] for name in self._order],
                "max_batch_windows": self.max_batch_windows,
                "rounds": self.rounds,
                "shards": self.shards,
                "infra": self.infra.to_payload()}

    def save(self, path: str | Path) -> None:
        atomic_write_json(path, self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict, shards: int | None = None,
                  infra: FleetInfra | None = None,
                  ring_bytes: int | None = None) -> "ShardedFleet":
        """Rebuild a sharded fleet from a whole-fleet payload.

        ``shards`` defaults to the payload's ``"shards"`` hint (1 for a
        checkpoint written by a plain :class:`DeploymentFleet`); passing a
        different count re-partitions the same streams.  ``infra``
        defaults to the payload's stored ``"infra"`` section (sharded
        checkpoints are self-describing); an explicit argument overrides
        it, and default seeds are the last resort for plain-fleet files.
        """
        version = payload.get("fleet_format_version")
        if version != FLEET_FORMAT_VERSION:
            raise CheckpointError(f"unsupported fleet format version: {version}")
        if shards is None:
            shards = int(payload.get("shards", 1))
        if infra is None and payload.get("infra") is not None:
            infra = FleetInfra.from_payload(payload["infra"])
        fleet = cls.__new__(cls)
        fleet.shards = shards
        fleet.infra = infra or FleetInfra()
        fleet.max_batch_windows = payload.get("max_batch_windows")
        fleet._init_transport(ring_bytes)
        fleet._init_engine()
        fleet.rounds = int(payload.get("rounds", 0))
        fleet._order = [entry["name"] for entry in payload["slots"]]
        fleet._assignment = {name: index % shards
                             for index, name in enumerate(fleet._order)}
        fleet._attach_counter = len(fleet._order)
        fleet._model_tokens = {}
        fleet._shipped_models = set()
        fleet._local_embedding = None
        fleet._conns = []
        fleet._procs = []
        fleet._closed = False
        fleet._start_workers(partition_fleet_payload(payload, shards))
        return fleet

    @classmethod
    def load(cls, path: str | Path, shards: int | None = None,
             infra: FleetInfra | None = None,
             ring_bytes: int | None = None) -> "ShardedFleet":
        return cls.from_dict(json.loads(Path(path).read_text()),
                             shards=shards, infra=infra,
                             ring_bytes=ring_bytes)

    @classmethod
    def from_fleet(cls, fleet: DeploymentFleet, shards: int,
                   infra: FleetInfra | None = None,
                   ring_bytes: int | None = None) -> "ShardedFleet":
        """Partition an in-process fleet across ``shards`` workers.

        The fleet is serialized through its checkpoint format, so every
        worker's models are exact round-trips of the originals — sharded
        scores stay bit-identical to the source fleet's.  When ``infra``
        is omitted it is derived from the first slot's stream generator
        (all slots are assumed to share one generator configuration; mix
        generators with different hyperparameters and workers would
        regenerate different frames).
        """
        if infra is None and fleet.slots:
            generator = fleet.slots[0].stream.generator
            infra = FleetInfra.from_generator(generator.model.seed,
                                              generator)
        payload = fleet.to_dict()
        return cls.from_dict(payload, shards=shards, infra=infra,
                             ring_bytes=ring_bytes)


def build_sharded_fleet(pipeline, missions: list[str], streams: int,
                        shards: int, adaptive: bool = False,
                        share_models: bool = True, windows_per_step: int = 2,
                        stream_seed: int = 100,
                        max_batch_windows: int | None = None,
                        ring_bytes: int | None = None,
                        **stream_overrides) -> ShardedFleet:
    """Assemble a sharded fleet over a :class:`~repro.api.Pipeline`.

    Mirrors :func:`~repro.serving.build_fleet` (same missions round-robin,
    same stream seeds, same names) and then partitions the result across
    ``shards`` worker processes, so sharded and single-process fleets
    built with the same arguments serve identical streams and scores.
    """
    fleet = build_fleet(pipeline, missions, streams, adaptive=adaptive,
                        share_models=share_models,
                        windows_per_step=windows_per_step,
                        stream_seed=stream_seed,
                        max_batch_windows=max_batch_windows,
                        **stream_overrides)
    return ShardedFleet.from_fleet(fleet, shards,
                                   infra=FleetInfra.from_pipeline(pipeline),
                                   ring_bytes=ring_bytes)
